//! Environment sensing from WiFi alone — the paper's third contribution
//! (§V-D): estimate temperature and humidity from CSI amplitudes,
//! comparing ordinary least squares against the neural network, exactly
//! as Table V does but on a small scenario.
//!
//! ```text
//! cargo run --release -p occusense-core --example environment_sensing
//! ```

use occusense_core::regressor::{EnvRegressor, RegressorConfig, RegressorKind};
use occusense_core::sim::{simulate, ScenarioConfig};
use occusense_core::Dataset;

fn main() {
    // A longer quick scenario gives the environment time to move.
    let ds = simulate(&ScenarioConfig::quick(4800.0, 11));
    let split = (ds.len() * 7) / 10;
    let train: Dataset = ds.records()[..split].iter().copied().collect();
    let test: Dataset = ds.records()[split..].iter().copied().collect();

    println!(
        "CSI → (temperature, humidity) regression, {} test records\n",
        test.len()
    );
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "Model", "MAE T", "MAE H", "MAPE T", "MAPE H"
    );
    for kind in [RegressorKind::Linear, RegressorKind::NeuralNetwork] {
        let model = EnvRegressor::train(
            &train,
            &RegressorConfig {
                kind,
                ..RegressorConfig::default()
            },
        )
        .expect("regressor fit");
        let scores = model.evaluate(&test);
        println!(
            "{:<18} {:>9.2}° {:>9.2}% {:>9.1}% {:>9.1}%",
            kind.name(),
            scores.mae_temperature,
            scores.mae_humidity,
            scores.mape_temperature,
            scores.mape_humidity
        );
    }

    // Show a few sample predictions from the NN model.
    let nn = EnvRegressor::train(&train, &RegressorConfig::default()).expect("fit");
    let pred = nn.predict(&test);
    println!("\nsample predictions (every ~10 min):");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "t (s)", "T true", "T pred", "H true", "H pred"
    );
    for i in (0..test.len()).step_by(test.len() / 5 + 1) {
        let r = &test.records()[i];
        println!(
            "{:>10.0} {:>11.2}° {:>11.2}° {:>11.0}% {:>11.1}%",
            r.timestamp_s,
            r.temperature_c,
            pred.temperature_c[i],
            r.humidity_pct,
            pred.humidity_pct[i]
        );
    }
    println!("\nThe paper's conclusion: the CSI signal embeds the environmental state");
    println!("non-linearly — the NN recovers it where the linear model cannot (§V-D).");
}
