//! Smart-building scenario — the paper's motivating application (§I):
//! occupancy-driven lighting/HVAC control. An occupancy detector runs
//! online over a simulated hour; a controller with a switch-off delay
//! turns the lights and heating setback on/off, and the example reports
//! how much "on time" the sensing saves versus an always-on baseline.
//!
//! ```text
//! cargo run --release -p occusense-core --example smart_building
//! ```

use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_core::sim::{OfficeSimulator, ScenarioConfig};
use occusense_core::{Dataset, FeatureView};

/// Minutes the controller keeps systems on after the last detection
/// (hysteresis against brief sensing dropouts).
const SWITCH_OFF_DELAY_MIN: f64 = 10.0;

fn main() {
    // Train on one simulated period…
    let train = occusense_core::sim::simulate(&ScenarioConfig::quick(2400.0, 7));
    let train_ds: Dataset = train.records().iter().copied().collect();
    let detector = OccupancyDetector::train(
        &train_ds,
        &DetectorConfig {
            model: ModelKind::Mlp,
            features: FeatureView::Csi,
            ..DetectorConfig::default()
        },
    );

    // …then control a *different* day, streaming record by record.
    let mut sim = OfficeSimulator::new(ScenarioConfig::quick(3600.0, 8));
    let dt_min = 1.0 / (60.0 * 2.0); // 2 Hz sampling
    let mut lights_on = false;
    let mut on_since_detection_min = f64::INFINITY;
    let mut minutes_on = 0.0;
    let mut minutes_occupied = 0.0;
    let mut total_min = 0.0;
    let mut switch_events = 0u32;
    let mut missed_occupied_min = 0.0;

    for _ in 0..7200 {
        let record = sim.step();
        let (detected, _confidence) = detector.predict_record(&record);

        if detected == 1 {
            on_since_detection_min = 0.0;
            if !lights_on {
                lights_on = true;
                switch_events += 1;
                println!(
                    "[{:7.1} s] presence detected → systems ON",
                    record.timestamp_s
                );
            }
        } else {
            on_since_detection_min += dt_min;
            if lights_on && on_since_detection_min > SWITCH_OFF_DELAY_MIN {
                lights_on = false;
                switch_events += 1;
                println!(
                    "[{:7.1} s] idle for {SWITCH_OFF_DELAY_MIN} min → systems OFF",
                    record.timestamp_s
                );
            }
        }

        total_min += dt_min;
        if lights_on {
            minutes_on += dt_min;
        }
        if record.occupancy() == 1 {
            minutes_occupied += dt_min;
            if !lights_on {
                missed_occupied_min += dt_min;
            }
        }
    }

    println!("\n--- energy report -----------------------------------------");
    println!("window:            {total_min:.1} min");
    println!("actually occupied: {minutes_occupied:.1} min");
    println!("systems on:        {minutes_on:.1} min ({switch_events} switch events)");
    println!(
        "always-on baseline would burn {total_min:.1} min → sensing saves {:.0}%",
        100.0 * (1.0 - minutes_on / total_min)
    );
    println!("occupied-but-dark time (comfort violations): {missed_occupied_min:.2} min");
}
