//! Quickstart: simulate a short office scenario, train the paper's MLP
//! on CSI amplitudes, and evaluate occupancy detection on held-out time.
//!
//! ```text
//! cargo run --release -p occusense-core --example quickstart
//! ```

use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_core::sim::{simulate, ScenarioConfig};
use occusense_core::{Dataset, FeatureView};

fn main() {
    // 1. Simulate 40 minutes of office life: empty for the first half,
    //    then one person enters, then a second (ScenarioConfig::quick).
    let scenario = ScenarioConfig::quick(2400.0, 42);
    println!(
        "simulating {} samples at {} Hz…",
        scenario.n_samples(),
        scenario.sample_rate_hz
    );
    let ds = simulate(&scenario);

    // 2. Temporal 70/30 split — the paper never shuffles across time.
    let split = (ds.len() * 7) / 10;
    let train: Dataset = ds.records()[..split].iter().copied().collect();
    let test: Dataset = ds.records()[split..].iter().copied().collect();
    println!(
        "train: {} records, test: {} records",
        train.len(),
        test.len()
    );

    // 3. Train the paper's 4-layer MLP on the 64 CSI amplitudes.
    let config = DetectorConfig {
        model: ModelKind::Mlp,
        features: FeatureView::Csi,
        ..DetectorConfig::default()
    };
    let detector = OccupancyDetector::train(&train, &config);
    if let Some(mlp) = detector.mlp() {
        println!(
            "model: {} parameters, {:.2} KiB at f32 deployment precision",
            mlp.n_parameters(),
            mlp.size_kib(4)
        );
    }

    // 4. Evaluate.
    let cm = detector.evaluate(&test);
    println!("test confusion matrix: {cm}");
    println!(
        "accuracy {:.1}%  precision {:.2}  recall {:.2}  F1 {:.2}",
        100.0 * cm.accuracy(),
        cm.precision(),
        cm.recall(),
        cm.f1()
    );

    // 5. Online use: classify one fresh record.
    let last = ds.records()[ds.len() - 1];
    let (label, confidence) = detector.predict_record(&last);
    println!(
        "last sample → {} (p = {confidence:.3}, ground truth: {} occupants)",
        if label == 1 { "OCCUPIED" } else { "EMPTY" },
        last.occupant_count
    );
}
