//! Explainability — the paper's second contribution (§V-C / Figure 3):
//! train the MLP on CSI + environment features, then ask Grad-CAM which
//! inputs the network actually uses. The finding to reproduce: the CSI
//! subcarriers carry the decision; temperature and humidity importance
//! is ≈ 0.
//!
//! ```text
//! cargo run --release -p occusense-core --example explainability
//! ```

use occusense_core::dataset::folds::split_by_folds;
use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_core::explain::Explanation;
use occusense_core::sim::{simulate, ScenarioConfig};
use occusense_core::{Dataset, FeatureView};

fn main() {
    // The Figure 3 finding needs the full multi-day campaign: over one
    // short session temperature tracks occupancy almost perfectly and
    // *would* be informative; only across days does the environment
    // become the unreliable cue the paper describes. A low sampling rate
    // keeps this example fast.
    let mut scenario = ScenarioConfig::turetta2022(5);
    scenario.sample_rate_hz = 0.1;
    println!("simulating the 76-hour campaign at 0.1 Hz…");
    let ds = simulate(&scenario);
    let (train, tests) = split_by_folds(&ds);
    let mut test = Dataset::new();
    for fold in tests {
        test.extend(fold.records().iter().copied());
    }

    let detector = OccupancyDetector::train(
        &train,
        &DetectorConfig {
            model: ModelKind::Mlp,
            features: FeatureView::CsiEnv,
            ..DetectorConfig::default()
        },
    );
    let explanation = Explanation::of(&detector, &test).expect("MLP detector");

    let max_abs = explanation
        .importance
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()))
        .max(1e-12);
    println!("Grad-CAM input attribution (positive class = occupied):\n");
    for (name, &imp) in explanation
        .feature_names
        .iter()
        .zip(&explanation.importance)
    {
        let bar_len = ((imp.abs() / max_abs) * 32.0).round() as usize;
        let bar: String =
            std::iter::repeat_n(if imp >= 0.0 { '+' } else { '-' }, bar_len).collect();
        println!("{name:>4} {imp:>9.4} {bar}");
    }

    let csi = explanation.mean_abs_importance(0..64);
    let env = explanation.mean_abs_importance(64..66);
    println!("\nmean |importance| per feature: CSI {csi:.4} vs temperature+humidity {env:.4}");
    println!(
        "total block importance: CSI {:.2} vs env {:.2}",
        csi * 64.0,
        env * 2.0
    );
    println!("\nPaper's Figure 3 shows per-feature env importance ≈ 0. In this");
    println!("simulation the environment is a genuinely reliable in-fold cue, so");
    println!("the network does assign it weight — see EXPERIMENTS.md (E6) for the");
    println!("full discussion of this deviation. The CSI *block* still carries the");
    println!("bulk of the attribution mass, and Grad-CAM faithfully exposes");
    println!("whichever features the trained network actually uses.");
}
