//! Activity recognition — the paper's §VI future work, implemented as an
//! extension: one softmax MLP that simultaneously detects occupancy and
//! classifies the room's activity (empty / seated / standing / walking).
//!
//! ```text
//! cargo run --release -p occusense-core --example activity_recognition
//! ```

use occusense_core::activity::{ActivityConfig, ActivityRecognizer};
use occusense_core::sim::{simulate_annotated, ActivityClass, ScenarioConfig};
use occusense_core::stats::metrics::accuracy;
use occusense_core::Dataset;

fn main() {
    // Simulate an hour of office life with per-sample activity labels.
    let (ds, labels) = simulate_annotated(&ScenarioConfig::quick(3600.0, 17));
    let split = (ds.len() * 7) / 10;
    let train: Dataset = ds.records()[..split].iter().copied().collect();
    let train_labels = labels[..split].to_vec();
    let test: Dataset = ds.records()[split..].iter().copied().collect();
    let test_labels = labels[split..].to_vec();

    println!(
        "training 4-way activity MLP on {} records ({} test records)…",
        train.len(),
        test.len()
    );
    let model = ActivityRecognizer::train(&train, &train_labels, &ActivityConfig::default());

    // Activity view.
    let cm = model.evaluate(&test, &test_labels);
    println!("\n{cm}");
    for class in ActivityClass::ALL {
        if let Some(recall) = cm.recall(class.label()) {
            println!("  recall[{}] = {:.1}%", class.name(), 100.0 * recall);
        }
    }

    // Simultaneous occupancy view — the same model, thresholded.
    let occ_pred = model.predict_occupancy(&test);
    println!(
        "\noccupancy accuracy from the activity head: {:.1}%",
        100.0 * accuracy(&test.labels(), &occ_pred)
    );

    // Stream a few live classifications.
    println!("\nsample timeline (every ~3 min):");
    let preds = model.predict(&test);
    for i in (0..test.len()).step_by(test.len() / 8 + 1) {
        let r = &test.records()[i];
        println!(
            "  t={:6.0}s  truth: {:<8} predicted: {:<8} ({} occupants)",
            r.timestamp_s,
            test_labels[i].name(),
            preds[i].name(),
            r.occupant_count
        );
    }
}
