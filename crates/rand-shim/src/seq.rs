//! Slice sampling helpers (mirroring `rand::seq`).

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// Uniformly picks one element, or `None` if the slice is empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(12);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
