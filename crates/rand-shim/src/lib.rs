//! # occusense-rand
//!
//! A dependency-free, deterministic stand-in for the subset of the
//! `rand` 0.8 API this workspace uses. The build environment has no
//! access to crates.io, so the workspace maps the dependency name
//! `rand` onto this crate (see the `[workspace.dependencies]` table);
//! every `use rand::…` in the tree resolves here.
//!
//! Only the surface actually exercised by the workspace is provided:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — the only
//!   construction path the workspace uses (every experiment is seeded).
//! * [`Rng::gen_range`] over half-open integer and float ranges,
//!   [`Rng::gen_bool`] and [`Rng::gen`] (`f64` only).
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//! * [`distributions::Uniform`] with [`distributions::Distribution`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream `StdRng` (ChaCha12), which is fine:
//! nothing in the workspace asserts exact draws, only statistical
//! properties and seed-determinism, both of which hold here.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level uniform bit source. All higher-level sampling
/// ([`Rng`]) is derived from [`RngCore::next_u64`].
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Top 53 bits → the full f64 mantissa range, exactly in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (mirroring `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`: uniform on `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p {p} not in [0, 1]");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seed-based construction (mirroring `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] without extra parameters.
pub trait StandardSample {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range {self:?}");
        let sample = self.start + rng.next_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back into
        // the half-open interval.
        if sample >= self.end {
            self.start
        } else {
            sample
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range {self:?}");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply bounded draw (Lemire); the tiny
                // residual bias over u64 spans is irrelevant here.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_draws_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&x), "{x}");
            let n = rng.gen_range(5usize..11);
            assert!((5..11).contains(&n), "{n}");
            let m = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&m), "{m}");
        }
    }

    #[test]
    fn integer_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn mean_of_unit_draws_is_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 = (0..50_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
