//! Parameterised distributions (mirroring `rand::distributions`).

use crate::Rng;

/// A distribution samplable with any [`Rng`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over a half-open `[lo, hi)` interval of `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "Uniform::new: lo {lo} must be < hi {hi}");
        Self { lo, hi }
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = self.lo + rng.next_f64() * (self.hi - self.lo);
        if x >= self.hi {
            self.lo
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn uniform_stays_in_bounds_and_centres() {
        let mut rng = StdRng::seed_from_u64(21);
        let dist = Uniform::new(-2.0, 6.0);
        let mut sum = 0.0;
        for _ in 0..20_000 {
            let x = dist.sample(&mut rng);
            assert!((-2.0..6.0).contains(&x), "{x}");
            sum += x;
        }
        let mean = sum / 20_000.0;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }
}
