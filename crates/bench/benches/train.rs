//! Training-pipeline benchmarks for the persistent compute pool
//! (DESIGN.md §12): a full GRU-training epoch (truncated BPTT through
//! [`TemporalDetector::train_with`]) under pooled, per-call-spawn and
//! single-threaded kernels, the MLP trainer's prefetched epoch under
//! the same three policies, and the fused AdamW step on its own.
//!
//! The pooled/spawn pair is the headline: `Parallelism::Threads`
//! dispatches row blocks to long-lived workers parked on condvars,
//! `Parallelism::SpawnThreads` is the legacy path that created and
//! joined OS threads on every kernel call. Both produce bitwise
//! identical weights (asserted below before anything is timed), so the
//! entire difference is dispatch overhead.
//!
//! With `OCCUSENSE_BENCH_JSON=BENCH_train.json cargo bench --bench
//! train` a measurement run writes the committed baseline; the
//! `bench_gate` binary compares a fresh run against it.

use criterion::{criterion_group, criterion_main, Criterion};
use occusense_core::nn::loss::BceWithLogits;
use occusense_core::nn::optim::{AdamW, Optimizer};
use occusense_core::nn::train::{TrainConfig, TrainWorkspace, Trainer};
use occusense_core::nn::Mlp;
use occusense_core::sim::{simulate, ScenarioConfig};
use occusense_core::tensor::kernels::Parallelism;
use occusense_core::{
    Dataset, FeatureView, TemporalConfig, TemporalDetector, TemporalTrainWorkspace,
};
use std::hint::black_box;

/// The three kernel policies under test, in reporting order. Four-way
/// parallelism matches the serve runtime's default worker budget. On a
/// machine with at least four cores the pooled-vs-spawn delta is pure
/// dispatch overhead (condvar wakeup vs thread creation); on smaller
/// runners it also measures the pool's core-count clamp — the pool
/// never oversubscribes, while the legacy spawn path blindly creates
/// threads per call. Both effects are the pool's contract.
const POLICIES: [(&str, Parallelism); 3] = [
    ("pooled_t4", Parallelism::Threads(4)),
    ("spawn_t4", Parallelism::SpawnThreads(4)),
    ("single", Parallelism::Single),
];

/// Training-shaped temporal problem: the full CSI+environment feature
/// view over the default window, sized so the recurrent GEMMs clear
/// the kernels' parallel-eligibility floor.
fn temporal_config() -> TemporalConfig {
    TemporalConfig {
        features: FeatureView::CsiEnv,
        window: 16,
        stride: 2,
        hidden: 32,
        epochs: 1,
        batch_size: 64,
        seed: 61,
        ..TemporalConfig::default()
    }
}

fn temporal_dataset() -> Dataset {
    simulate(&ScenarioConfig::quick(300.0, 61))
}

/// One GRU-training epoch end to end — window gather, forward over the
/// window, truncated BPTT, fused AdamW on all 13 parameter tensors —
/// through a pre-warmed workspace, per kernel policy.
fn bench_gru_epoch(c: &mut Criterion) {
    let ds = temporal_dataset();
    let cfg = temporal_config();

    // Determinism guard before anything is timed: all three policies
    // must train the exact same model bit for bit.
    let reference = TemporalDetector::train(&ds, &cfg);
    assert!(reference.is_finite(), "reference GRU training diverged");
    for (name, par) in POLICIES {
        let mut ws = TemporalTrainWorkspace::with_parallelism(par);
        let det = TemporalDetector::train_with(&ds, &cfg, &mut ws);
        assert_eq!(
            det.gru().w_z.as_slice(),
            reference.gru().w_z.as_slice(),
            "{name}: pooled/spawn GRU weights drifted from single-threaded"
        );
        assert_eq!(
            det.head().layers()[0].weights.as_slice(),
            reference.head().layers()[0].weights.as_slice(),
            "{name}: head weights drifted from single-threaded"
        );
    }

    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    for (name, par) in POLICIES {
        // One warm-up training outside the timer: sizes every buffer
        // and (for the pooled policy) spins up the workers, so the
        // timed region is the steady state a pretraining-scale run
        // lives in.
        let mut ws = TemporalTrainWorkspace::with_parallelism(par);
        let _ = TemporalDetector::train_with(&ds, &cfg, &mut ws);
        group.bench_function(format!("gru_epoch_{name}"), |b| {
            b.iter(|| {
                let det = TemporalDetector::train_with(black_box(&ds), &cfg, &mut ws);
                assert!(det.is_finite(), "GRU training produced non-finite weights");
                black_box(det)
            })
        });
    }
    group.finish();
}

/// One MLP-training epoch (prefetched batch gather + fused AdamW)
/// through the paper classifier, per kernel policy.
fn bench_mlp_epoch(c: &mut Criterion) {
    let ds = simulate(&ScenarioConfig::quick(512.0, 77));
    let x = FeatureView::CsiEnv.design_matrix(&ds);
    let y_col: Vec<f64> = ds.labels().iter().map(|&l| f64::from(l)).collect();
    let y = occusense_core::tensor::Matrix::col_vector(&y_col);

    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    for (name, par) in POLICIES {
        let trainer = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 256,
            shuffle_seed: 0,
            parallelism: par,
        });
        let mut ws = TrainWorkspace::with_parallelism(par);
        group.bench_function(format!("mlp_epoch_{name}"), |b| {
            b.iter(|| {
                let mut mlp = Mlp::paper_classifier(x.cols(), 1);
                let mut optim = AdamW::new(5e-3, 1e-4);
                let hist = trainer.fit_with(
                    &mut mlp,
                    black_box(&x),
                    black_box(&y),
                    &BceWithLogits,
                    &mut optim,
                    &mut ws,
                );
                let last = hist.last().map_or(f64::NAN, |e| e.mean_loss);
                assert!(last.is_finite(), "MLP epoch loss went non-finite");
                black_box(mlp)
            })
        });
    }
    group.finish();
}

/// The fused AdamW step in isolation: one `update` call over a
/// weight-matrix-sized tensor — the single pass over (param, grad, m,
/// v) the optimizer rewrite collapsed the four bookkeeping loops into.
fn bench_adamw_step(c: &mut Criterion) {
    const N: usize = 1 << 16;
    let mut optim = AdamW::new(5e-3, 1e-4);
    let mut param: Vec<f64> = (0..N).map(|i| (i as f64 / N as f64) - 0.5).collect();
    let grad: Vec<f64> = (0..N)
        .map(|i| ((i * 7919) % 1000) as f64 / 1e4 - 0.05)
        .collect();
    optim.update(0, &mut param, &grad);

    let mut group = c.benchmark_group("train");
    group.bench_function(format!("adamw_fused_step_{N}"), |b| {
        b.iter(|| {
            optim.update(0, black_box(&mut param), black_box(&grad));
            assert!(
                param[0].is_finite(),
                "fused AdamW produced a non-finite weight"
            );
            black_box(param[0])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gru_epoch, bench_mlp_epoch, bench_adamw_step);
criterion_main!(benches);
