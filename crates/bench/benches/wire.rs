//! Wire-layer benchmarks: codec encode/decode cost per frame, and
//! end-to-end gateway round trips (record in → prediction out) over
//! both the in-process loopback and TCP-localhost — which isolates
//! what the protocol costs (codec + checksum + framing) from what the
//! kernel's socket path costs on top.
//!
//! With `OCCUSENSE_BENCH_JSON=BENCH_wire.json cargo bench --bench
//! wire` the measurement run writes the committed baseline, median
//! and p99 per benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_core::sim::{simulate, ScenarioConfig};
use occusense_core::CsiRecord;
use occusense_serve::{BackpressurePolicy, BatchConfig, ServeConfig};
use occusense_wire::{
    connect, decode_frame, loopback, tcp_connect, tcp_listen, BatchFrame, BatchView, ClientEvent,
    Encoder, Frame, Gateway, GatewayConfig, LoopbackConfig, RecordFrame, TcpConfig, WireReceiver,
    WireSender, DEFAULT_MAX_PAYLOAD, HEADER_BYTES,
};
use std::hint::black_box;
use std::time::Duration;

fn sample_record() -> CsiRecord {
    simulate(&ScenarioConfig::quick(1.0, 42))
        .records()
        .first()
        .copied()
        .expect("one record")
}

fn train_detector() -> OccupancyDetector {
    let ds = simulate(&ScenarioConfig::quick(1200.0, 99));
    OccupancyDetector::train(
        &ds,
        &DetectorConfig {
            model: ModelKind::Mlp,
            mlp_epochs: 2,
            max_train_samples: Some(2_000),
            ..DetectorConfig::default()
        },
    )
}

fn bench_codec(c: &mut Criterion) {
    let record = sample_record();
    let single = Frame::Record(RecordFrame {
        seq: 7,
        label: Some(1),
        record,
    });
    let batch = Frame::Batch(BatchFrame {
        first_seq: 0,
        records: vec![(record, Some(1)); 64],
    });
    let mut group = c.benchmark_group("wire_codec");
    let mut encoder = Encoder::default();
    group.bench_function("encode_record", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            encoder
                .encode_into(black_box(&single), &mut out)
                .expect("encode");
            black_box(out.len())
        });
    });
    group.bench_function("encode_batch64", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            encoder
                .encode_into(black_box(&batch), &mut out)
                .expect("encode");
            black_box(out.len())
        });
    });
    let single_bytes = Encoder::default().encode(&single).expect("encode");
    let batch_bytes = Encoder::default().encode(&batch).expect("encode");
    group.bench_function("decode_record", |b| {
        b.iter(|| decode_frame(black_box(&single_bytes), DEFAULT_MAX_PAYLOAD).expect("decode"));
    });
    group.bench_function("decode_batch64", |b| {
        b.iter(|| decode_frame(black_box(&batch_bytes), DEFAULT_MAX_PAYLOAD).expect("decode"));
    });
    // The owning decode above clones 64 records into a fresh Vec; the
    // reactor's zero-copy path only validates and borrows.
    let batch_payload = &batch_bytes[HEADER_BYTES..];
    group.bench_function("decode_batch64_view", |b| {
        b.iter(|| {
            let view = BatchView::parse(black_box(batch_payload)).expect("parse");
            let mut acc = 0u64;
            for (seq, record, _label) in view.records() {
                acc = acc.wrapping_add(seq) ^ record.timestamp_s.to_bits();
            }
            black_box(acc)
        });
    });
    group.finish();
}

/// One wire round trip: send a record, block until its prediction
/// comes back. The gateway and connection persist across iterations,
/// so this measures steady-state per-record latency, not setup.
fn round_trip(tx: &mut WireSender, rx: &mut WireReceiver, record: CsiRecord) -> u64 {
    let seq = tx.send(record, None).expect("send");
    loop {
        match rx.recv().expect("recv") {
            ClientEvent::Prediction(p) => {
                assert_eq!(p.seq, seq);
                return p.proba.to_bits();
            }
            ClientEvent::TimedOut => continue,
            other => panic!("unexpected event {other:?}"),
        }
    }
}

/// Latency-biased serve config: 1-record micro-batches, no deadline
/// slack, online training off.
fn latency_config() -> ServeConfig {
    ServeConfig {
        n_shards: 1,
        queue_capacity: 64,
        policy: BackpressurePolicy::Block,
        batch: BatchConfig {
            max_batch: 1,
            max_delay: Duration::from_micros(100),
        },
        online: None,
        ..ServeConfig::default()
    }
}

fn bench_loopback_round_trip(c: &mut Criterion) {
    let record = sample_record();
    let (acceptor, connector) = loopback(LoopbackConfig::default());
    let gateway = Gateway::start(
        train_detector(),
        latency_config(),
        GatewayConfig::default(),
        Box::new(acceptor),
    )
    .expect("gateway");
    let conn = connector.connect().expect("connect");
    let (mut tx, mut rx) =
        connect(conn, "bench-loopback", Duration::from_secs(5)).expect("handshake");
    c.bench_function("wire_round_trip/loopback", |b| {
        b.iter(|| black_box(round_trip(&mut tx, &mut rx, black_box(record))));
    });
    drop((tx, rx));
    let report = gateway.shutdown();
    assert_eq!(report.unaccounted_records(), 0);
}

fn bench_tcp_round_trip(c: &mut Criterion) {
    let record = sample_record();
    let (acceptor, addr) = tcp_listen("127.0.0.1:0", TcpConfig::default()).expect("listen");
    let gateway = Gateway::start(
        train_detector(),
        latency_config(),
        GatewayConfig::default(),
        Box::new(acceptor),
    )
    .expect("gateway");
    let conn = tcp_connect(&addr.to_string(), TcpConfig::default()).expect("connect");
    let (mut tx, mut rx) = connect(conn, "bench-tcp", Duration::from_secs(5)).expect("handshake");
    c.bench_function("wire_round_trip/tcp_localhost", |b| {
        b.iter(|| black_box(round_trip(&mut tx, &mut rx, black_box(record))));
    });
    drop((tx, rx));
    let report = gateway.shutdown();
    assert_eq!(report.unaccounted_records(), 0);
}

criterion_group!(
    benches,
    bench_codec,
    bench_loopback_round_trip,
    bench_tcp_round_trip
);
criterion_main!(benches);
