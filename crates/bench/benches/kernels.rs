//! Kernel microbenchmarks: the blocked/packed GEMM, the fused dense
//! forward pass and the transpose-free gradient products, each against
//! the naive reference they replaced. Shapes follow the paper MLP's
//! hot layers (`batch 256 × [66, 128, 256, 128, 1]`).
//!
//! Every kernel output is asserted finite before timing starts, so
//! running this target (in bench or `--test` smoke mode) fails loudly
//! on a panic or a NaN — the CI bench-smoke gate. With
//! `OCCUSENSE_BENCH_JSON=BENCH_kernels.json` a measurement run also
//! writes the machine-readable baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use occusense_core::tensor::kernels::{self, Parallelism, Scratch};
use occusense_core::tensor::Matrix;
use std::hint::black_box;

/// Deterministic, well-conditioned test matrix.
fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        (((r * 31 + c * 7) as f64 + seed as f64) * 0.61).sin()
    })
}

fn assert_finite(name: &str, values: &[f64]) {
    assert!(
        values.iter().all(|v| v.is_finite()),
        "{name}: non-finite kernel output"
    );
}

/// The paper MLP's layer shapes at training batch size, `(m, k, n)`.
const GEMM_SHAPES: [(usize, usize, usize); 4] = [
    (256, 66, 128),
    (256, 128, 256),
    (256, 256, 128),
    (256, 128, 1),
];

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for (m, k, n) in GEMM_SHAPES {
        let a = mat(m, k, 1);
        let b = mat(k, n, 2);
        assert_finite("gemm", a.matmul(&b).as_slice());
        group.bench_function(format!("naive_{m}x{k}x{n}"), |bch| {
            bch.iter(|| black_box(black_box(&a).matmul_naive(&b)))
        });
        let mut out = vec![0.0; m * n];
        let mut scratch = Scratch::new();
        group.bench_function(format!("blocked_{m}x{k}x{n}"), |bch| {
            bch.iter(|| {
                kernels::gemm(
                    m,
                    k,
                    n,
                    black_box(a.as_slice()),
                    black_box(b.as_slice()),
                    &mut out,
                    &mut scratch,
                );
                black_box(out[0])
            })
        });
        let mut par = Scratch::with_parallelism(Parallelism::Threads(2));
        group.bench_function(format!("threads2_{m}x{k}x{n}"), |bch| {
            bch.iter(|| {
                kernels::gemm(
                    m,
                    k,
                    n,
                    black_box(a.as_slice()),
                    black_box(b.as_slice()),
                    &mut out,
                    &mut par,
                );
                black_box(out[0])
            })
        });
    }
    group.finish();
}

fn bench_fused_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_dense_forward");
    let (m, k, n) = (256, 66, 128);
    let x = mat(m, k, 3);
    let w = mat(k, n, 4);
    let bias: Vec<f64> = (0..n).map(|j| (j as f64 * 0.13).cos()).collect();
    let relu = |v: f64| v.max(0.0);
    let mut z = vec![0.0; m * n];
    let mut act = vec![0.0; m * n];
    let mut scratch = Scratch::new();
    kernels::gemm_bias_act(
        m,
        k,
        n,
        x.as_slice(),
        w.as_slice(),
        &bias,
        &mut z,
        &mut act,
        relu,
        &mut scratch,
    );
    assert_finite("fused_dense_forward", &act);
    group.bench_function(format!("unfused_{m}x{k}x{n}"), |bch| {
        bch.iter(|| {
            let mut zm = black_box(&x).matmul_naive(&w);
            for r in 0..m {
                for (v, bv) in zm.row_mut(r).iter_mut().zip(&bias) {
                    *v += bv;
                }
            }
            black_box(zm.as_slice().iter().map(|&v| relu(v)).sum::<f64>())
        })
    });
    group.bench_function(format!("fused_{m}x{k}x{n}"), |bch| {
        bch.iter(|| {
            kernels::gemm_bias_act(
                m,
                k,
                n,
                black_box(x.as_slice()),
                black_box(w.as_slice()),
                &bias,
                &mut z,
                &mut act,
                relu,
                &mut scratch,
            );
            black_box(act[0])
        })
    });
    group.finish();
}

fn bench_gradient_products(c: &mut Criterion) {
    let mut group = c.benchmark_group("gradient_products");
    let (m, k, n) = (256, 128, 256);
    let x = mat(m, k, 5);
    let delta = mat(m, n, 6);
    let w = mat(k, n, 7);
    assert_finite("gemm_tn", x.matmul_tn(&delta).as_slice());
    assert_finite("gemm_nt", delta.matmul_nt(&w).as_slice());
    // x^T · δ — the weight gradient with and without materialising x^T.
    group.bench_function("weight_grad_transpose_then_naive", |bch| {
        bch.iter(|| black_box(black_box(&x).transpose().matmul_naive(&delta)))
    });
    group.bench_function("weight_grad_gemm_tn", |bch| {
        bch.iter(|| black_box(black_box(&x).matmul_tn(&delta)))
    });
    // δ · W^T — the input gradient with and without materialising W^T.
    group.bench_function("input_grad_transpose_then_naive", |bch| {
        bch.iter(|| black_box(black_box(&delta).matmul_naive(&w.transpose())))
    });
    group.bench_function("input_grad_gemm_nt", |bch| {
        bch.iter(|| black_box(black_box(&delta).matmul_nt(&w)))
    });
    group.finish();
}

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec");
    let a = mat(128, 66, 8);
    let v: Vec<f64> = (0..66).map(|i| (i as f64 * 0.41).sin()).collect();
    assert_finite("matvec", &a.matvec(&v));
    group.bench_function("matvec_128x66", |bch| {
        bch.iter(|| black_box(black_box(&a).matvec(black_box(&v))))
    });
    let mut out = Vec::new();
    group.bench_function("matvec_into_128x66", |bch| {
        bch.iter(|| {
            black_box(&a).matvec_into(black_box(&v), &mut out);
            black_box(out[0])
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_fused_forward,
    bench_gradient_products,
    bench_matvec
);
criterion_main!(benches);
