//! E11 — ablation: cost of the statistical kernels used by the §V-A
//! profiling pipeline (Pearson over long series, ADF regressions,
//! correlation matrices).

use criterion::{criterion_group, criterion_main, Criterion};
use occusense_core::stats::adf::{adf_test, LagSelection, Regression};
use occusense_core::stats::correlation::{correlation_matrix, pearson};
use occusense_core::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn series(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = 0.0;
    (0..n)
        .map(|_| {
            // Stationary AR(1).
            acc = 0.6 * acc + rng.gen_range(-1.0..1.0);
            acc
        })
        .collect()
}

fn bench_pearson(c: &mut Criterion) {
    let x = series(100_000, 1);
    let y = series(100_000, 2);
    c.bench_function("pearson_100k", |b| {
        b.iter(|| black_box(pearson(black_box(&x), black_box(&y))))
    });
}

fn bench_adf(c: &mut Criterion) {
    let x = series(5_000, 3);
    let mut group = c.benchmark_group("adf_5k");
    group.sample_size(20);
    group.bench_function("fixed_lag_4", |b| {
        b.iter(|| {
            black_box(adf_test(
                black_box(&x),
                Regression::Constant,
                LagSelection::Fixed(4),
            ))
        })
    });
    group.bench_function("constant_trend_lag_4", |b| {
        b.iter(|| {
            black_box(adf_test(
                black_box(&x),
                Regression::ConstantTrend,
                LagSelection::Fixed(4),
            ))
        })
    });
    group.finish();
}

fn bench_correlation_matrix(c: &mut Criterion) {
    let data = Matrix::from_fn(2_000, 20, |r, col| ((r * (col + 3)) as f64 * 0.013).sin());
    c.bench_function("correlation_matrix_2000x20", |b| {
        b.iter(|| black_box(correlation_matrix(black_box(&data))))
    });
}

criterion_group!(benches, bench_pearson, bench_adf, bench_correlation_matrix);
criterion_main!(benches);
