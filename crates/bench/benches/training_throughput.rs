//! E10 — ablation: training throughput of the paper's MLP per optimiser
//! (SGD vs Adam vs AdamW), plus the baselines' fit cost on equal data.

use criterion::{criterion_group, criterion_main, Criterion};
use occusense_core::baselines::forest::{ForestConfig, RandomForest};
use occusense_core::baselines::logreg::{LogRegConfig, LogisticRegression};
use occusense_core::nn::loss::BceWithLogits;
use occusense_core::nn::optim::{AdamW, Optimizer, Sgd};
use occusense_core::nn::train::{TrainConfig, Trainer};
use occusense_core::nn::Mlp;
use occusense_core::sim::{simulate, ScenarioConfig};
use occusense_core::tensor::Matrix;
use occusense_core::FeatureView;
use std::hint::black_box;

fn training_data(n: usize) -> (Matrix, Matrix, Vec<u8>) {
    let ds = simulate(&ScenarioConfig::quick(n as f64, 77));
    let x = FeatureView::CsiEnv.design_matrix(&ds);
    let labels = ds.labels();
    let y = Matrix::col_vector(&labels.iter().map(|&l| l as f64).collect::<Vec<_>>());
    (x, y, labels)
}

fn bench_optimisers(c: &mut Criterion) {
    let (x, y, _) = training_data(512);
    let mut group = c.benchmark_group("mlp_one_epoch_1024_samples");
    group.sample_size(10);

    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 256,
        shuffle_seed: 0,
        ..TrainConfig::default()
    });
    let mut run = |name: &str, make: &dyn Fn() -> Box<dyn Optimizer>| {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut mlp = Mlp::paper_classifier(66, 1);
                let mut optim = make();
                trainer.fit(
                    &mut mlp,
                    black_box(&x),
                    black_box(&y),
                    &BceWithLogits,
                    &mut *optim,
                );
                black_box(mlp)
            })
        });
    };
    run("sgd", &|| Box::new(Sgd::new(5e-3)));
    run("sgd_momentum", &|| Box::new(Sgd::with_momentum(5e-3, 0.9)));
    run("adam", &|| Box::new(AdamW::adam(5e-3)));
    run("adamw", &|| Box::new(AdamW::new(5e-3, 1e-4)));
    group.finish();
}

fn bench_baseline_fits(c: &mut Criterion) {
    let (x, _, labels) = training_data(512);
    let yf: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
    let mut group = c.benchmark_group("baseline_fit_1024_samples");
    group.sample_size(10);
    group.bench_function("logreg", |b| {
        b.iter(|| {
            black_box(LogisticRegression::fit(
                black_box(&x),
                black_box(&labels),
                &LogRegConfig {
                    epochs: 10,
                    ..LogRegConfig::default()
                },
            ))
        })
    });
    group.bench_function("random_forest_10_trees", |b| {
        b.iter(|| {
            black_box(RandomForest::fit(
                black_box(&x),
                black_box(&yf),
                &ForestConfig {
                    n_trees: 10,
                    ..ForestConfig::default()
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_optimisers, bench_baseline_fits);
criterion_main!(benches);
