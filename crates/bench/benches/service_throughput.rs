//! Serving-runtime throughput: records/second through the full
//! `occusense-serve` pipeline (bounded queues → sharded workers →
//! micro-batched MLP forwards), end to end including graceful
//! shutdown. Complements `inference_latency`, which measures the bare
//! model forward without the runtime around it.

use criterion::{criterion_group, criterion_main, Criterion};
use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_core::sim::{simulate, ScenarioConfig};
use occusense_core::CsiRecord;
use occusense_serve::{BackpressurePolicy, BatchConfig, ServeConfig, ServeRuntime};
use std::hint::black_box;
use std::time::Duration;

const SENSORS: usize = 4;

fn train_detector() -> OccupancyDetector {
    let ds = simulate(&ScenarioConfig::quick(1200.0, 99));
    OccupancyDetector::train(
        &ds,
        &DetectorConfig {
            model: ModelKind::Mlp,
            mlp_epochs: 2,
            max_train_samples: Some(2_000),
            ..DetectorConfig::default()
        },
    )
}

fn sensor_traces() -> Vec<Vec<CsiRecord>> {
    (0..SENSORS)
        .map(|i| {
            simulate(&ScenarioConfig::quick(120.0, 500 + i as u64))
                .records()
                .to_vec()
        })
        .collect()
}

/// One full serve cycle: boot, flood-replay every sensor concurrently,
/// drain, shut down. Returns the number of records scored so the
/// throughput figure divides out correctly.
fn serve_once(detector: &OccupancyDetector, traces: &[Vec<CsiRecord>], max_batch: usize) -> u64 {
    let (runtime, predictions) = ServeRuntime::start(
        detector.clone(),
        ServeConfig {
            n_shards: 2,
            queue_capacity: 512,
            policy: BackpressurePolicy::Block,
            batch: BatchConfig {
                max_batch,
                max_delay: Duration::from_millis(5),
            },
            online: None,
            ..ServeConfig::default()
        },
    )
    .expect("start runtime");
    let handles: Vec<_> = traces
        .iter()
        .enumerate()
        .map(|(i, trace)| {
            let mut client = runtime.client(&format!("bench-{i}"));
            let trace = trace.clone();
            std::thread::spawn(move || {
                for r in trace {
                    client.submit(r).unwrap();
                }
            })
        })
        .collect();
    let drain = std::thread::spawn(move || predictions.into_iter().count());
    for h in handles {
        h.join().unwrap();
    }
    let report = runtime.shutdown();
    black_box(drain.join().unwrap());
    report.records_served
}

fn bench_service(c: &mut Criterion) {
    let detector = train_detector();
    let traces = sensor_traces();
    let per_cycle: usize = traces.iter().map(Vec::len).sum();
    eprintln!(
        "service_throughput: {SENSORS} sensors × {} records/cycle",
        per_cycle / SENSORS
    );

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    for max_batch in [1, 8, 32] {
        group.bench_function(format!("batch_{max_batch}"), |b| {
            b.iter(|| serve_once(&detector, &traces, max_batch));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
