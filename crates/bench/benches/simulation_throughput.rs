//! E9 — ablation: cost of the CSI simulator — the channel model's
//! frequency response, the receiver chain, and a full simulator step —
//! establishing that regenerating the paper's 20 Hz × 76 h campaign is
//! tractable.

use criterion::{criterion_group, criterion_main, Criterion};
use occusense_core::channel::geometry::Point3;
use occusense_core::channel::receiver::Receiver;
use occusense_core::channel::scene::{Body, Scene};
use occusense_core::sim::{OfficeSimulator, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_model");

    let empty = Scene::office_default();
    group.bench_function("frequency_response_empty", |b| {
        b.iter(|| black_box(black_box(&empty).frequency_response()))
    });

    let mut crowded = Scene::office_default();
    for i in 0..4 {
        crowded.bodies.push(Body::standing(Point3::new(
            2.0 + i as f64 * 2.5,
            1.0 + i as f64,
            0.0,
        )));
    }
    group.bench_function("frequency_response_4_bodies", |b| {
        b.iter(|| black_box(black_box(&crowded).frequency_response()))
    });

    // E9 fidelity knob: the 30 extra double-bounce paths of order 2.
    let mut order2 = crowded.clone();
    order2.max_reflection_order = 2;
    group.bench_function("frequency_response_order2", |b| {
        b.iter(|| black_box(black_box(&order2).frequency_response()))
    });

    let response = crowded.frequency_response();
    let rx = Receiver::new();
    let mut rng = StdRng::seed_from_u64(1);
    group.bench_function("receiver_measure", |b| {
        b.iter(|| black_box(rx.measure(black_box(&response), &mut rng)))
    });
    group.finish();
}

fn bench_simulator_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    group.bench_function("step_20hz", |b| {
        let mut cfg = ScenarioConfig::quick(1.0e7, 3);
        cfg.sample_rate_hz = 20.0;
        let mut sim = OfficeSimulator::new(cfg);
        b.iter(|| black_box(sim.step()))
    });
    group.finish();
}

criterion_group!(benches, bench_channel, bench_simulator_step);
criterion_main!(benches);
