//! E8 — model efficiency: single-sample inference latency and model
//! size, backing the paper's §IV-B claims (15.18 KiB model, 10.781 ms
//! inference on the full feature set; RF "does not allow … deployment on
//! embedded boards").

use criterion::{criterion_group, criterion_main, Criterion};
use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_core::sim::{simulate, ScenarioConfig};
use occusense_core::{Dataset, FeatureView};
use std::hint::black_box;

fn train_small(model: ModelKind, features: FeatureView) -> (OccupancyDetector, Dataset) {
    let ds = simulate(&ScenarioConfig::quick(1200.0, 99));
    let cfg = DetectorConfig {
        model,
        features,
        mlp_epochs: 3,
        max_train_samples: Some(2_000),
        ..DetectorConfig::default()
    };
    (OccupancyDetector::train(&ds, &cfg), ds)
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_sample_inference");

    for (name, model, features) in [
        ("mlp_csi", ModelKind::Mlp, FeatureView::Csi),
        ("mlp_csi_env", ModelKind::Mlp, FeatureView::CsiEnv),
        (
            "logreg_csi_env",
            ModelKind::LogisticRegression,
            FeatureView::CsiEnv,
        ),
        (
            "forest_csi_env",
            ModelKind::RandomForest,
            FeatureView::CsiEnv,
        ),
    ] {
        let (det, ds) = train_small(model, features);
        if let Some(mlp) = det.mlp() {
            eprintln!(
                "{name}: {} parameters, {:.2} KiB at f32 (paper claims 15.18 KiB)",
                mlp.n_parameters(),
                mlp.size_kib(4)
            );
        }
        let record = ds.records()[ds.len() / 2];
        group.bench_function(name, |b| {
            b.iter(|| black_box(det.predict_record(black_box(&record))))
        });
    }
    group.finish();
}

fn bench_batch_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_inference_1k");
    group.sample_size(20);
    let (det, ds) = train_small(ModelKind::Mlp, FeatureView::CsiEnv);
    let batch: Dataset = ds.records()[..1000.min(ds.len())].iter().copied().collect();
    group.bench_function("mlp_csi_env_1k_records", |b| {
        b.iter(|| black_box(det.predict(black_box(&batch))))
    });
    group.finish();
}

criterion_group!(benches, bench_inference, bench_batch_inference);
criterion_main!(benches);
