//! Temporal-model benchmarks: the GRU sequence forward, the
//! hand-derived BPTT pass, and the stateful serving step — the three
//! hot paths added by the temporal subsystem. Every measured output is
//! asserted finite, so a measurement run fails on any NaN escaping the
//! packed kernels, not just on a panic.
//!
//! With `OCCUSENSE_BENCH_JSON=BENCH_temporal.json cargo bench --bench
//! temporal` the measurement run writes the committed baseline, median
//! and p99 per benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use occusense_core::nn::{Gru, GruWorkspace};
use occusense_core::sim::{simulate, ScenarioConfig};
use occusense_core::temporal::{TemporalConfig, TemporalDetector, TemporalWorkspace};
use occusense_core::tensor::Matrix;
use occusense_core::CsiRecord;
use occusense_serve::{BackpressurePolicy, BatchConfig, ServeConfig, ServeRuntime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

/// Training-shaped problem: the default detector window over the CSI
/// feature dimension, a training-sized batch of windows.
const IN_DIM: usize = 16;
const HIDDEN: usize = 24;
const WINDOW: usize = 16;
const BATCH: usize = 64;

fn random_windows(rng: &mut StdRng) -> Vec<Matrix> {
    (0..WINDOW)
        .map(|_| Matrix::from_fn(BATCH, IN_DIM, |_, _| rng.gen_range(-1.0..1.0)))
        .collect()
}

fn bench_gru(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(41);
    let gru = Gru::new(IN_DIM, HIDDEN, &mut rng);
    let xs = random_windows(&mut rng);
    let h0 = Matrix::zeros(BATCH, HIDDEN);
    let grad_h_last = Matrix::from_fn(BATCH, HIDDEN, |_, _| rng.gen_range(-0.1..0.1));
    let mut ws = GruWorkspace::new();

    let mut group = c.benchmark_group("temporal");
    group.bench_function(format!("gru_forward_b{BATCH}_t{WINDOW}"), |b| {
        b.iter(|| {
            gru.forward_seq(&xs, &h0, &mut ws);
            let sum: f64 = ws.h_last().as_slice().iter().sum();
            assert!(sum.is_finite(), "GRU forward produced a non-finite state");
            black_box(sum)
        });
    });
    group.bench_function(format!("gru_bptt_b{BATCH}_t{WINDOW}"), |b| {
        b.iter(|| {
            gru.forward_seq(&xs, &h0, &mut ws);
            gru.backward_seq(&xs, &grad_h_last, &mut ws);
            let sum: f64 = ws.grad_w_n().as_slice().iter().sum();
            assert!(sum.is_finite(), "GRU BPTT produced a non-finite gradient");
            black_box(sum)
        });
    });
    group.finish();
}

fn train_temporal() -> TemporalDetector {
    let ds = simulate(&ScenarioConfig::quick(900.0, 99));
    TemporalDetector::train(
        &ds,
        &TemporalConfig {
            window: 8,
            stride: 4,
            hidden: HIDDEN,
            epochs: 1,
            seed: 99,
            ..TemporalConfig::default()
        },
    )
}

/// The serving hot path: one batched GRU step advancing every active
/// sensor's hidden row at once — what a temporal worker executes per
/// round of a micro-batch flush.
fn bench_serve_step(c: &mut Criterion) {
    let temporal = train_temporal();
    let records: Vec<CsiRecord> = simulate(&ScenarioConfig::quick(60.0, 7))
        .records()
        .iter()
        .copied()
        .take(32)
        .collect();
    let mut h = temporal.zero_state(records.len());
    let mut ws = TemporalWorkspace::new();
    let mut probas = Vec::new();
    let mut group = c.benchmark_group("temporal");
    group.bench_function(format!("serve_step_{}_sensors", records.len()), |b| {
        b.iter(|| {
            temporal.step_batch_into(&records, &mut h, &mut ws, &mut probas);
            assert!(
                probas.iter().all(|p| p.is_finite()),
                "stateful step produced a non-finite probability"
            );
            black_box(probas.first().copied())
        });
    });
    group.finish();
}

/// One full stateful serve cycle: boot the temporal runtime, replay
/// four concurrent sensors, drain, shut down — the end-to-end cost of
/// carrying per-sensor state through the sharded micro-batch pipeline.
fn bench_stateful_serve_cycle(c: &mut Criterion) {
    let temporal = train_temporal();
    let traces: Vec<Vec<CsiRecord>> = (0..4)
        .map(|i| {
            simulate(&ScenarioConfig::quick(60.0, 500 + i as u64))
                .records()
                .to_vec()
        })
        .collect();
    let per_cycle: usize = traces.iter().map(Vec::len).sum();

    let mut group = c.benchmark_group("temporal");
    group.sample_size(10);
    group.bench_function("stateful_serve_cycle", |b| {
        b.iter(|| {
            let (runtime, predictions) = ServeRuntime::start_temporal(
                temporal.clone(),
                ServeConfig {
                    n_shards: 2,
                    queue_capacity: 512,
                    policy: BackpressurePolicy::Block,
                    batch: BatchConfig {
                        max_batch: 32,
                        max_delay: Duration::from_millis(2),
                    },
                    online: None,
                    ..ServeConfig::default()
                },
            )
            .expect("start temporal runtime");
            let handles: Vec<_> = traces
                .iter()
                .enumerate()
                .map(|(i, trace)| {
                    let mut client = runtime.client(&format!("bench-{i}"));
                    let trace = trace.clone();
                    std::thread::spawn(move || {
                        for r in trace {
                            client.submit(r).unwrap();
                        }
                    })
                })
                .collect();
            let drain = std::thread::spawn(move || {
                predictions
                    .into_iter()
                    .inspect(|p| assert!(p.proba.is_finite(), "non-finite served probability"))
                    .count()
            });
            for h in handles {
                h.join().unwrap();
            }
            let report = runtime.shutdown();
            assert_eq!(report.unaccounted_records(), 0);
            assert_eq!(report.records_served, per_cycle as u64);
            black_box(drain.join().unwrap())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gru,
    bench_serve_step,
    bench_stateful_serve_cycle
);
criterion_main!(benches);
