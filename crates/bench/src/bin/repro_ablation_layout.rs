//! E12 — ablation: why fold 4 is the hard fold.
//!
//! Runs the Table IV CSI column for the MLP and the random forest twice
//! on the same seed: once with the scripted furniture rearrangement on
//! the final morning (the default `turetta2022` scenario) and once with
//! the furniture frozen. The fold-4 accuracy gap isolates the
//! layout-change contribution to the fold's difficulty, which DESIGN.md
//! calls out as a simulator design choice.

use occusense_bench::{pct, rule, Cli};
use occusense_core::detector::ModelKind;
use occusense_core::experiments::{table4, ExperimentConfig, Table4};
use occusense_core::sim::{simulate, ScenarioConfig};
use occusense_core::FeatureView;

fn run(cli: &Cli, with_layout_change: bool) -> Table4 {
    let mut scenario = ScenarioConfig::turetta2022(cli.seed);
    scenario.sample_rate_hz = cli.rate_hz;
    if !with_layout_change {
        scenario.layout_change_s = None;
    }
    let ds = simulate(&scenario);
    let cfg = ExperimentConfig {
        seed: cli.seed,
        max_train_samples: cli.train_cap,
        epochs: cli.epochs,
        ..ExperimentConfig::default()
    };
    table4(&ds, &cfg)
}

fn main() {
    let cli = Cli::from_env();
    eprintln!("running scenario WITH the fold-4 furniture rearrangement…");
    let with_change = run(&cli, true);
    eprintln!("running scenario WITHOUT the rearrangement…");
    let without_change = run(&cli, false);

    println!("Ablation — furniture-layout change vs fold-4 difficulty (CSI features)\n");
    rule(78);
    println!(
        "{:<22} {:<9} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Model", "Layout", "fold1", "fold2", "fold3", "fold4", "fold5"
    );
    rule(78);
    for model in [ModelKind::Mlp, ModelKind::RandomForest] {
        for (label, t4) in [("changes", &with_change), ("frozen", &without_change)] {
            let acc = t4
                .cell(model, FeatureView::Csi)
                .expect("CSI cell")
                .fold_accuracy;
            println!(
                "{:<22} {:<9} {:>7}% {:>7}% {:>7}% {:>7}% {:>7}%",
                model.name(),
                label,
                pct(acc[0]),
                pct(acc[1]),
                pct(acc[2]),
                pct(acc[3]),
                pct(acc[4])
            );
        }
        let delta = 100.0
            * (without_change
                .cell(model, FeatureView::Csi)
                .expect("cell")
                .fold_accuracy[3]
                - with_change
                    .cell(model, FeatureView::Csi)
                    .expect("cell")
                    .fold_accuracy[3]);
        println!(
            "{:<22} fold-4 delta attributable to rearrangement: {delta:+.1} pp",
            ""
        );
        rule(78);
    }
    println!("(folds 1-3 predate the rearrangement and should be unaffected)");
}
