//! E14 (extension) — occupant counting (0, 1, 2, 3, 4+), the crowd-
//! counting task of the paper's references [3, 12], trained on fold 0
//! of the full campaign and evaluated per test fold.

use occusense_bench::{pct, rule, Cli};
use occusense_core::counting::{CountingConfig, OccupancyCounter};
use occusense_core::dataset::folds::split_by_folds;

fn main() {
    let cli = Cli::from_env();
    let ds = cli.dataset();
    let (train, tests) = split_by_folds(&ds);
    let counter = OccupancyCounter::train(
        &train,
        &CountingConfig {
            seed: cli.seed,
            max_train_samples: Some(cli.train_cap),
            epochs: cli.epochs,
            ..CountingConfig::default()
        },
    );

    println!("Extension E14 — occupant counting (classes 0,1,2,3,4+)\n");
    rule(82);
    println!(
        "{:<6} {:>14} {:>12} {:>18} {:>10}",
        "Fold", "exact-count acc", "count MAE", "occupancy acc", "macro-F1"
    );
    rule(82);
    for (i, fold) in tests.iter().enumerate() {
        let scores = counter.evaluate(fold);
        println!(
            "{:<6} {:>13}% {:>12.3} {:>17}% {:>10.3}",
            i + 1,
            pct(scores.confusion.accuracy()),
            scores.count_mae,
            pct(scores.occupancy_accuracy),
            scores.confusion.macro_f1()
        );
    }
    rule(82);
    // Pooled confusion across test folds.
    let mut pooled = occusense_core::Dataset::new();
    for fold in &tests {
        pooled.extend(fold.records().iter().copied());
    }
    let scores = counter.evaluate(&pooled);
    println!("pooled test folds:\n{}", scores.confusion);
    println!(
        "pooled count MAE {:.3}, occupancy accuracy {}%, macro-F1 {:.3}",
        scores.count_mae,
        pct(scores.occupancy_accuracy),
        scores.confusion.macro_f1()
    );
    let per_class: Vec<String> = (0..5)
        .map(|c| match scores.confusion.f1(c) {
            Some(f1) => format!("{c}:{f1:.3}"),
            None => format!("{c}:–"),
        })
        .collect();
    println!("pooled per-class F1 ({})", per_class.join(", "));
    println!("\n(extension beyond the paper; its refs [3,12] report counting on other datasets)");
}
