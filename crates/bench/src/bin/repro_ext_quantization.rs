//! E16 (extension) — int8 quantisation for embedded deployment.
//!
//! §IV-B quotes a 15.18 KiB model targeting a Nucleo-L432KC. An f32 copy
//! of the described architecture is an order of magnitude larger, so a
//! real deployment would compress the weights; this experiment measures
//! the accuracy cost of symmetric int8 post-training quantisation on the
//! trained occupancy MLP.

use occusense_bench::{pct, rule, Cli};
use occusense_core::dataset::folds::split_by_folds;
use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_core::nn::quantize::QuantizedMlp;
use occusense_core::stats::metrics::accuracy;
use occusense_core::FeatureView;

fn main() {
    let cli = Cli::from_env();
    let ds = cli.dataset();
    let (train, tests) = split_by_folds(&ds);
    let det = OccupancyDetector::train(
        &train,
        &DetectorConfig {
            model: ModelKind::Mlp,
            features: FeatureView::Csi,
            seed: cli.seed,
            max_train_samples: Some(cli.train_cap),
            mlp_epochs: cli.epochs,
            ..DetectorConfig::default()
        },
    );
    let mlp = det.mlp().expect("MLP detector");
    let q = QuantizedMlp::from_mlp(mlp);

    println!("Extension E16 — int8 quantisation of the occupancy MLP\n");
    println!("parameters:         {}", mlp.n_parameters());
    println!("f64 (training):     {:.2} KiB", mlp.size_kib(8));
    println!("f32 (deployment):   {:.2} KiB", mlp.size_kib(4));
    println!("int8 (this exp.):   {:.2} KiB", q.size_kib());
    println!("paper's claim:      15.18 KiB (see EXPERIMENTS.md §E8)\n");

    rule(64);
    println!(
        "{:<6} {:>14} {:>14} {:>10}",
        "Fold", "f64 accuracy", "int8 accuracy", "Δ (pp)"
    );
    rule(64);
    for (i, fold) in tests.iter().enumerate() {
        let x = det.features_of(fold);
        let truth = fold.labels();
        let full = accuracy(&truth, &mlp.predict_labels(&x));
        let quant = accuracy(&truth, &q.predict_labels(&x));
        println!(
            "{:<6} {:>13}% {:>13}% {:>+10.2}",
            i + 1,
            pct(full),
            pct(quant),
            100.0 * (quant - full)
        );
    }
    rule(64);
    println!("(int8 inference here dequantises to f64; a microcontroller would run");
    println!(" the integer kernels directly with the same arithmetic result)");
}
