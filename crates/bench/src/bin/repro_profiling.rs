//! E4 — §V-A data profiling: ADF stationarity of every series and the
//! Pearson-correlation structure the paper reports.

use occusense_bench::{rule, Cli};
use occusense_core::experiments::profiling;
use occusense_core::sim::clock::COLLECTION_START_OFFSET_S;

fn main() {
    let cli = Cli::from_env();
    let ds = cli.dataset();
    let report = profiling(&ds, 8_000, COLLECTION_START_OFFSET_S).expect("profiling pipeline");

    println!("§V-A data profiling — measured vs paper\n");
    rule(78);
    println!("{:<46} {:>12} {:>12}", "Quantity", "measured", "paper");
    rule(78);
    println!(
        "{:<46} {:>11.0}% {:>12}",
        "subcarrier series stationary (ADF, 5%)",
        100.0 * report.stationary_subcarrier_fraction,
        "all"
    );
    println!(
        "{:<46} {:>12} {:>12}",
        "temperature / humidity stationary",
        format!("{}/{}", report.env_stationary.0, report.env_stationary.1),
        "yes/yes"
    );
    println!(
        "{:<46} {:>12.2} {:>12.2}",
        "rho(temperature, humidity)", report.rho_temp_humidity, 0.45
    );
    println!(
        "{:<46} {:>12.2} {:>12.2}",
        "rho(temperature, occupancy)", report.rho_temp_occupancy, 0.44
    );
    println!(
        "{:<46} {:>12.2} {:>12.2}",
        "rho(humidity, occupancy)", report.rho_humidity_occupancy, 0.35
    );
    println!(
        "{:<46} {:>12.2} {:>12}",
        "max |rho(subcarrier, T or H)|", report.max_subcarrier_env_rho, "0.20-0.30"
    );
    println!(
        "{:<46} {:>12.2} {:>12.2}",
        "rho(time of day, temperature)", report.rho_time_temperature, 0.77
    );
    rule(78);
}
