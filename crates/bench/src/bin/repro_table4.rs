//! E5 — Table IV: occupancy-detection accuracy of Logistic Regression,
//! Random Forest and the MLP on CSI / Env / C+E features over the five
//! test folds (train once on fold 0, never retrain).

use occusense_bench::{pct, rule, Cli};
use occusense_core::detector::ModelKind;
use occusense_core::experiments::table4;
use occusense_core::FeatureView;

/// Paper values, % (Table IV), indexed `[model][view][fold]`; the final
/// entry per view is the reported average.
const PAPER: [[[u8; 6]; 3]; 3] = [
    // Logistic Regressor: CSI, Env, C+E
    [
        [68, 71, 77, 94, 96, 81],
        [99, 100, 100, 18, 31, 70],
        [76, 72, 86, 86, 91, 82],
    ],
    // Random Forest
    [
        [99, 100, 99, 88, 100, 97],
        [100, 100, 100, 75, 100, 95],
        [99, 100, 100, 88, 100, 97],
    ],
    // MLP
    [
        [100, 100, 100, 83, 100, 97],
        [99, 100, 100, 54, 99, 90],
        [92, 99, 100, 65, 99, 91],
    ],
];

fn main() {
    let cli = Cli::from_env();
    let ds = cli.dataset();
    let result = table4(&ds, &cli.experiment_config());

    println!("Table IV — occupancy detection accuracy (%) over the 5 testing folds");
    println!("(measured on the simulated campaign vs the paper's reported values)\n");
    rule(96);
    println!(
        "{:<20} {:<5} | {:>17} {:>17} {:>17} {:>17} {:>17}",
        "Model", "Feat", "fold1", "fold2", "fold3", "fold4", "fold5"
    );
    println!("{:<20} {:<5} | {:>17}", "", "", "measured (paper)");
    rule(96);
    for (mi, model) in ModelKind::TABLE4.iter().enumerate() {
        for (vi, view) in FeatureView::TABLE4.iter().enumerate() {
            let cell = result.cell(*model, *view).expect("cell computed");
            print!("{:<20} {:<5} |", model.name(), view.name());
            for (fi, acc) in cell.fold_accuracy.iter().enumerate() {
                print!("  {:>7} ({:>3})   ", pct(*acc), PAPER[mi][vi][fi]);
            }
            println!();
        }
        // Per-model averages row.
        for (vi, view) in FeatureView::TABLE4.iter().enumerate() {
            let cell = result.cell(*model, *view).expect("cell computed");
            println!(
                "{:<20} {:<5} |  avg measured {} vs paper {}",
                "",
                view.name(),
                pct(cell.average()),
                PAPER[mi][vi][5]
            );
        }
        rule(96);
    }
    println!(
        "Time-only MLP ablation: measured {} % (paper: 89.3 %)",
        pct(result.time_only_accuracy)
    );
}
