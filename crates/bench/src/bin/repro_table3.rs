//! E3 — Table III: start/end, sample counts and temperature/humidity
//! ranges of the training fold (0) and the five test folds.

use occusense_bench::{rule, Cli};
use occusense_core::dataset::folds::paper_fold_stats;
use occusense_core::experiments::table3;

fn main() {
    let cli = Cli::from_env();
    let ds = cli.dataset();
    let rows = table3(&ds);
    let paper = paper_fold_stats();

    println!("Table III — fold boundaries, sample counts, T/H ranges");
    println!("(sample counts scale with --rate; the paper collected at 20 Hz)\n");
    rule(110);
    println!(
        "{:<4} {:<12} {:<12} {:>9} {:>9} {:>13} {:>9} | paper: {:>9} {:>9} {:>13} {:>9}",
        "Fold", "Start", "End", "Empty", "Occup.", "T (min/max)", "H", "Empty", "Occup.", "T", "H"
    );
    rule(110);
    for (row, p) in rows.iter().zip(&paper) {
        println!(
            "{:<4} {:<12} {:<12} {:>9} {:>9} {:>6.2}/{:<6.2} {:>4.0}/{:<4.0} | {:>13} {:>9} {:>6.2}/{:<6.2} {:>4.0}/{:<4.0}",
            row.spec.index,
            row.spec.start_label,
            row.spec.end_label,
            row.empty,
            row.occupied,
            row.temperature.0,
            row.temperature.1,
            row.humidity.0,
            row.humidity.1,
            p.empty,
            p.occupied,
            p.temperature.0,
            p.temperature.1,
            p.humidity.0,
            p.humidity.1,
        );
    }
    rule(110);
    let occupied_frac = |empty: usize, occ: usize| 100.0 * occ as f64 / (empty + occ).max(1) as f64;
    let r4 = &rows[4];
    println!(
        "fold-4 occupied fraction: measured {:.1}% vs paper {:.1}%",
        occupied_frac(r4.empty, r4.occupied),
        100.0 * 265_519.0 / 321_742.0
    );
}
