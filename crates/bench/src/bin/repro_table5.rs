//! E7 — Table V: MAE/MAPE of linear vs neural-network regression of
//! temperature (T) and humidity (H) from CSI, per test fold.

use occusense_bench::{rule, Cli};
use occusense_core::experiments::table5;
use occusense_core::regressor::RegressorKind;

/// Paper values: `[model][fold]` → (MAE T, MAE H, MAPE T, MAPE H); the
/// sixth entry is the reported average.
const PAPER: [[(f64, f64, f64, f64); 6]; 2] = [
    [
        (2.72, 2.47, 12.65, 7.11),
        (1.87, 1.65, 9.24, 4.86),
        (3.57, 2.84, 18.17, 8.25),
        (6.04, 6.92, 29.38, 20.51),
        (8.08, 7.51, 35.94, 25.89),
        (4.46, 4.28, 21.08, 13.32),
    ],
    [
        (1.04, 3.74, 4.18, 11.26),
        (0.56, 7.30, 2.82, 21.98),
        (0.73, 6.08, 3.72, 18.55),
        (3.88, 3.44, 18.59, 10.46),
        (3.81, 2.55, 16.94, 9.54),
        (2.39, 4.62, 9.25, 14.35),
    ],
];

fn main() {
    let cli = Cli::from_env();
    let ds = cli.dataset();
    let rows = table5(&ds, &cli.experiment_config());

    println!("Table V — MAE/MAPE of T/H regression from CSI (measured vs paper)\n");
    for row in &rows {
        let paper_idx = match row.kind {
            RegressorKind::Linear => 0,
            RegressorKind::NeuralNetwork => 1,
        };
        println!("{}", row.kind.name());
        rule(100);
        println!(
            "{:<6} {:>22} {:>22} | {:>22} {:>22}",
            "Fold", "MAE T/H measured", "MAPE T/H measured", "MAE T/H paper", "MAPE T/H paper"
        );
        rule(100);
        for (fi, s) in row.fold_scores.iter().enumerate() {
            let p = PAPER[paper_idx][fi];
            println!(
                "{:<6} {:>10.2}/{:<10.2} {:>10.2}/{:<10.2} | {:>10.2}/{:<10.2} {:>10.2}/{:<10.2}",
                fi + 1,
                s.mae_temperature,
                s.mae_humidity,
                s.mape_temperature,
                s.mape_humidity,
                p.0,
                p.1,
                p.2,
                p.3
            );
        }
        let avg = row.average();
        let p = PAPER[paper_idx][5];
        println!(
            "{:<6} {:>10.2}/{:<10.2} {:>10.2}/{:<10.2} | {:>10.2}/{:<10.2} {:>10.2}/{:<10.2}",
            "Avg.",
            avg.mae_temperature,
            avg.mae_humidity,
            avg.mape_temperature,
            avg.mape_humidity,
            p.0,
            p.1,
            p.2,
            p.3
        );
        rule(100);
        println!();
    }
    println!("Shape target: the non-linear model matches or beats OLS (in this simulator");
    println!("the win concentrates in the humidity channel); folds 4-5 are hardest for both.");
}
