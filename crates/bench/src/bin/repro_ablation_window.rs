//! E15 (ablation, extension) — instantaneous vs trailing-window CSI
//! features. The paper classifies single 50 ms samples; classic CSI
//! sensing aggregates short windows because motion lives in temporal
//! variance. This ablation quantifies what the paper's design leaves on
//! the table (or doesn't) under the simulator.

use occusense_bench::{pct, rule, Cli};
use occusense_core::dataset::folds::split_by_folds;
use occusense_core::dataset::windowed::WindowedView;
use occusense_core::dataset::Standardizer;
use occusense_core::nn::loss::BceWithLogits;
use occusense_core::nn::optim::AdamW;
use occusense_core::nn::train::{TrainConfig, Trainer};
use occusense_core::nn::Mlp;
use occusense_core::sampling::stratified_indices;
use occusense_core::stats::metrics::accuracy;
use occusense_core::tensor::Matrix;
use occusense_core::{Dataset, FeatureView};

/// Trains the paper MLP on a precomputed design matrix and returns
/// per-fold accuracies.
fn run(
    train: &Dataset,
    tests: &[Dataset],
    features: &dyn Fn(&Dataset) -> Matrix,
    cli: &Cli,
) -> Vec<f64> {
    let idx = stratified_indices(train, cli.train_cap, cli.seed);
    let sub: Dataset = idx.iter().map(|&i| train.records()[i]).collect();
    let x_raw = features(&sub);
    let standardizer = Standardizer::fit(&x_raw);
    let x = standardizer.transform(&x_raw);
    let y = Matrix::col_vector(&sub.labels().iter().map(|&l| l as f64).collect::<Vec<_>>());
    let mut mlp = Mlp::paper_classifier(x.cols(), cli.seed);
    let mut optim = AdamW::new(5e-3, 1e-4);
    Trainer::new(TrainConfig {
        epochs: cli.epochs,
        batch_size: 256,
        shuffle_seed: cli.seed,
        ..TrainConfig::default()
    })
    .fit(&mut mlp, &x, &y, &BceWithLogits, &mut optim);

    tests
        .iter()
        .map(|fold| {
            let xf = standardizer.transform(&features(fold));
            accuracy(&fold.labels(), &mlp.predict_labels(&xf))
        })
        .collect()
}

fn main() {
    let cli = Cli::from_env();
    let ds = cli.dataset();
    let (train, tests) = split_by_folds(&ds);

    // Window of ~10 s at the simulated rate.
    let window = ((10.0 * cli.rate_hz).round() as usize).max(2);
    eprintln!("training instantaneous-feature MLP…");
    let instant = run(&train, &tests, &|d| FeatureView::Csi.design_matrix(d), &cli);
    eprintln!("training windowed-feature MLP (window = {window} samples)…");
    let windowed = run(
        &train,
        &tests,
        &|d| WindowedView::new(window).design_matrix(d),
        &cli,
    );

    println!("Ablation — instantaneous vs trailing-window CSI features (MLP)\n");
    rule(72);
    println!(
        "{:<26} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Features", "fold1", "fold2", "fold3", "fold4", "fold5"
    );
    rule(72);
    println!(
        "{:<26} {:>7}% {:>7}% {:>7}% {:>7}% {:>7}%",
        "instantaneous (paper)",
        pct(instant[0]),
        pct(instant[1]),
        pct(instant[2]),
        pct(instant[3]),
        pct(instant[4])
    );
    println!(
        "{:<26} {:>7}% {:>7}% {:>7}% {:>7}% {:>7}%",
        format!("+ window std ({window} smp)"),
        pct(windowed[0]),
        pct(windowed[1]),
        pct(windowed[2]),
        pct(windowed[3]),
        pct(windowed[4])
    );
    rule(72);
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "averages: instantaneous {}%, windowed {}%",
        pct(avg(&instant)),
        pct(avg(&windowed))
    );
}
