//! E13 (extension) — the paper's §VI future work: simultaneous occupancy
//! detection and activity recognition. Trains the four-way softmax MLP
//! (empty / seated / standing / walking) on fold 0 of the full campaign
//! and evaluates on the five test folds.

use occusense_bench::{pct, rule, Cli};
use occusense_core::activity::{ActivityConfig, ActivityRecognizer};
use occusense_core::dataset::folds::turetta_folds;
use occusense_core::sim::{simulate_annotated, ActivityClass, ScenarioConfig};
use occusense_core::stats::metrics::accuracy;
use occusense_core::Dataset;

fn main() {
    let cli = Cli::from_env();
    let mut scenario = ScenarioConfig::turetta2022(cli.seed);
    scenario.sample_rate_hz = cli.rate_hz;
    eprintln!("simulating annotated campaign at {} Hz…", cli.rate_hz);
    let (ds, labels) = simulate_annotated(&scenario);

    let folds = turetta_folds();
    let in_fold = |spec: &occusense_core::dataset::FoldSpec| -> (Dataset, Vec<ActivityClass>) {
        let mut d = Dataset::new();
        let mut l = Vec::new();
        for (r, a) in ds.iter().zip(&labels) {
            if (spec.start_s..spec.end_s).contains(&r.timestamp_s) {
                d.push(*r);
                l.push(*a);
            }
        }
        (d, l)
    };

    let (train, train_labels) = in_fold(&folds[0]);
    let model = ActivityRecognizer::train(
        &train,
        &train_labels,
        &ActivityConfig {
            seed: cli.seed,
            max_train_samples: Some(cli.train_cap),
            epochs: cli.epochs,
            ..ActivityConfig::default()
        },
    );

    println!("Extension E13 — activity recognition (empty/seated/standing/walking)\n");
    rule(72);
    println!(
        "{:<6} {:>14} {:>14} {:>20}",
        "Fold", "activity acc", "macro recall", "occupancy-from-act"
    );
    rule(72);
    let mut pooled_truth: Vec<usize> = Vec::new();
    let mut pooled_pred: Vec<usize> = Vec::new();
    for spec in &folds[1..] {
        let (fold, fold_labels) = in_fold(spec);
        if fold.is_empty() {
            continue;
        }
        let cm = model.evaluate(&fold, &fold_labels);
        let occ_pred = model.predict_occupancy(&fold);
        let occ_acc = accuracy(&fold.labels(), &occ_pred);
        println!(
            "{:<6} {:>13}% {:>13}% {:>19}%",
            spec.index,
            pct(cm.accuracy()),
            pct(cm.macro_recall()),
            pct(occ_acc)
        );
        pooled_truth.extend(fold_labels.iter().map(|c| c.label()));
        pooled_pred.extend(model.predict(&fold).iter().map(|c| c.label()));
    }
    rule(72);
    let pooled = occusense_core::stats::metrics::MultiConfusion::from_labels(
        ActivityClass::COUNT,
        &pooled_truth,
        &pooled_pred,
    );
    println!("pooled test folds:\n{pooled}");
    println!("\nclasses: 0 empty, 1 seated, 2 standing, 3 walking");
    println!("(the paper proposes this as future work; no reference values exist)");
}
