//! E2 — Table II: distribution of simultaneous subjects' presence in
//! terms of data samples.

use occusense_bench::{rule, Cli};
use occusense_core::experiments::table2;

/// Paper percentages for 0–4 occupants (Table II).
const PAPER_PCT: [f64; 5] = [63.2, 18.4, 10.6, 6.2, 1.6];

fn main() {
    let cli = Cli::from_env();
    let ds = cli.dataset();
    let profile = table2(&ds);

    println!("Table II — simultaneous subjects' presence distribution\n");
    rule(64);
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "Occupants", "# samples", "measured %", "paper %", "Δ"
    );
    rule(64);
    for (k, paper_pct) in PAPER_PCT.iter().enumerate() {
        let measured = profile.percentage(k);
        println!(
            "{:<10} {:>12} {:>11.1}% {:>11.1}% {:>11.1}",
            k,
            profile.count(k),
            measured,
            paper_pct,
            measured - paper_pct
        );
    }
    rule(64);
    let empty_pct = 100.0 * profile.empty_total() as f64 / profile.total() as f64;
    println!(
        "Empty {:>6.1}% (paper 63.2%) | Occupied {:>6.1}% (paper 36.8%) | total {}",
        empty_pct,
        100.0 - empty_pct,
        profile.total()
    );
}
