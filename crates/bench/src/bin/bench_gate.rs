//! Bench regression gate (CI): compares fresh `BENCH_*.json`
//! measurement runs against their committed baselines.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [<baseline2> <current2> …]
//!            [--tolerance <fraction>]
//! ```
//!
//! Paths come in `(baseline, current)` pairs so one invocation gates
//! every suite CI measured — train, wire, temporal — under a single
//! tolerance. Exits non-zero when any fresh number is non-finite (NaN
//! gate), a baseline benchmark is missing from its run, or a median
//! regressed past the tolerance (default 0.20). Also reports the
//! pooled-vs-spawn GRU-epoch speedup when both benches are present —
//! the headline number of the persistent compute pool.

use occusense_bench::gate::{compare, parse_results, speedup, BenchResult};
use std::process::ExitCode;

/// The pool's headline pair in `BENCH_train.json`.
const POOLED: &str = "train/gru_epoch_pooled_t4";
const SPAWN: &str = "train/gru_epoch_spawn_t4";

fn load(path: &str) -> Result<Vec<BenchResult>, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_results(&doc).map_err(|e| format!("{path}: {e}"))
}

/// Gates one `(baseline, current)` pair, printing the comparison
/// table. Returns the pair's failure messages (empty = pass).
fn gate_pair(baseline_path: &str, current_path: &str, tolerance: f64) -> Result<Vec<String>, String> {
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;

    println!("=== {baseline_path} vs {current_path} ===");
    println!(
        "{:<45} {:>14} {:>14} {:>8}",
        "benchmark", "baseline ns", "current ns", "ratio"
    );
    for b in &baseline {
        let (cur, ratio) = match occusense_bench::gate::find(&current, &b.name) {
            Some(c) => (
                format!("{:.0}", c.ns_per_iter),
                format!("{:.2}x", c.ns_per_iter / b.ns_per_iter),
            ),
            None => ("missing".to_string(), "-".to_string()),
        };
        println!(
            "{:<45} {:>14.0} {:>14} {:>8}",
            b.name, b.ns_per_iter, cur, ratio
        );
    }
    if let Some(s) = speedup(&current, POOLED, SPAWN) {
        println!("pooled vs spawn GRU-epoch throughput: {s:.2}x");
    }
    Ok(compare(&baseline, &current, tolerance)
        .into_iter()
        .map(|f| format!("{baseline_path}: {f}"))
        .collect())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.20;
    let mut paths = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t.is_finite() && t >= 0.0 => tolerance = t,
                _ => {
                    eprintln!("bench_gate: --tolerance needs a non-negative number");
                    return ExitCode::from(2);
                }
            },
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() || paths.len() % 2 != 0 {
        eprintln!(
            "usage: bench_gate <baseline.json> <current.json> \
             [<baseline2> <current2> …] [--tolerance <fraction>]"
        );
        return ExitCode::from(2);
    }

    let mut total_benchmarks = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for pair in paths.chunks_exact(2) {
        match gate_pair(&pair[0], &pair[1], tolerance) {
            Ok(pair_failures) => {
                total_benchmarks += load(&pair[0]).map_or(0, |b| b.len());
                failures.extend(pair_failures);
            }
            Err(e) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if failures.is_empty() {
        println!(
            "bench_gate: PASS ({} benchmarks across {} suites within {:.0}% of baseline)",
            total_benchmarks,
            paths.len() / 2,
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_gate: FAIL {f}");
        }
        ExitCode::FAILURE
    }
}
