//! Training-throughput regression gate (CI): compares a fresh
//! `BENCH_*.json` measurement run against a committed baseline.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [--tolerance <fraction>]
//! ```
//!
//! Exits non-zero when any fresh number is non-finite (NaN gate), a
//! baseline benchmark is missing from the run, or a median regressed
//! past the tolerance (default 0.20). Also reports the pooled-vs-spawn
//! GRU-epoch speedup when both benches are present — the headline
//! number of the persistent compute pool.

use occusense_bench::gate::{compare, parse_results, speedup, BenchResult};
use std::process::ExitCode;

/// The pool's headline pair in `BENCH_train.json`.
const POOLED: &str = "train/gru_epoch_pooled_t4";
const SPAWN: &str = "train/gru_epoch_spawn_t4";

fn load(path: &str) -> Result<Vec<BenchResult>, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_results(&doc).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.20;
    let mut paths = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t.is_finite() && t >= 0.0 => tolerance = t,
                _ => {
                    eprintln!("bench_gate: --tolerance needs a non-negative number");
                    return ExitCode::from(2);
                }
            },
            _ => paths.push(arg),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!("usage: bench_gate <baseline.json> <current.json> [--tolerance <fraction>]");
        return ExitCode::from(2);
    };

    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            return ExitCode::from(2);
        }
    };

    println!(
        "{:<45} {:>14} {:>14} {:>8}",
        "benchmark", "baseline ns", "current ns", "ratio"
    );
    for b in &baseline {
        let (cur, ratio) = match occusense_bench::gate::find(&current, &b.name) {
            Some(c) => (
                format!("{:.0}", c.ns_per_iter),
                format!("{:.2}x", c.ns_per_iter / b.ns_per_iter),
            ),
            None => ("missing".to_string(), "-".to_string()),
        };
        println!(
            "{:<45} {:>14.0} {:>14} {:>8}",
            b.name, b.ns_per_iter, cur, ratio
        );
    }
    if let Some(s) = speedup(&current, POOLED, SPAWN) {
        println!("pooled vs spawn GRU-epoch throughput: {s:.2}x");
    }

    let failures = compare(&baseline, &current, tolerance);
    if failures.is_empty() {
        println!(
            "bench_gate: PASS ({} benchmarks within {:.0}% of baseline)",
            baseline.len(),
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("bench_gate: FAIL {f}");
        }
        ExitCode::FAILURE
    }
}
