//! E20 (extension) — temporal sequence modeling in the multi-room
//! office: the per-frame MLP counter against the GRU sequence model
//! on held-out multi-room runs.
//!
//! Per-frame snapshots are ambiguous in the three-room layout — a
//! body near a doorway raises the monitored room's CSI variance
//! whether or not it is inside — so the GRU's temporal context is
//! expected to win on the derived presence label. The table feeds
//! EXPERIMENTS.md; the presence macro-F1 column is the acceptance
//! metric of the temporal subsystem.

use occusense_bench::{pct, rule, Cli};
use occusense_core::counting::{
    CountingConfig, OccupancyCounter, MAX_COUNT_CLASS, N_COUNT_CLASSES,
};
use occusense_core::sim::{simulate, ScenarioConfig};
use occusense_core::stats::metrics::MultiConfusion;
use occusense_core::temporal::{TemporalConfig, TemporalDetector};
use occusense_core::Dataset;

/// Seconds of multi-room simulation used for training.
const TRAIN_S: f64 = 3600.0;
/// Seconds per held-out evaluation run.
const TEST_S: f64 = 1800.0;
/// Number of held-out runs (distinct seeds).
const TEST_RUNS: u64 = 3;

/// Count-class truths and predictions for one or more runs. Pooling
/// happens at the label level: datasets from distinct runs cannot be
/// concatenated (timestamps restart at zero, and a pooled stream
/// would wrongly carry GRU state across run boundaries).
#[derive(Default)]
struct Labels {
    truth: Vec<usize>,
    pred: Vec<usize>,
}

impl Labels {
    fn extend(&mut self, ds: &Dataset, pred: &[usize]) {
        self.truth.extend(
            ds.records()
                .iter()
                .map(|r| (r.occupancy() as usize).min(MAX_COUNT_CLASS)),
        );
        self.pred.extend_from_slice(pred);
    }

    fn count_mae(&self) -> f64 {
        let total: f64 = self
            .truth
            .iter()
            .zip(&self.pred)
            .map(|(&t, &p)| (t as f64 - p as f64).abs())
            .sum();
        total / self.truth.len().max(1) as f64
    }

    fn occupancy_accuracy(&self) -> f64 {
        let hits = self
            .truth
            .iter()
            .zip(&self.pred)
            .filter(|&(&t, &p)| (t > 0) == (p > 0))
            .count();
        hits as f64 / self.truth.len().max(1) as f64
    }

    fn presence_macro_f1(&self) -> f64 {
        let truth: Vec<usize> = self.truth.iter().map(|&t| usize::from(t > 0)).collect();
        let pred: Vec<usize> = self.pred.iter().map(|&p| usize::from(p > 0)).collect();
        MultiConfusion::from_labels(2, &truth, &pred).macro_f1()
    }

    fn print_row(&self, name: &str) {
        let confusion = MultiConfusion::from_labels(N_COUNT_CLASSES, &self.truth, &self.pred);
        println!(
            "{:<22} {:>13}% {:>10.3} {:>13}% {:>15.3} {:>13.3}",
            name,
            pct(confusion.accuracy()),
            self.count_mae(),
            pct(self.occupancy_accuracy()),
            confusion.macro_f1(),
            self.presence_macro_f1(),
        );
    }
}

fn main() {
    let cli = Cli::from_env();
    eprintln!(
        "simulating multi-room office: {TRAIN_S:.0} s train + {TEST_RUNS} × {TEST_S:.0} s test, seed {}…",
        cli.seed
    );
    let train = simulate(&ScenarioConfig::multiroom(TRAIN_S, cli.seed));
    let tests: Vec<Dataset> = (0..TEST_RUNS)
        .map(|i| simulate(&ScenarioConfig::multiroom(TEST_S, cli.seed + 100 + i)))
        .collect();
    eprintln!(
        "…done ({} train records, {} test records)",
        train.len(),
        tests.iter().map(Dataset::len).sum::<usize>()
    );

    let mlp = OccupancyCounter::train(
        &train,
        &CountingConfig {
            seed: cli.seed,
            max_train_samples: Some(cli.train_cap),
            epochs: cli.epochs,
            ..CountingConfig::default()
        },
    );
    let gru = TemporalDetector::train(
        &train,
        &TemporalConfig {
            seed: cli.seed,
            epochs: cli.epochs,
            ..TemporalConfig::default()
        },
    );

    println!("Extension E20 — per-frame MLP vs GRU in the multi-room office\n");
    let width = 94;
    rule(width);
    println!(
        "{:<22} {:>14} {:>10} {:>14} {:>15} {:>13}",
        "Model", "exact-count acc", "count MAE", "occupancy acc", "count macro-F1", "presence F1"
    );
    rule(width);
    let mut mlp_pooled = Labels::default();
    let mut gru_pooled = Labels::default();
    for (i, test) in tests.iter().enumerate() {
        println!("run {} ({} records)", i + 1, test.len());
        let mut mlp_run = Labels::default();
        mlp_run.extend(test, &mlp.predict(test));
        let mut gru_run = Labels::default();
        gru_run.extend(test, &gru.predict(test));
        mlp_run.print_row("  per-frame MLP");
        gru_run.print_row("  GRU sequence");
        mlp_pooled.extend(test, &mlp_run.pred);
        gru_pooled.extend(test, &gru_run.pred);
    }
    rule(width);
    println!(
        "pooled over {TEST_RUNS} held-out runs ({} records)",
        mlp_pooled.truth.len()
    );
    mlp_pooled.print_row("  per-frame MLP");
    gru_pooled.print_row("  GRU sequence");
    rule(width);
    println!(
        "\npresence macro-F1 delta (GRU − MLP): {:+.3}",
        gru_pooled.presence_macro_f1() - mlp_pooled.presence_macro_f1()
    );
    println!("(extension beyond the paper: multi-room layouts are its stated future work)");
}
