//! E6 — Figure 3: Grad-CAM importance over all 66 input features (CSI
//! subcarriers in the paper's yellow band, temperature `e` and humidity
//! `h` in the red band), printed as a horizontal ASCII bar plot.

use occusense_bench::{rule, Cli};
use occusense_core::experiments::fig3;

fn main() {
    let cli = Cli::from_env();
    let ds = cli.dataset();
    let explanation = fig3(&ds, &cli.experiment_config());

    let max_abs = explanation
        .importance
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()))
        .max(1e-12);

    println!("Figure 3 — Grad-CAM importance per input feature (C+E MLP)\n");
    rule(76);
    for (name, &imp) in explanation
        .feature_names
        .iter()
        .zip(&explanation.importance)
    {
        let bar_len = ((imp.abs() / max_abs) * 40.0).round() as usize;
        let bar: String =
            std::iter::repeat_n(if imp >= 0.0 { '█' } else { '▒' }, bar_len).collect();
        println!("{name:>4} {imp:>10.5} |{bar}");
    }
    rule(76);

    // The paper's headline: CSI dominates, env importance ≈ 0.
    let csi_mean = explanation.mean_abs_importance(0..64);
    let env_mean = explanation.mean_abs_importance(64..66);
    println!("mean |importance| over CSI subcarriers: {csi_mean:.5}");
    println!("mean |importance| over temperature+humidity: {env_mean:.5}");
    println!(
        "ratio CSI/env: {:.1}x (paper: T/H importance ~0, CSI dominates)",
        csi_mean / env_mean.max(1e-12)
    );
    let top = explanation.top_features(8);
    let names: Vec<&str> = top
        .iter()
        .map(|&i| explanation.feature_names[i].as_str())
        .collect();
    println!("top-8 features by |importance|: {names:?}");
    println!("(paper: strongest bands a9–a17 and a57–a60)");
}
