//! E1 — Table I: the collected-data record format. Prints the head of a
//! freshly simulated dataset in the paper's column layout.

use occusense_bench::Cli;

fn main() {
    let mut cli = Cli::from_env();
    // Table I only needs a few seconds of data; force a light scenario.
    cli.rate_hz = cli.rate_hz.max(2.0);
    let mut scenario = occusense_core::sim::ScenarioConfig::turetta2022(cli.seed);
    scenario.sample_rate_hz = cli.rate_hz;
    scenario.duration_s = 5.0;
    let ds = occusense_core::sim::simulate(&scenario);

    println!(
        "Table I — format of the collected data (first {} records)",
        ds.len()
    );
    println!(
        "{:<12} {:>8} {:>8} … {:>8} {:>11} {:>8} {:>9}",
        "Timestamp", "a0", "a1", "a63", "Temperature", "Humidity", "Occupancy"
    );
    for r in &ds {
        println!(
            "{:<12.3} {:>8.4} {:>8.4} … {:>8.4} {:>11.2} {:>8.0} {:>9}",
            r.timestamp_s,
            r.csi[0],
            r.csi[1],
            r.csi[63],
            r.temperature_c,
            r.humidity_pct,
            r.occupancy()
        );
    }
    println!("\n(64 subcarrier amplitude columns a0..a63; humidity is integer-valued;");
    println!(" occupancy = 1 if at least one person is in the environment — §IV-A)");
}
