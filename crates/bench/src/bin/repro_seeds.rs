//! E19 (robustness) — multi-seed repetition of the Table IV CSI column.
//!
//! Every other repro binary reports a single seeded run; this one
//! repeats the headline experiment across several scenario seeds and
//! reports mean ± std of the fold-averaged accuracy, so the shape claims
//! in EXPERIMENTS.md are backed by more than one draw.

use occusense_bench::{rule, Cli};
use occusense_core::detector::ModelKind;
use occusense_core::experiments::{table4, ExperimentConfig};
use occusense_core::sim::{simulate, ScenarioConfig};
use occusense_core::FeatureView;

const N_SEEDS: u64 = 3;

fn main() {
    let cli = Cli::from_env();
    let mut per_model: Vec<(ModelKind, Vec<f64>, Vec<f64>)> = ModelKind::TABLE4
        .iter()
        .map(|&m| (m, Vec::new(), Vec::new()))
        .collect();

    for seed in 0..N_SEEDS {
        eprintln!("seed {seed}: simulating + training…");
        let mut scenario = ScenarioConfig::turetta2022(cli.seed + seed);
        scenario.sample_rate_hz = cli.rate_hz;
        let ds = simulate(&scenario);
        let cfg = ExperimentConfig {
            seed: cli.seed + seed,
            max_train_samples: cli.train_cap,
            epochs: cli.epochs,
            ..ExperimentConfig::default()
        };
        let t4 = table4(&ds, &cfg);
        for (model, avgs, fold4s) in &mut per_model {
            let cell = t4.cell(*model, FeatureView::Csi).expect("CSI cell");
            avgs.push(cell.average());
            fold4s.push(cell.fold_accuracy[3]);
        }
    }

    let stats = |v: &[f64]| {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        (100.0 * mean, 100.0 * var.sqrt())
    };

    println!("Robustness — Table IV CSI column over {N_SEEDS} scenario seeds\n");
    rule(72);
    println!(
        "{:<22} {:>18} {:>18} {:>10}",
        "Model", "avg acc (mean±std)", "fold-4 (mean±std)", "paper avg"
    );
    rule(72);
    for (model, avgs, fold4s) in &per_model {
        let (am, asd) = stats(avgs);
        let (fm, fsd) = stats(fold4s);
        let paper = match model {
            ModelKind::LogisticRegression => 81,
            ModelKind::RandomForest => 97,
            ModelKind::Mlp => 97,
        };
        println!(
            "{:<22} {:>11.1} ± {:>4.1} {:>11.1} ± {:>4.1} {:>10}",
            model.name(),
            am,
            asd,
            fm,
            fsd,
            paper
        );
    }
    rule(72);
    println!("(each seed redraws the occupant schedules, mobility, noise and weights)");
}
