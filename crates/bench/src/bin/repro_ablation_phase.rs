//! E17 (ablation, extension) — amplitude-only vs amplitude + sanitised
//! phase. §II-A of the paper keeps "only the information contained in
//! the CSI amplitude"; this ablation measures what sanitised phase
//! (CFO/SFO removed by linear detrending) would add, and confirms that
//! *raw* phase is useless on commodity hardware.

use occusense_bench::{pct, rule, Cli};
use occusense_core::channel::phase::{sanitize, PhaseImpairments};
use occusense_core::dataset::Standardizer;
use occusense_core::nn::loss::BceWithLogits;
use occusense_core::nn::optim::AdamW;
use occusense_core::nn::train::{TrainConfig, Trainer};
use occusense_core::nn::Mlp;
use occusense_core::sim::{OfficeSimulator, ScenarioConfig};
use occusense_core::stats::metrics::accuracy;
use occusense_core::tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One sample: label + three candidate feature encodings.
struct Sample {
    label: u8,
    amplitude: Vec<f64>,
    raw_phase: Vec<f64>,
    sanitized_phase: Vec<f64>,
}

fn collect(duration_s: f64, seed: u64) -> Vec<Sample> {
    let mut cfg = ScenarioConfig::quick(duration_s, seed);
    cfg.sample_rate_hz = 2.0;
    let n = cfg.n_samples();
    let mut sim = OfficeSimulator::new(cfg);
    let impairments = PhaseImpairments::commodity();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfa5e);
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let record = sim.step();
        // Recompute the complex response for the stepped scene and apply
        // the phase impairments a real sniffer would add.
        let mut response = sim.scene().frequency_response();
        impairments.apply(&mut response, &mut rng);
        samples.push(Sample {
            label: record.occupancy(),
            amplitude: record.csi.to_vec(),
            raw_phase: response.iter().map(|h| h.arg()).collect(),
            sanitized_phase: sanitize(&response),
        });
    }
    samples
}

fn evaluate(
    samples: &[Sample],
    split: usize,
    encode: &dyn Fn(&Sample) -> Vec<f64>,
    epochs: usize,
    seed: u64,
) -> f64 {
    let d = encode(&samples[0]).len();
    let build = |range: &[Sample]| -> (Matrix, Vec<u8>) {
        let mut data = Vec::with_capacity(range.len() * d);
        let mut labels = Vec::with_capacity(range.len());
        for s in range {
            data.extend(encode(s));
            labels.push(s.label);
        }
        (Matrix::from_vec(range.len(), d, data), labels)
    };
    let (x_train_raw, y_train) = build(&samples[..split]);
    let (x_test_raw, y_test) = build(&samples[split..]);
    let standardizer = Standardizer::fit(&x_train_raw);
    let x_train = standardizer.transform(&x_train_raw);
    let x_test = standardizer.transform(&x_test_raw);
    let mut mlp = Mlp::paper_classifier(d, seed);
    let mut optim = AdamW::new(5e-3, 1e-4);
    let y = Matrix::col_vector(&y_train.iter().map(|&l| l as f64).collect::<Vec<_>>());
    Trainer::new(TrainConfig {
        epochs,
        batch_size: 256,
        shuffle_seed: seed,
        ..TrainConfig::default()
    })
    .fit(&mut mlp, &x_train, &y, &BceWithLogits, &mut optim);
    accuracy(&y_test, &mlp.predict_labels(&x_test))
}

fn main() {
    let cli = Cli::from_env();
    eprintln!("collecting impaired complex CSI (quick scenario)…");
    let samples = collect(4800.0, cli.seed);
    let split = (samples.len() * 7) / 10;

    let concat = |a: &[f64], b: &[f64]| {
        let mut v = a.to_vec();
        v.extend_from_slice(b);
        v
    };

    println!("Ablation — what does CSI phase add over amplitude? (MLP)\n");
    rule(64);
    println!("{:<36} {:>14}", "Features", "test accuracy");
    rule(64);
    for (name, encode) in [
        (
            "amplitude only (paper)",
            Box::new(|s: &Sample| s.amplitude.clone()) as Box<dyn Fn(&Sample) -> Vec<f64>>,
        ),
        ("raw phase only", Box::new(|s: &Sample| s.raw_phase.clone())),
        (
            "sanitised phase only",
            Box::new(|s: &Sample| s.sanitized_phase.clone()),
        ),
        (
            "amplitude + sanitised phase",
            Box::new(move |s: &Sample| concat(&s.amplitude, &s.sanitized_phase)),
        ),
    ] {
        let acc = evaluate(&samples, split, &*encode, cli.epochs, cli.seed);
        println!("{:<36} {:>13}%", name, pct(acc));
    }
    rule(64);
    println!("expected shape: raw phase ≈ chance (CFO/SFO randomise it per frame);");
    println!("sanitised phase carries signal; amplitude remains the strongest single");
    println!("encoding on commodity hardware — the paper's §II-A design choice.");
}
