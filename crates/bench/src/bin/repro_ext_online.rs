//! E18 (extension) — online/continual training, §V-B's stated advantage
//! of the MLP: stream the five test folds in temporal order through a
//! frozen detector and through an online learner (prequential,
//! test-then-train), and compare per-fold accuracy. The interesting
//! cells are folds 4–5, after the furniture rearrangement.

use occusense_bench::{pct, rule, Cli};
use occusense_core::dataset::folds::split_by_folds;
use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_core::online::{OnlineConfig, OnlineDetector};
use occusense_core::FeatureView;

fn main() {
    let cli = Cli::from_env();
    let ds = cli.dataset();
    let (train, tests) = split_by_folds(&ds);
    let det = OccupancyDetector::train(
        &train,
        &DetectorConfig {
            model: ModelKind::Mlp,
            features: FeatureView::Csi,
            seed: cli.seed,
            max_train_samples: Some(cli.train_cap),
            mlp_epochs: cli.epochs,
            ..DetectorConfig::default()
        },
    );
    let mut online =
        OnlineDetector::from_detector(&det, OnlineConfig::default()).expect("MLP detector");

    println!("Extension E18 — frozen vs online (prequential) MLP on the test stream\n");
    rule(64);
    println!(
        "{:<6} {:>14} {:>16} {:>12}",
        "Fold", "frozen acc", "prequential acc", "Δ (pp)"
    );
    rule(64);
    for (i, fold) in tests.iter().enumerate() {
        let frozen = det.evaluate(fold).accuracy();
        let mut correct = 0usize;
        for r in fold.records() {
            let (pred, _) = online.observe(r, r.occupancy());
            correct += usize::from(pred == r.occupancy());
        }
        let preq = correct as f64 / fold.len().max(1) as f64;
        println!(
            "{:<6} {:>13}% {:>15}% {:>+12.2}",
            i + 1,
            pct(frozen),
            pct(preq),
            100.0 * (preq - frozen)
        );
    }
    rule(64);
    println!(
        "online learner took {} gradient steps over the stream",
        online.updates()
    );
    println!("(labels are the simulator's ground truth — in deployment they would come");
    println!(" from occasional annotation, a door sensor, or self-training)");
}
