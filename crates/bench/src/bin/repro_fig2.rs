//! Figure 2 — the data-collection environment. Renders the simulated
//! office as an ASCII floor plan: room shell, access point and sniffer,
//! desks/cabinets of the active furniture layout, door and the
//! no-walking strip between the radios. (Figure 1 of the paper is a
//! conceptual WiFi-sensing diagram with no quantitative content to
//! reproduce.)

use occusense_core::channel::scene::Scene;
use occusense_core::sim::mobility::MobilityConfig;
use occusense_core::sim::occupants::{DESKS, DOOR_XY};

const COLS: usize = 73; // 12 m  → 6 chars per metre
const ROWS: usize = 25; // 6 m   → 4 chars per metre

fn plot(grid: &mut [Vec<char>], x_m: f64, y_m: f64, c: char) {
    let col = ((x_m / 12.0) * (COLS - 1) as f64).round() as usize;
    let row = ((1.0 - y_m / 6.0) * (ROWS - 1) as f64).round() as usize;
    grid[row.min(ROWS - 1)][col.min(COLS - 1)] = c;
}

fn main() {
    let scene = Scene::office_default();
    let mobility = MobilityConfig::office_default();
    let mut grid = vec![vec![' '; COLS]; ROWS];

    // Walls.
    grid[0].fill('─');
    grid[ROWS - 1].fill('─');
    for row in grid.iter_mut() {
        row[0] = '│';
        row[COLS - 1] = '│';
    }
    grid[0][0] = '┌';
    grid[0][COLS - 1] = '┐';
    grid[ROWS - 1][0] = '└';
    grid[ROWS - 1][COLS - 1] = '┘';

    // Exclusion strip in front of the radios (occupants cannot pass
    // between AP and RX, §IV-A).
    let (x0, x1) = mobility.exclusion_x;
    let y_max = mobility.exclusion_y_max;
    let mut x = x0;
    while x <= x1 {
        let mut y = 0.15;
        while y < y_max {
            plot(&mut grid, x, y, '·');
            y += 0.3;
        }
        x += 0.25;
    }

    // Furniture.
    for sc in &scene.scatterers {
        let c = if sc.position.z > 1.0 { 'C' } else { 'd' };
        plot(&mut grid, sc.position.x, sc.position.y, c);
    }
    // Desk seats of the six subjects.
    for &(x, y) in &DESKS {
        plot(&mut grid, x, y, 'o');
    }
    // Radios and sensor chain.
    plot(&mut grid, scene.tx.x, scene.tx.y, 'A');
    plot(&mut grid, scene.rx.x, scene.rx.y, 'R');
    // Door.
    plot(&mut grid, DOOR_XY.0, DOOR_XY.1, 'D');

    println!("Figure 2 — the 12 × 6 m office (1 char ≈ 17 cm × 25 cm)\n");
    for row in &grid {
        println!("{}", row.iter().collect::<String>());
    }
    println!();
    println!("A access point   R Raspberry Pi sniffer (2 m from A, 1.4 m high)");
    println!("D entrance door  d desk   C cabinet   o subject seat");
    println!("· no-walking strip between the radios (§IV-A constraint)");
    println!();
    println!(
        "walls: south/north plasterboard, west concrete, east glass (windows),\n\
         concrete floor, tiled ceiling — see occusense-channel::scene"
    );
}
