//! Regression gate over the criterion-shim's `BENCH_*.json` output.
//!
//! The shim writes `{"results": [{"name": …, "ns_per_iter": …,
//! "p99_ns_per_iter": …}, …]}` on measurement runs. The `bench_gate`
//! binary parses a committed baseline and a fresh run and fails when
//!
//! * a baseline benchmark is missing from the fresh run,
//! * any fresh number is non-finite or non-positive (a NaN that
//!   slipped past the in-bench `assert_finite` guards, or a truncated
//!   file), or
//! * a fresh median is slower than its baseline by more than the
//!   tolerance (default 20% — CI runners are noisy; the committed
//!   baselines themselves are refreshed manually on a quiet machine).
//!
//! Parsing is hand-rolled over the shim's fixed shape — the workspace
//! is offline, so no JSON dependency — and deliberately strict: any
//! result object it cannot fully read is an error, not a skip.

/// One benchmark measurement from a `BENCH_*.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name, e.g. `train/gru_epoch_pooled_t4`.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// 99th-percentile nanoseconds per iteration.
    pub p99_ns_per_iter: f64,
}

/// Extracts the string value of `key` from one result object.
fn field_str(obj: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\"");
    let at = obj
        .find(&pat)
        .ok_or_else(|| format!("missing key {pat} in `{obj}`"))?;
    let rest = &obj[at + pat.len()..];
    let open = rest
        .find('"')
        .ok_or_else(|| format!("{pat}: no opening quote in `{obj}`"))?;
    let rest = &rest[open + 1..];
    // The shim escapes only quotes and backslashes.
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next() {
            Some('\\') => match chars.next() {
                Some(c) => out.push(c),
                None => return Err(format!("{pat}: unterminated escape in `{obj}`")),
            },
            Some('"') => return Ok(out),
            Some(c) => out.push(c),
            None => return Err(format!("{pat}: unterminated string in `{obj}`")),
        }
    }
}

/// Extracts the numeric value of `key` from one result object. A value
/// that does not parse as a finite number (`NaN`, `null`, garbage) is
/// reported as [`f64::NAN`] so the gate can flag it by name instead of
/// erroring out of the whole run.
fn field_num(obj: &str, key: &str) -> Result<f64, String> {
    let pat = format!("\"{key}\"");
    let at = obj
        .find(&pat)
        .ok_or_else(|| format!("missing key {pat} in `{obj}`"))?;
    let rest = obj[at + pat.len()..]
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("{pat}: expected `:` in `{obj}`"))?
        .trim_start();
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .unwrap_or(rest.len());
    Ok(rest[..end].parse::<f64>().unwrap_or(f64::NAN))
}

/// Parses a full `BENCH_*.json` document into its results.
///
/// # Errors
///
/// Returns a message when the document has no `results` array or a
/// result object is structurally unreadable.
pub fn parse_results(doc: &str) -> Result<Vec<BenchResult>, String> {
    let at = doc
        .find("\"results\"")
        .ok_or_else(|| "no \"results\" key in document".to_string())?;
    let mut out = Vec::new();
    let mut rest = &doc[at..];
    while let Some(open) = rest.find('{') {
        let close = rest[open..]
            .find('}')
            .ok_or_else(|| "unterminated result object".to_string())?;
        let obj = &rest[open..open + close + 1];
        out.push(BenchResult {
            name: field_str(obj, "name")?,
            ns_per_iter: field_num(obj, "ns_per_iter")?,
            p99_ns_per_iter: field_num(obj, "p99_ns_per_iter")?,
        });
        rest = &rest[open + close + 1..];
    }
    Ok(out)
}

/// Looks up a benchmark by exact name.
pub fn find<'a>(results: &'a [BenchResult], name: &str) -> Option<&'a BenchResult> {
    results.iter().find(|r| r.name == name)
}

/// Compares a fresh run against a baseline. Returns one human-readable
/// failure per violated contract; an empty vector is a pass.
pub fn compare(baseline: &[BenchResult], current: &[BenchResult], tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    // Every fresh number must be a real, positive duration — this is
    // the NaN gate, and it applies to benches the baseline has not
    // heard of yet, too.
    for r in current {
        if !(r.ns_per_iter.is_finite() && r.ns_per_iter > 0.0) {
            failures.push(format!(
                "{}: median is not a positive finite duration ({})",
                r.name, r.ns_per_iter
            ));
        }
        if !(r.p99_ns_per_iter.is_finite() && r.p99_ns_per_iter > 0.0) {
            failures.push(format!(
                "{}: p99 is not a positive finite duration ({})",
                r.name, r.p99_ns_per_iter
            ));
        }
    }
    for b in baseline {
        let Some(c) = find(current, &b.name) else {
            failures.push(format!("{}: present in baseline, missing from run", b.name));
            continue;
        };
        if !(b.ns_per_iter.is_finite() && b.ns_per_iter > 0.0) {
            failures.push(format!(
                "{}: baseline median is unusable ({})",
                b.name, b.ns_per_iter
            ));
            continue;
        }
        let limit = b.ns_per_iter * (1.0 + tolerance);
        if c.ns_per_iter > limit {
            failures.push(format!(
                "{}: regressed {:.1}% over baseline ({:.0} ns vs {:.0} ns, limit {:.0}%)",
                b.name,
                (c.ns_per_iter / b.ns_per_iter - 1.0) * 100.0,
                c.ns_per_iter,
                b.ns_per_iter,
                tolerance * 100.0
            ));
        }
    }
    failures
}

/// Throughput ratio `slow/fast` between two named benchmarks (how many
/// times more iterations per second `fast` sustains), when both exist
/// with usable medians.
pub fn speedup(results: &[BenchResult], fast: &str, slow: &str) -> Option<f64> {
    let f = find(results, fast)?.ns_per_iter;
    let s = find(results, slow)?.ns_per_iter;
    (f.is_finite() && f > 0.0 && s.is_finite()).then_some(s / f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(entries: &[(&str, &str, &str)]) -> String {
        let body: Vec<String> = entries
            .iter()
            .map(|(n, v, p)| {
                format!("    {{\"name\": \"{n}\", \"ns_per_iter\": {v}, \"p99_ns_per_iter\": {p}}}")
            })
            .collect();
        format!("{{\n  \"results\": [\n{}\n  ]\n}}\n", body.join(",\n"))
    }

    fn results(entries: &[(&str, f64)]) -> Vec<BenchResult> {
        entries
            .iter()
            .map(|&(n, v)| BenchResult {
                name: n.to_string(),
                ns_per_iter: v,
                p99_ns_per_iter: v,
            })
            .collect()
    }

    #[test]
    fn parses_the_shim_format_round_trip() {
        let parsed = parse_results(&doc(&[
            ("train/gru_epoch_pooled_t4", "123", "456"),
            ("train/adamw_fused_step_65536", "7", "8"),
        ]))
        .unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "train/gru_epoch_pooled_t4");
        assert_eq!(parsed[0].ns_per_iter, 123.0);
        assert_eq!(parsed[1].p99_ns_per_iter, 8.0);
    }

    #[test]
    fn unparseable_numbers_become_nan_failures_not_parse_errors() {
        let parsed = parse_results(&doc(&[("a", "NaN", "1"), ("b", "null", "2")])).unwrap();
        assert!(parsed[0].ns_per_iter.is_nan());
        let failures = compare(&[], &parsed, 0.2);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains('a'), "{failures:?}");
    }

    #[test]
    fn documents_without_results_are_errors() {
        assert!(parse_results("{}").is_err());
        assert!(parse_results("").is_err());
    }

    #[test]
    fn within_tolerance_passes_beyond_fails() {
        let base = results(&[("x", 100.0)]);
        assert!(compare(&base, &results(&[("x", 119.0)]), 0.2).is_empty());
        let failures = compare(&base, &results(&[("x", 121.0)]), 0.2);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("regressed"), "{failures:?}");
    }

    #[test]
    fn missing_benchmarks_fail_extra_ones_do_not() {
        let failures = compare(&results(&[("gone", 10.0)]), &results(&[("new", 10.0)]), 0.2);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("missing"), "{failures:?}");
    }

    #[test]
    fn speedup_is_slow_over_fast() {
        let r = results(&[("fast", 100.0), ("slow", 450.0)]);
        assert_eq!(speedup(&r, "fast", "slow"), Some(4.5));
        assert_eq!(speedup(&r, "fast", "absent"), None);
    }
}
