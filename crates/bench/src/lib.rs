//! # occusense-bench
//!
//! The reproduction harness: one `repro_*` binary per table/figure of the
//! paper plus Criterion micro-benchmarks (see `benches/`). Every binary
//! prints measured values side by side with the paper's reported numbers
//! so the *shape* comparison is immediate.
//!
//! Common CLI flags (all binaries):
//!
//! * `--rate <hz>` — CSI sampling rate of the simulated campaign
//!   (default 2.0; the paper's hardware ran at 20 Hz).
//! * `--seed <u64>` — master scenario seed (default 0).
//! * `--train-cap <n>` — stratified cap on model training sets
//!   (default 40 000).
//! * `--epochs <n>` — MLP/NN training epochs (default 10).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod gate;

use occusense_core::experiments::ExperimentConfig;
use occusense_core::sim::{simulate, ScenarioConfig};
use occusense_core::Dataset;

/// Parsed common CLI options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cli {
    /// Simulated CSI sampling rate, Hz.
    pub rate_hz: f64,
    /// Master seed.
    pub seed: u64,
    /// Stratified training-set cap.
    pub train_cap: usize,
    /// Training epochs.
    pub epochs: usize,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            rate_hz: 2.0,
            seed: 0,
            train_cap: 40_000,
            epochs: 10,
        }
    }
}

impl Cli {
    /// Parses `std::env::args()`-style arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut cli = Cli::default();
        let mut args = args.peekable();
        while let Some(flag) = args.next() {
            let mut value = |what: &str| -> String {
                args.next()
                    .unwrap_or_else(|| panic!("flag {what} needs a value"))
            };
            match flag.as_str() {
                "--rate" => cli.rate_hz = value("--rate").parse().expect("bad --rate"),
                "--seed" => cli.seed = value("--seed").parse().expect("bad --seed"),
                "--train-cap" => {
                    cli.train_cap = value("--train-cap").parse().expect("bad --train-cap")
                }
                "--epochs" => cli.epochs = value("--epochs").parse().expect("bad --epochs"),
                other => panic!("unknown flag '{other}' (see crate docs for usage)"),
            }
        }
        cli
    }

    /// Parses the process arguments (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The experiment configuration implied by these options.
    pub fn experiment_config(&self) -> ExperimentConfig {
        ExperimentConfig {
            seed: self.seed,
            max_train_samples: self.train_cap,
            epochs: self.epochs,
            ..ExperimentConfig::default()
        }
    }

    /// Simulates the `turetta2022` campaign at the requested rate.
    pub fn dataset(&self) -> Dataset {
        let mut cfg = ScenarioConfig::turetta2022(self.seed);
        cfg.sample_rate_hz = self.rate_hz;
        eprintln!(
            "simulating turetta2022 campaign: {:.2} Hz, seed {} ({} samples)…",
            self.rate_hz,
            self.seed,
            cfg.n_samples()
        );
        let ds = simulate(&cfg);
        eprintln!("…done ({} records)", ds.len());
        ds
    }
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats an accuracy fraction as the paper's integer percent.
pub fn pct(fraction: f64) -> String {
    format!("{:3.0}", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Cli {
        Cli::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_flags() {
        let cli = parse(&[]);
        assert_eq!(cli, Cli::default());
    }

    #[test]
    fn parses_all_flags() {
        let cli = parse(&[
            "--rate",
            "0.5",
            "--seed",
            "9",
            "--train-cap",
            "1000",
            "--epochs",
            "3",
        ]);
        assert_eq!(cli.rate_hz, 0.5);
        assert_eq!(cli.seed, 9);
        assert_eq!(cli.train_cap, 1000);
        assert_eq!(cli.epochs, 3);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown_flags() {
        parse(&["--frobnicate"]);
    }

    #[test]
    fn experiment_config_propagates() {
        let cli = parse(&["--train-cap", "123", "--epochs", "4"]);
        let cfg = cli.experiment_config();
        assert_eq!(cfg.max_train_samples, 123);
        assert_eq!(cfg.epochs, 4);
    }

    #[test]
    fn pct_formats_paper_style() {
        assert_eq!(pct(0.97), " 97");
        assert_eq!(pct(1.0), "100");
    }
}
