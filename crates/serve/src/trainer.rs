//! The trainer thread: continual learning feeding hot swaps.
//!
//! Labelled records teed off the inference path land in a bounded
//! `DropOldest` queue consumed here by an
//! [`OnlineDetector`](occusense_core::online::OnlineDetector) — the
//! paper's §V-B continual-training argument made operational. Every
//! `publish_every_updates` gradient steps the current weights are
//! frozen into a snapshot and published to the workers' model handle.

use crate::metrics::Counter;
use crate::model::ModelHandle;
use crate::queue::BoundedQueue;
use occusense_core::online::OnlineDetector;
use occusense_dataset::CsiRecord;
use std::sync::Arc;

/// A ground-truth-labelled record for continual training.
#[derive(Debug, Clone)]
pub struct LabelledRecord {
    /// The record.
    pub record: CsiRecord,
    /// Its binary occupancy label.
    pub label: u8,
}

/// Everything the trainer thread needs.
pub(crate) struct TrainerContext {
    pub queue: Arc<BoundedQueue<LabelledRecord>>,
    pub model: Arc<ModelHandle>,
    pub online: OnlineDetector,
    pub publish_every_updates: u64,
    pub observed: Arc<Counter>,
    pub publishes: Arc<Counter>,
}

/// The trainer loop: drains until the queue is closed and empty, then
/// publishes a final snapshot if any unpublished updates remain.
pub(crate) fn run(mut ctx: TrainerContext) {
    let mut published_at_update = 0u64;
    while let Some(labelled) = ctx.queue.pop() {
        ctx.online.observe(&labelled.record, labelled.label);
        ctx.observed.inc();
        let updates = ctx.online.updates();
        if updates >= published_at_update + ctx.publish_every_updates {
            ctx.model.publish(ctx.online.snapshot_detector());
            ctx.publishes.inc();
            published_at_update = updates;
        }
    }
    if ctx.online.updates() > published_at_update {
        ctx.model.publish(ctx.online.snapshot_detector());
        ctx.publishes.inc();
    }
}
