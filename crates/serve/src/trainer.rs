//! The trainer thread: continual learning feeding hot swaps, under
//! the same panic supervision as the worker shards.
//!
//! Labelled records teed off the inference path land in a bounded
//! `DropOldest` queue consumed here by an
//! [`OnlineDetector`](occusense_core::online::OnlineDetector) — the
//! paper's §V-B continual-training argument made operational. Every
//! `publish_every_updates` gradient steps the current weights are
//! frozen into a snapshot and published to the workers' model handle;
//! every `every_publishes` publications the snapshot is also persisted
//! as a crash-safe checkpoint (`occusense_core::persist`).
//!
//! On a panic the trainer falls back to the **last good snapshot**:
//! the learner is rebuilt from the currently published model, the
//! record being observed is counted as poisoned, and consumption
//! resumes. Inference never notices — workers keep scoring against
//! the published snapshot throughout.

use crate::metrics::Counter;
use crate::model::ModelHandle;
use crate::queue::BoundedQueue;
use crate::supervisor::{panic_message, CheckpointConfig, SupervisorState};
use occusense_core::online::{OnlineConfig, OnlineDetector};
use occusense_core::persist;
use occusense_dataset::CsiRecord;
use occusense_sim::stream::is_trainer_panic_trigger;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A ground-truth-labelled record for continual training.
#[derive(Debug, Clone)]
pub struct LabelledRecord {
    /// The record.
    pub record: CsiRecord,
    /// Its binary occupancy label.
    pub label: u8,
}

/// Everything the trainer thread needs.
pub(crate) struct TrainerContext {
    pub queue: Arc<BoundedQueue<LabelledRecord>>,
    pub model: Arc<ModelHandle>,
    pub online: OnlineDetector,
    pub online_config: OnlineConfig,
    pub publish_every_updates: u64,
    pub checkpoint: Option<CheckpointConfig>,
    pub observed: Arc<Counter>,
    /// Buffer-growth events in the learner's workspace *after* the
    /// warm-up gradient steps — the continual-training loop holds one
    /// warm workspace for the whole run, so this must stay zero.
    pub steady_reallocs: Arc<Counter>,
    pub publishes: Arc<Counter>,
    pub restarts: Arc<Counter>,
    pub checkpoints: Arc<Counter>,
    pub checkpoint_failures: Arc<Counter>,
    pub supervision: Arc<SupervisorState>,
    pub max_restarts: u64,
    pub panic_on_trigger: bool,
}

/// The supervised trainer loop: drains until the queue is closed and
/// empty, surviving up to `max_restarts` panics by rebuilding the
/// learner from the last published snapshot. Past the limit continual
/// training is abandoned for the run — the last snapshot keeps
/// serving, which is the safe direction to fail.
pub(crate) fn run(mut ctx: TrainerContext) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| train_loop(&mut ctx))) {
            Ok(()) => return,
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                let restarts = ctx.supervision.record_trainer_panic(&message);
                ctx.restarts.inc();
                if restarts > ctx.max_restarts {
                    return;
                }
                // Fall back to the last good snapshot. The trainer only
                // runs on frame runtimes and publishes MLP-backed
                // models, so the rebuild cannot fail; the guard keeps a
                // logic error from looping forever.
                let snapshot = ctx.model.current();
                match snapshot
                    .frame()
                    .and_then(|d| OnlineDetector::from_detector(d, ctx.online_config))
                {
                    Some(online) => ctx.online = online,
                    None => return,
                }
            }
        }
    }
}

/// One supervised span of the drain loop (the unwind-protected region).
fn train_loop(ctx: &mut TrainerContext) {
    // The rebuilt learner restarts its update count at zero, so the
    // publish cadence is tracked per span.
    let mut published_at_update = 0u64;
    // Realloc watermark, armed once two gradient steps have sized the
    // warm workspace. Any growth past it is a steady-state allocation
    // and counted — the metric the allocation-free contract asserts on.
    let mut realloc_watermark: Option<u64> = None;
    while let Some(labelled) = ctx.queue.pop() {
        if ctx.panic_on_trigger && is_trainer_panic_trigger(&labelled.record) {
            // lint:allow(panic, reason = "fault injection: this panic IS the feature under test; it exercises the supervisor's restart path")
            panic!("fault injection: scripted trainer panic trigger");
        }
        ctx.online.observe(&labelled.record, labelled.label);
        ctx.observed.inc();
        let updates = ctx.online.updates();
        if updates >= 2 {
            let reallocs = ctx.online.reallocs();
            match realloc_watermark {
                None => realloc_watermark = Some(reallocs),
                Some(mark) if reallocs > mark => {
                    ctx.steady_reallocs.add(reallocs - mark);
                    realloc_watermark = Some(reallocs);
                }
                Some(_) => {}
            }
        }
        if updates >= published_at_update + ctx.publish_every_updates {
            publish(ctx);
            published_at_update = updates;
        }
    }
    if ctx.online.updates() > published_at_update {
        publish(ctx);
    }
}

/// Publishes the current weights and, on the configured cadence,
/// persists them as a crash-safe checkpoint. Checkpoint failures are
/// counted and logged, never allowed to take the trainer down.
fn publish(ctx: &TrainerContext) {
    let detector = ctx.online.snapshot_detector();
    let version = ctx.model.publish(detector.clone());
    ctx.publishes.inc();
    let Some(cfg) = &ctx.checkpoint else { return };
    if !ctx
        .publishes
        .get()
        .is_multiple_of(cfg.every_publishes.max(1))
    {
        return;
    }
    let path = persist::checkpoint_path(&cfg.dir, version);
    match persist::save_detector_atomic(&path, &detector) {
        Ok(()) => {
            ctx.checkpoints.inc();
            let _ = persist::prune_checkpoints(&cfg.dir, cfg.keep);
        }
        Err(e) => {
            ctx.checkpoint_failures.inc();
            ctx.supervision
                .log_panic(format!("checkpoint v{version} failed: {e}"));
        }
    }
}
