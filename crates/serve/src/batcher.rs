//! Per-worker micro-batching.
//!
//! Each worker accumulates dequeued jobs until either `max_batch`
//! records are waiting or the *oldest* waiting record has been held for
//! `max_delay` — the standard latency/throughput trade of serving
//! systems: one batched forward pass amortises the per-call overhead
//! of the network, while the deadline bounds the latency cost a record
//! can pay for the privilege.
//!
//! The batcher is a pure state machine (no threads, no clock of its
//! own); the worker drives it with explicit `Instant`s, which is what
//! makes the deadline semantics unit-testable.

use std::time::{Duration, Instant};

/// Micro-batching knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Flush as soon as this many records are waiting.
    pub max_batch: usize,
    /// Flush once the oldest waiting record is this old.
    pub max_delay: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay: Duration::from_millis(5),
        }
    }
}

/// Accumulates items until a size or deadline trigger fires.
#[derive(Debug)]
pub struct MicroBatcher<T> {
    config: BatchConfig,
    items: Vec<T>,
    oldest: Option<Instant>,
}

impl<T> MicroBatcher<T> {
    /// Creates an empty batcher.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(config: BatchConfig) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        Self {
            config,
            items: Vec::with_capacity(config.max_batch),
            oldest: None,
        }
    }

    /// Number of items waiting.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no items are waiting.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Adds an item arriving at `now`; returns the full batch if this
    /// arrival completes one.
    pub fn push(&mut self, item: T, now: Instant) -> Option<Vec<T>> {
        if self.items.is_empty() {
            self.oldest = Some(now);
        }
        self.items.push(item);
        if self.items.len() >= self.config.max_batch {
            Some(self.take())
        } else {
            None
        }
    }

    /// The instant by which the current batch must flush, if any items
    /// are waiting — what the worker turns into a bounded queue wait.
    pub fn deadline(&self) -> Option<Instant> {
        self.oldest.map(|t| t + self.config.max_delay)
    }

    /// Returns the batch if its deadline has passed at `now`.
    pub fn flush_due(&mut self, now: Instant) -> Option<Vec<T>> {
        match self.deadline() {
            Some(d) if now >= d => Some(self.take()),
            _ => None,
        }
    }

    /// Unconditionally takes whatever is waiting (used on shutdown).
    pub fn take(&mut self) -> Vec<T> {
        self.oldest = None;
        std::mem::take(&mut self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_batch: usize, max_delay_ms: u64) -> BatchConfig {
        BatchConfig {
            max_batch,
            max_delay: Duration::from_millis(max_delay_ms),
        }
    }

    #[test]
    fn size_trigger_flushes_exactly_at_max_batch() {
        let mut b = MicroBatcher::new(cfg(3, 1000));
        let t = Instant::now();
        assert_eq!(b.push(1, t), None);
        assert_eq!(b.push(2, t), None);
        assert_eq!(b.push(3, t), Some(vec![1, 2, 3]));
        assert!(b.is_empty());
        assert_eq!(b.deadline(), None);
    }

    #[test]
    fn deadline_counts_from_oldest_item() {
        let mut b = MicroBatcher::new(cfg(100, 10));
        let t0 = Instant::now();
        b.push('a', t0);
        // A later arrival must NOT extend the deadline.
        b.push('b', t0 + Duration::from_millis(8));
        assert_eq!(b.deadline(), Some(t0 + Duration::from_millis(10)));
        assert_eq!(b.flush_due(t0 + Duration::from_millis(9)), None);
        assert_eq!(
            b.flush_due(t0 + Duration::from_millis(10)),
            Some(vec!['a', 'b'])
        );
        // Deadline re-arms from the next first arrival.
        let t1 = t0 + Duration::from_millis(50);
        b.push('c', t1);
        assert_eq!(b.deadline(), Some(t1 + Duration::from_millis(10)));
    }

    #[test]
    fn take_drains_partial_batches_for_shutdown() {
        let mut b = MicroBatcher::new(cfg(10, 1000));
        let t = Instant::now();
        b.push(1, t);
        b.push(2, t);
        assert_eq!(b.take(), vec![1, 2]);
        assert!(b.is_empty());
        assert_eq!(b.take(), Vec::<i32>::new());
    }

    #[test]
    fn empty_batcher_has_no_deadline_and_never_flushes() {
        let mut b: MicroBatcher<u8> = MicroBatcher::new(cfg(4, 1));
        assert_eq!(b.deadline(), None);
        assert_eq!(b.flush_due(Instant::now()), None);
    }
}
