//! The per-sensor hidden-state table for stateful temporal serving.
//!
//! Each sensor scored by a temporal snapshot carries one GRU hidden
//! row between micro-batches. States are partitioned by worker shard —
//! a sensor's records are hash-routed to a fixed shard, so its state
//! is only ever touched by that shard's worker (during a flush) and by
//! the control plane (eviction on disconnect, census). One `Mutex` per
//! shard keeps the hot path contention-free across shards.
//!
//! The map is a `BTreeMap`, not a `HashMap`: the worker iterates it to
//! assemble the per-round GRU batch, and iteration order must be a
//! pure function of the sensor ids — never of a per-process hasher
//! seed — for runs to be reproducible. (Row independence of the GEMM
//! kernels means order cannot change any *score*; determinism here is
//! about stable batch assembly and observability.)
//!
//! Lifecycle of one entry:
//!
//! * **created** zeroed, stamped with the current snapshot version, the
//!   first time the sensor appears in a temporal flush;
//! * **reset** to zeros whenever the model version it was stamped with
//!   differs from the snapshot being scored (hot swap: old hidden
//!   activations are meaningless under new weights);
//! * **evicted** when the sensor disconnects ([`StateTable::evict`]) or
//!   the owner runtime shuts down.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// One sensor's carried sequence state.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorState {
    /// The GRU hidden row (length = the serving model's hidden width).
    pub h: Vec<f64>,
    /// Version of the snapshot that produced `h`. A mismatch with the
    /// snapshot being scored forces a zero reset.
    pub model_version: u64,
}

type ShardMap = BTreeMap<Arc<str>, SensorState>;

/// Per-shard sensor-state maps; see the module docs for the lifecycle.
#[derive(Debug)]
pub struct StateTable {
    shards: Vec<Mutex<ShardMap>>,
}

impl StateTable {
    /// An empty table with one map per worker shard.
    pub fn new(n_shards: usize) -> Self {
        Self {
            shards: (0..n_shards).map(|_| Mutex::new(ShardMap::new())).collect(),
        }
    }

    /// Locks shard `shard`'s map for a flush (or control-plane op).
    ///
    /// A poisoned map means a worker panicked mid-flush and some
    /// hidden rows may be torn; the recovery that keeps serving sound
    /// is to clear the shard — every sensor restarts from zeros, which
    /// is exactly the state a fresh sensor gets. The caller's reset
    /// counter makes the wipe observable.
    pub(crate) fn lock_shard(&self, shard: usize) -> Option<(MutexGuard<'_, ShardMap>, usize)> {
        let slot = self.shards.get(shard)?;
        match slot.lock() {
            Ok(guard) => Some((guard, 0)),
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                let wiped = guard.len();
                guard.clear();
                slot.clear_poison();
                Some((guard, wiped))
            }
        }
    }

    /// Drops `sensor_id`'s state on shard `shard` (disconnect path).
    /// Returns whether a state existed.
    pub fn evict(&self, shard: usize, sensor_id: &str) -> bool {
        let Some((mut guard, _)) = self.lock_shard(shard) else {
            return false;
        };
        guard.remove(sensor_id).is_some()
    }

    /// Number of sensors currently holding state, across all shards.
    pub fn active_sensors(&self) -> usize {
        self.shards
            .iter()
            .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(version: u64) -> SensorState {
        SensorState {
            h: vec![0.0; 4],
            model_version: version,
        }
    }

    #[test]
    fn evict_removes_only_the_named_sensor() {
        let table = StateTable::new(2);
        {
            let (mut guard, wiped) = table.lock_shard(0).unwrap();
            assert_eq!(wiped, 0);
            guard.insert(Arc::from("a"), state(1));
            guard.insert(Arc::from("b"), state(1));
        }
        assert_eq!(table.active_sensors(), 2);
        assert!(table.evict(0, "a"));
        assert!(!table.evict(0, "a"));
        assert!(!table.evict(1, "b")); // wrong shard
        assert!(!table.evict(7, "b")); // out-of-range shard is a no-op
        assert_eq!(table.active_sensors(), 1);
    }

    #[test]
    fn iteration_order_is_sorted_by_sensor_id() {
        let table = StateTable::new(1);
        let (mut guard, _) = table.lock_shard(0).unwrap();
        for id in ["s-9", "s-1", "s-5"] {
            guard.insert(Arc::from(id), state(1));
        }
        let order: Vec<&str> = guard.keys().map(|k| k.as_ref()).collect();
        assert_eq!(order, ["s-1", "s-5", "s-9"]);
    }

    #[test]
    fn poisoned_shard_is_wiped_and_recovered() {
        let table = Arc::new(StateTable::new(1));
        {
            let (mut guard, _) = table.lock_shard(0).unwrap();
            guard.insert(Arc::from("a"), state(1));
        }
        let poisoner = Arc::clone(&table);
        let _ = std::thread::spawn(move || {
            let (_guard, _) = poisoner.lock_shard(0).unwrap();
            panic!("poison the shard mutex");
        })
        .join();
        let (guard, wiped) = table.lock_shard(0).unwrap();
        assert_eq!(wiped, 1, "the torn state must be wiped");
        assert!(guard.is_empty());
        drop(guard);
        // The mutex is usable again afterwards.
        assert_eq!(table.active_sensors(), 0);
    }
}
