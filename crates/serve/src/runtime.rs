//! Assembly of the serving pipeline:
//! `SensorClient → shard queue → supervised worker (micro-batch →
//! batched forward) → prediction channel`, with a side path
//! `labelled records → trainer queue → OnlineDetector → hot swap`
//! and a fault-tolerance layer (supervised restarts, dead-letter
//! quarantine, crash-safe checkpoints) around all of it.

use crate::batcher::BatchConfig;
use crate::metrics::MetricsRegistry;
use crate::model::{ModelHandle, ServedModel};
use crate::queue::{BackpressurePolicy, BoundedQueue, PushError, QueueCounters};
use crate::routing::shard_for;
use crate::state::StateTable;
use crate::supervisor::{
    panic_message, CheckpointConfig, FaultReport, SupervisorConfig, SupervisorState,
};
use crate::trainer::{self, LabelledRecord, TrainerContext};
use crate::worker::{self, Job, Prediction, WorkerContext, WorkerMetrics};
use occusense_core::detector::OccupancyDetector;
use occusense_core::online::{OnlineConfig, OnlineDetector};
use occusense_core::persist;
use occusense_core::temporal::TemporalDetector;
use occusense_core::tensor::Parallelism;
use occusense_dataset::CsiRecord;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Continual-training settings (enables the trainer thread).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineTrainingConfig {
    /// Hyper-parameters of the streaming learner.
    pub online: OnlineConfig,
    /// Gradient steps between snapshot publications.
    pub publish_every_updates: u64,
    /// Capacity of the labelled-record queue (always `DropOldest`: the
    /// trainer must never backpressure the inference path).
    pub queue_capacity: usize,
}

impl Default for OnlineTrainingConfig {
    fn default() -> Self {
        Self {
            online: OnlineConfig::default(),
            publish_every_updates: 2,
            queue_capacity: 4096,
        }
    }
}

/// Runtime topology and policies.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// The tenant this runtime serves. A fleet controller labels each
    /// runtime with its tenant so reports roll up per tenant; the
    /// empty string is the default (untenanted) namespace.
    pub tenant: String,
    /// Worker shards (threads); sensors are hash-routed across them.
    pub n_shards: usize,
    /// Capacity of each shard's ingestion queue.
    pub queue_capacity: usize,
    /// Full-queue behaviour of the ingestion queues.
    pub policy: BackpressurePolicy,
    /// Per-worker micro-batching knobs.
    pub batch: BatchConfig,
    /// `Some` enables continual training + hot model swap.
    pub online: Option<OnlineTrainingConfig>,
    /// Panic supervision and quarantine knobs.
    pub supervisor: SupervisorConfig,
    /// `Some` enables periodic + on-shutdown crash-safe checkpoints.
    pub checkpoint: Option<CheckpointConfig>,
    /// Kernel parallelism of each worker's batched forward pass. The
    /// parallel GEMM is bitwise-identical to single-threaded, so this
    /// knob changes throughput, never scores.
    pub parallelism: Parallelism,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            tenant: String::new(),
            n_shards: 4,
            queue_capacity: 1024,
            policy: BackpressurePolicy::DropOldest,
            batch: BatchConfig::default(),
            online: Some(OnlineTrainingConfig::default()),
            supervisor: SupervisorConfig::default(),
            checkpoint: None,
            parallelism: Parallelism::Single,
        }
    }
}

/// Why [`ServeRuntime::start`] refused a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// `n_shards` was zero.
    ZeroShards,
    /// Online training was requested for a detector that is not
    /// MLP-backed (only the MLP supports the paper's continual-
    /// training path).
    OnlineRequiresMlp,
    /// Online training was requested for a temporal (GRU) model; the
    /// continual trainer only supports the per-frame path, so temporal
    /// runtimes must start with `online: None` and swap via
    /// [`ServeRuntime::publish_temporal`].
    OnlineUnsupportedForTemporal,
    /// The checkpoint directory could not be created.
    CheckpointDir(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ZeroShards => write!(f, "serve: n_shards must be positive"),
            ServeError::OnlineRequiresMlp => {
                write!(f, "serve: online training requires an MLP-backed detector")
            }
            ServeError::OnlineUnsupportedForTemporal => {
                write!(
                    f,
                    "serve: online training is not supported for temporal models; start with online: None"
                )
            }
            ServeError::CheckpointDir(e) => {
                write!(f, "serve: cannot create checkpoint directory: {e}")
            }
        }
    }
}

impl Error for ServeError {}

/// Why a submission did not enter the runtime. (`CsiRecord` is `Copy`,
/// so the caller still holds the record and can retry or shed it
/// knowingly.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The shard queue was full under `RejectNewest`.
    Rejected,
    /// The runtime is shutting down (or this record's shard failed
    /// permanently and closed its queue).
    Shutdown,
}

/// A per-sensor ingestion handle (cheap, movable into the sensor's
/// thread; sequence numbers are per-handle).
#[derive(Debug)]
pub struct SensorClient {
    sensor_id: Arc<str>,
    shard: usize,
    queue: Arc<BoundedQueue<Job>>,
    seq: u64,
}

impl SensorClient {
    /// The shard this sensor's records are routed to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Submits an unlabelled record for scoring.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn submit(&mut self, record: CsiRecord) -> Result<(), SubmitError> {
        self.submit_inner(record, None)
    }

    /// Submits a record whose ground-truth label is known; after being
    /// scored it also feeds the continual trainer (when enabled).
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn submit_labelled(&mut self, record: CsiRecord, label: u8) -> Result<(), SubmitError> {
        self.submit_inner(record, Some(label))
    }

    /// Submits a record under a caller-assigned sequence number,
    /// leaving this handle's own counter untouched.
    ///
    /// This is the ingestion path of the `occusense-wire` gateway: a
    /// network client numbers its records at the sensor, and those
    /// numbers must survive rejections verbatim — a NACKed record and
    /// the prediction of its successor carry *consecutive client*
    /// sequence numbers, which the per-handle counter (which only
    /// advances on accepted records) could not provide.
    ///
    /// # Errors
    ///
    /// See [`SubmitError`].
    pub fn submit_sequenced(
        &mut self,
        seq: u64,
        record: CsiRecord,
        label: Option<u8>,
    ) -> Result<(), SubmitError> {
        let job = Job {
            sensor_id: Arc::clone(&self.sensor_id),
            seq,
            record,
            label,
            enqueued_at: Instant::now(),
        };
        match self.queue.push(job) {
            Ok(()) => Ok(()),
            Err(PushError::Rejected(_)) => Err(SubmitError::Rejected),
            Err(PushError::Closed(_)) => Err(SubmitError::Shutdown),
        }
    }

    fn submit_inner(&mut self, record: CsiRecord, label: Option<u8>) -> Result<(), SubmitError> {
        let seq = self.seq;
        self.submit_sequenced(seq, record, label).inspect(|()| {
            self.seq += 1;
        })
    }
}

/// Metric names the `occusense-wire` gateway increments on the shared
/// [`MetricsRegistry`]; [`ServeRuntime::shutdown`] mirrors them into
/// [`ServeReport::wire`] and the transport fields of
/// [`FaultReport`], which is how transport-level losses enter the
/// accounting identity without `occusense-serve` depending on the
/// (higher-layer) wire crate.
pub mod wire_stats {
    /// Connections the gateway accepted (post-handshake).
    pub const CONNECTIONS: &str = "wire.connections";
    /// Frames received from clients (any type, post-decode).
    pub const FRAMES_RECEIVED: &str = "wire.frames_received";
    /// Records decoded out of `Record` + `Batch` frames.
    pub const RECORDS_DECODED: &str = "wire.records_decoded";
    /// Decoded records accepted into a shard queue.
    pub const RECORDS_INGESTED: &str = "wire.records_ingested";
    /// Decoded records refused by `RejectNewest` (NACK `queue-full`).
    pub const RECORDS_REJECTED: &str = "wire.records_rejected";
    /// Decoded records shed because the runtime was shutting down or
    /// the shard failed closed (NACK `shutdown`).
    pub const RECORDS_SHED: &str = "wire.records_shed";
    /// Frames that failed to decode (the connection closes after one).
    pub const MALFORMED_FRAMES: &str = "wire.malformed_frames";
    /// Predictions routed towards a connected client's outbound queue.
    pub const PREDICTIONS_ROUTED: &str = "wire.predictions_routed";
    /// Predictions actually written to a client connection.
    pub const PREDICTIONS_SENT: &str = "wire.predictions_sent";
    /// Predictions whose sensor had no live connection (client gone).
    pub const PREDICTIONS_UNROUTED: &str = "wire.predictions_unrouted";
    /// Handshake deadlines missed plus sends abandoned at the write
    /// timeout (mirrored into `FaultReport::transport_timeouts`).
    pub const TRANSPORT_TIMEOUTS: &str = "wire.transport_timeouts";
    /// Connections whose handler panicked and was contained (the
    /// connection fails closed; the gateway keeps serving). Mirrored
    /// into `FaultReport::connection_panics`.
    pub const CONNECTION_PANICS: &str = "wire.connection_panics";
    /// Gateway locks recovered from poisoning (a panicking holder left
    /// the lock; the state was still consistent and service continued).
    pub const LOCK_RECOVERIES: &str = "wire.lock_recoveries";
    /// Gateway threads (accept loop, reactors, router) whose join at
    /// shutdown surfaced a panic. The panic was already contained —
    /// the thread is gone either way — but a non-zero count means some
    /// traffic window went unserved.
    pub const THREAD_PANICS: &str = "wire.thread_panics";
}

/// Transport-boundary counters of one run, all zero unless an
/// `occusense-wire` gateway fed the runtime. The wire identity checked
/// by [`ServeReport::unaccounted_records`]:
/// `records_decoded = records_ingested + records_rejected + records_shed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireCounters {
    /// Connections accepted (post-handshake).
    pub connections: u64,
    /// Frames received from clients.
    pub frames_received: u64,
    /// Records decoded out of record/batch frames.
    pub records_decoded: u64,
    /// Records accepted into shard queues.
    pub records_ingested: u64,
    /// Records refused under `RejectNewest` (NACKed back).
    pub records_rejected: u64,
    /// Records shed at shutdown / on failed shards (NACKed back).
    pub records_shed: u64,
    /// Frames that failed to decode.
    pub malformed_frames: u64,
    /// Predictions routed towards connected clients.
    pub predictions_routed: u64,
    /// Predictions delivered to clients.
    pub predictions_sent: u64,
    /// Predictions that found no live connection.
    pub predictions_unrouted: u64,
    /// Connection handlers that panicked and were contained (their
    /// in-flight records were re-counted as shed so the wire identity
    /// still closes).
    pub connection_panics: u64,
    /// Gateway locks recovered after a poisoning panic.
    pub lock_recoveries: u64,
    /// Gateway threads whose shutdown join surfaced a panic.
    pub thread_panics: u64,
}

impl WireCounters {
    /// Whether any wire traffic touched this run.
    pub fn any_traffic(&self) -> bool {
        self.connections > 0 || self.frames_received > 0 || self.records_decoded > 0
    }
}

/// End-of-run summary (also carries the full metrics text).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeReport {
    /// The tenant this runtime served ([`ServeConfig::tenant`]); the
    /// fleet controller rolls reports up under this label.
    pub tenant: String,
    /// Wall time from runtime start to shutdown completion.
    pub elapsed: Duration,
    /// Records scored across all shards.
    pub records_served: u64,
    /// Records per second of wall time.
    pub throughput_rps: f64,
    /// Median ingest→scored latency, nanoseconds.
    pub latency_p50_ns: u64,
    /// 95th-percentile latency, nanoseconds.
    pub latency_p95_ns: u64,
    /// 99th-percentile latency, nanoseconds.
    pub latency_p99_ns: u64,
    /// Final counters of each shard's ingestion queue.
    pub shard_queues: Vec<QueueCounters>,
    /// Final counters of the trainer queue, when online training ran.
    pub trainer_queue: Option<QueueCounters>,
    /// Version of the model serving at shutdown (1 = never swapped).
    pub model_version: u64,
    /// Snapshot publications performed by the trainer.
    pub model_publishes: u64,
    /// The fault-tolerance outcome: restarts, quarantine, checkpoints.
    pub faults: FaultReport,
    /// Transport-boundary counters (all zero for in-process runs).
    pub wire: WireCounters,
    /// The rendered metrics registry at shutdown.
    pub metrics_text: String,
}

impl ServeReport {
    /// The accounting residue of the run. Zero means every record the
    /// queues accepted is explained: scored, quarantined to the
    /// dead-letter buffer, or shed by the backpressure policy
    /// (`pushed = scored + quarantined + dropped`). Non-zero means the
    /// runtime *lost* records — the failure mode this PR exists to
    /// make impossible, so tests and the `serve_sim --faults` smoke
    /// assert on it.
    ///
    /// When an `occusense-wire` gateway fed the run, the identity
    /// extends across the transport boundary: every record *decoded*
    /// off the wire must be ingested, NACKed back (`RejectNewest`
    /// rejection) or shed at shutdown —
    /// `decoded = ingested + rejected + shed` — so a record cannot
    /// vanish between the socket and a shard queue either. Both
    /// residues are summed; in-process runs contribute zero wire
    /// residue.
    pub fn unaccounted_records(&self) -> i64 {
        let pushed: u64 = self.shard_queues.iter().map(|q| q.pushed).sum();
        let dropped: u64 = self.shard_queues.iter().map(|q| q.dropped).sum();
        let depth: u64 = self.shard_queues.iter().map(|q| q.depth).sum();
        let queue_residue = pushed as i64
            - (self.records_served + self.faults.poisoned_records + dropped + depth) as i64;
        let w = &self.wire;
        let wire_residue = w.records_decoded as i64
            - (w.records_ingested + w.records_rejected + w.records_shed) as i64;
        queue_residue + wire_residue
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.tenant.is_empty() {
            writeln!(f, "tenant: {}", self.tenant)?;
        }
        writeln!(
            f,
            "served {} records in {:.2?} — {:.0} records/s",
            self.records_served, self.elapsed, self.throughput_rps
        )?;
        writeln!(
            f,
            "latency p50 {:.1} µs · p95 {:.1} µs · p99 {:.1} µs",
            self.latency_p50_ns as f64 / 1e3,
            self.latency_p95_ns as f64 / 1e3,
            self.latency_p99_ns as f64 / 1e3
        )?;
        for (i, q) in self.shard_queues.iter().enumerate() {
            writeln!(
                f,
                "shard {i}: pushed {} dropped {} rejected {} high-watermark {} restarts {}",
                q.pushed,
                q.dropped,
                q.rejected,
                q.high_watermark,
                self.faults.shard_restarts.get(i).copied().unwrap_or(0)
            )?;
        }
        if let Some(t) = &self.trainer_queue {
            writeln!(
                f,
                "trainer: consumed {} dropped {} · {} snapshot publishes · serving v{} · restarts {}",
                t.popped,
                t.dropped,
                self.model_publishes,
                self.model_version,
                self.faults.trainer_restarts
            )?;
        }
        let fr = &self.faults;
        if fr.poisoned_records > 0 || fr.uncontained_panics > 0 || !fr.panics.is_empty() {
            writeln!(
                f,
                "faults: {} poisoned records (dead-letter {} held, {} evicted) · {} supervised panics · {} uncontained",
                fr.poisoned_records,
                fr.dead_letters.len(),
                fr.dead_letters_evicted,
                fr.panics.len(),
                fr.uncontained_panics
            )?;
        }
        if fr.checkpoints_written > 0 || fr.checkpoint_failures > 0 {
            writeln!(
                f,
                "checkpoints: {} written, {} failed",
                fr.checkpoints_written, fr.checkpoint_failures
            )?;
        }
        if self.wire.any_traffic() {
            let w = &self.wire;
            writeln!(
                f,
                "wire: {} connections · {} frames · {} records decoded ({} ingested, {} nacked, {} shed, {} malformed frames)",
                w.connections,
                w.frames_received,
                w.records_decoded,
                w.records_ingested,
                w.records_rejected,
                w.records_shed,
                w.malformed_frames
            )?;
            writeln!(
                f,
                "wire: {} predictions routed, {} delivered, {} unrouted · {} transport timeouts",
                w.predictions_routed,
                w.predictions_sent,
                w.predictions_unrouted,
                fr.transport_timeouts
            )?;
            if w.connection_panics > 0 || w.lock_recoveries > 0 || w.thread_panics > 0 {
                writeln!(
                    f,
                    "wire: {} connection panics contained · {} lock recoveries · {} thread panics",
                    w.connection_panics, w.lock_recoveries, w.thread_panics
                )?;
            }
        }
        writeln!(f, "unaccounted records: {}", self.unaccounted_records())?;
        Ok(())
    }
}

/// The running service: supervised worker shards, optional trainer,
/// live metrics, dead-letter quarantine and crash-safe checkpoints.
///
/// Dropping the runtime without calling [`shutdown`](Self::shutdown)
/// also drains and joins every thread (so tests and panics never leak
/// threads), but `shutdown` is the intended path since it returns the
/// [`ServeReport`].
#[derive(Debug)]
pub struct ServeRuntime {
    shards: Vec<Arc<BoundedQueue<Job>>>,
    workers: Vec<JoinHandle<()>>,
    trainer_queue: Option<Arc<BoundedQueue<LabelledRecord>>>,
    trainer: Option<JoinHandle<()>>,
    model: Arc<ModelHandle>,
    states: Option<Arc<StateTable>>,
    metrics: Arc<MetricsRegistry>,
    supervision: Arc<SupervisorState>,
    checkpoint: Option<CheckpointConfig>,
    tenant: String,
    uncontained_panics: Mutex<Vec<String>>,
    started_at: Instant,
    stopped: AtomicBool,
}

impl ServeRuntime {
    /// Boots the runtime around an offline-trained detector and
    /// returns it together with the channel scored records arrive on.
    ///
    /// # Errors
    ///
    /// [`ServeError::ZeroShards`] for an empty topology,
    /// [`ServeError::OnlineRequiresMlp`] when online training is
    /// requested for a non-MLP detector, and
    /// [`ServeError::CheckpointDir`] when the checkpoint directory
    /// cannot be created.
    pub fn start(
        detector: OccupancyDetector,
        config: ServeConfig,
    ) -> Result<(Self, mpsc::Receiver<Prediction>), ServeError> {
        Self::boot(ServedModel::Frame(detector), config)
    }

    /// Boots the runtime around a temporal (GRU) sequence model:
    /// workers keep one hidden row per sensor in a shared
    /// [`StateTable`] and score each micro-batch as batched GRU steps.
    /// Swap models with [`publish_temporal`](Self::publish_temporal),
    /// drop a disconnected sensor's state with
    /// [`evict_sensor`](Self::evict_sensor).
    ///
    /// # Errors
    ///
    /// [`ServeError::ZeroShards`] for an empty topology and
    /// [`ServeError::OnlineUnsupportedForTemporal`] when `config`
    /// enables the (frame-only) continual trainer.
    pub fn start_temporal(
        detector: TemporalDetector,
        config: ServeConfig,
    ) -> Result<(Self, mpsc::Receiver<Prediction>), ServeError> {
        if config.online.is_some() {
            return Err(ServeError::OnlineUnsupportedForTemporal);
        }
        Self::boot(ServedModel::Temporal(detector), config)
    }

    fn boot(
        boot_model: ServedModel,
        config: ServeConfig,
    ) -> Result<(Self, mpsc::Receiver<Prediction>), ServeError> {
        if config.n_shards == 0 {
            return Err(ServeError::ZeroShards);
        }
        // Validate the whole configuration before spawning anything,
        // so a refused start never leaks threads.
        let online = match (config.online, &boot_model) {
            (Some(online_cfg), ServedModel::Frame(detector)) => Some((
                online_cfg,
                OnlineDetector::from_detector(detector, online_cfg.online)
                    .ok_or(ServeError::OnlineRequiresMlp)?,
            )),
            (Some(_), ServedModel::Temporal(_)) => {
                return Err(ServeError::OnlineUnsupportedForTemporal)
            }
            (None, _) => None,
        };
        if let Some(ckpt) = &config.checkpoint {
            std::fs::create_dir_all(&ckpt.dir)
                .map_err(|e| ServeError::CheckpointDir(e.to_string()))?;
        }
        let states = match &boot_model {
            ServedModel::Temporal(_) => Some(Arc::new(StateTable::new(config.n_shards))),
            ServedModel::Frame(_) => None,
        };

        let metrics = Arc::new(MetricsRegistry::new());
        let supervision = Arc::new(SupervisorState::new(config.n_shards, &config.supervisor));
        let model = Arc::new(match boot_model {
            ServedModel::Frame(d) => ModelHandle::new(d),
            ServedModel::Temporal(t) => ModelHandle::new_temporal(t),
        });
        let (out_tx, out_rx) = mpsc::channel();

        let trainer_queue = config.online.map(|online_cfg| {
            Arc::new(BoundedQueue::new(
                online_cfg.queue_capacity,
                BackpressurePolicy::DropOldest,
            ))
        });

        let worker_metrics = WorkerMetrics {
            records: metrics.counter("serve.records"),
            batches: metrics.counter("serve.batches"),
            deadline_flushes: metrics.counter("serve.deadline_flushes"),
            restarts: metrics.counter("serve.restarts"),
            poisoned: metrics.counter("serve.poisoned_records"),
            state_resets: metrics.counter("serve.state_resets"),
            latency_ns: metrics.histogram("serve.latency_ns"),
            batch_size: metrics.histogram("serve.batch_size"),
            inference_ns: metrics.histogram("serve.inference_ns"),
        };

        let mut shards = Vec::with_capacity(config.n_shards);
        let mut workers = Vec::with_capacity(config.n_shards);
        for shard in 0..config.n_shards {
            let queue = Arc::new(BoundedQueue::new(config.queue_capacity, config.policy));
            shards.push(Arc::clone(&queue));
            let ctx = WorkerContext {
                shard,
                queue,
                model: Arc::clone(&model),
                batch: config.batch,
                out: out_tx.clone(),
                trainer_queue: trainer_queue.clone(),
                metrics: worker_metrics.clone(),
                supervision: Arc::clone(&supervision),
                max_restarts: config.supervisor.max_restarts_per_shard,
                panic_on_trigger: config.supervisor.panic_on_trigger,
                parallelism: config.parallelism,
                states: states.clone(),
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{shard}"))
                    .spawn(move || worker::run(ctx))
                    // lint:allow(panic, reason = "startup-only: thread spawn failure is unrecoverable resource exhaustion, before any record is accepted")
                    .expect("spawn worker"),
            );
        }

        let trainer = online.map(|(online_cfg, online)| {
            let ctx = TrainerContext {
                // lint:allow(panic, reason = "startup-only invariant: trainer_queue is Some exactly when online is Some, established a few lines above")
                queue: Arc::clone(trainer_queue.as_ref().expect("trainer queue")),
                model: Arc::clone(&model),
                online,
                online_config: online_cfg.online,
                publish_every_updates: online_cfg.publish_every_updates.max(1),
                checkpoint: config.checkpoint.clone(),
                observed: metrics.counter("trainer.observed"),
                steady_reallocs: metrics.counter("trainer.steady_reallocs"),
                publishes: metrics.counter("trainer.publishes"),
                restarts: metrics.counter("trainer.restarts"),
                checkpoints: metrics.counter("serve.checkpoints"),
                checkpoint_failures: metrics.counter("serve.checkpoint_failures"),
                supervision: Arc::clone(&supervision),
                max_restarts: config.supervisor.max_trainer_restarts,
                panic_on_trigger: config.supervisor.panic_on_trigger,
            };
            std::thread::Builder::new()
                .name("serve-trainer".into())
                .spawn(move || trainer::run(ctx))
                // lint:allow(panic, reason = "startup-only: thread spawn failure is unrecoverable resource exhaustion, before any record is accepted")
                .expect("spawn trainer")
        });

        Ok((
            Self {
                shards,
                workers,
                trainer_queue,
                trainer,
                model,
                states,
                metrics,
                supervision,
                checkpoint: config.checkpoint,
                tenant: config.tenant,
                uncontained_panics: Mutex::new(Vec::new()),
                started_at: Instant::now(),
                stopped: AtomicBool::new(false),
            },
            out_rx,
        ))
    }

    /// An ingestion handle for one sensor; records submitted through it
    /// are hash-routed to a fixed shard.
    pub fn client(&self, sensor_id: &str) -> SensorClient {
        let shard = shard_for(sensor_id, self.shards.len());
        SensorClient {
            sensor_id: Arc::from(sensor_id),
            shard,
            // lint:allow(index, reason = "shard is shard_for(sensor_id) % shards.len(), in range by construction")
            queue: Arc::clone(&self.shards[shard]),
            seq: 0,
        }
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The tenant label this runtime was configured with
    /// ([`ServeConfig::tenant`]; empty = the default namespace).
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The version of the currently serving model.
    pub fn model_version(&self) -> u64 {
        self.model.version()
    }

    /// A clone of the currently serving frame detector — what a
    /// checkpoint written this instant would contain. `None` on a
    /// temporal runtime.
    pub fn current_detector(&self) -> Option<OccupancyDetector> {
        self.model.current().frame().cloned()
    }

    /// A clone of the currently serving temporal detector; `None` on a
    /// frame runtime.
    pub fn current_temporal(&self) -> Option<TemporalDetector> {
        self.model.current().temporal().cloned()
    }

    /// Hot-swaps the serving temporal model and returns the new
    /// version. Every sensor's hidden state is zero-reset the first
    /// time its shard scores against the new snapshot (counted in the
    /// `serve.state_resets` metric) — old activations are meaningless
    /// under new weights, so each sensor's sequence restarts cleanly.
    ///
    /// Only meaningful on a runtime booted with
    /// [`start_temporal`](Self::start_temporal); on a frame runtime
    /// the workers quarantine rather than score against the mismatched
    /// snapshot.
    pub fn publish_temporal(&self, detector: TemporalDetector) -> u64 {
        self.model.publish_temporal(detector)
    }

    /// Drops `sensor_id`'s carried hidden state (the disconnect path —
    /// the wire gateway calls this when a sensor's last connection
    /// closes). Returns whether a state existed; always `false` on a
    /// frame runtime. A sensor that reappears after eviction restarts
    /// from a zero state, exactly like a brand-new sensor.
    pub fn evict_sensor(&self, sensor_id: &str) -> bool {
        let Some(states) = &self.states else {
            return false;
        };
        let evicted = states.evict(shard_for(sensor_id, self.shards.len()), sensor_id);
        if evicted {
            self.metrics.counter("serve.state_evictions").inc();
        }
        evicted
    }

    /// Number of sensors currently holding temporal hidden state
    /// (always 0 on a frame runtime).
    pub fn active_sensor_states(&self) -> usize {
        self.states.as_ref().map_or(0, |s| s.active_sensors())
    }

    /// Live counters of every shard queue, in shard order.
    pub fn shard_counters(&self) -> Vec<QueueCounters> {
        self.shards.iter().map(|q| q.counters()).collect()
    }

    /// Live supervised-restart count of every shard, in shard order.
    pub fn shard_restarts(&self) -> Vec<u64> {
        self.supervision.shard_restarts()
    }

    /// Renders the metrics registry after refreshing the queue-depth
    /// gauges — the runtime's live observability surface.
    pub fn metrics_snapshot(&self) -> String {
        for (i, q) in self.shards.iter().enumerate() {
            let c = q.counters();
            self.metrics
                .gauge(&format!("shard.{i}.depth"))
                .set(c.depth as i64);
            self.metrics
                .gauge(&format!("shard.{i}.dropped"))
                .set(c.dropped as i64);
            self.metrics
                .gauge(&format!("shard.{i}.rejected"))
                .set(c.rejected as i64);
            self.metrics
                .gauge(&format!("shard.{i}.high_watermark"))
                .set(c.high_watermark as i64);
        }
        for (i, restarts) in self.supervision.shard_restarts().iter().enumerate() {
            self.metrics
                .gauge(&format!("shard.{i}.restarts"))
                .set(*restarts as i64);
        }
        self.metrics
            .gauge("supervisor.dead_letter_depth")
            .set(self.supervision.dead_letter.depth() as i64);
        self.metrics
            .gauge("supervisor.dead_letter_total")
            .set(self.supervision.dead_letter.total() as i64);
        if let Some(t) = &self.trainer_queue {
            let c = t.counters();
            self.metrics
                .gauge("trainer.queue_depth")
                .set(c.depth as i64);
            self.metrics
                .gauge("trainer.queue_dropped")
                .set(c.dropped as i64);
        }
        self.metrics
            .gauge("model.version")
            .set(self.model.version() as i64);
        if let Some(states) = &self.states {
            self.metrics
                .gauge("serve.active_sensor_states")
                .set(states.active_sensors() as i64);
        }
        self.metrics.render()
    }

    /// Graceful drain: closes ingestion, lets every worker flush its
    /// remaining batch, stops the trainer after it has consumed what
    /// the workers teed off, joins all threads (inspecting every join
    /// for escaped panics), writes the final checkpoint, and reports.
    pub fn shutdown(mut self) -> ServeReport {
        self.stop_threads();
        let elapsed = self.started_at.elapsed();
        let latency = self.metrics.histogram("serve.latency_ns");
        let records_served = self.metrics.counter("serve.records").get();
        let uncontained = self
            .uncontained_panics
            .lock()
            // lint:allow(panic, reason = "poison propagation: shutdown-path bookkeeping; a poisoned join log means the report is already untrustworthy")
            .expect("join log poisoned")
            .clone();
        let faults = FaultReport {
            shard_restarts: self.supervision.shard_restarts(),
            trainer_restarts: self.supervision.trainer_restarts(),
            poisoned_records: self.metrics.counter("serve.poisoned_records").get(),
            trainer_poisoned: self.supervision.trainer_poisoned(),
            dead_letters_evicted: self.supervision.dead_letter.evicted(),
            dead_letters: self.supervision.dead_letter.snapshot(),
            panics: {
                let mut all = self.supervision.panic_log();
                all.extend(uncontained.iter().cloned());
                all
            },
            uncontained_panics: uncontained.len() as u64,
            checkpoints_written: self.metrics.counter("serve.checkpoints").get(),
            checkpoint_failures: self.metrics.counter("serve.checkpoint_failures").get(),
            transport_rejections: self.metrics.counter(wire_stats::RECORDS_REJECTED).get(),
            transport_timeouts: self.metrics.counter(wire_stats::TRANSPORT_TIMEOUTS).get(),
            connection_panics: self.metrics.counter(wire_stats::CONNECTION_PANICS).get(),
        };
        let wire = WireCounters {
            connections: self.metrics.counter(wire_stats::CONNECTIONS).get(),
            frames_received: self.metrics.counter(wire_stats::FRAMES_RECEIVED).get(),
            records_decoded: self.metrics.counter(wire_stats::RECORDS_DECODED).get(),
            records_ingested: self.metrics.counter(wire_stats::RECORDS_INGESTED).get(),
            records_rejected: self.metrics.counter(wire_stats::RECORDS_REJECTED).get(),
            records_shed: self.metrics.counter(wire_stats::RECORDS_SHED).get(),
            malformed_frames: self.metrics.counter(wire_stats::MALFORMED_FRAMES).get(),
            predictions_routed: self.metrics.counter(wire_stats::PREDICTIONS_ROUTED).get(),
            predictions_sent: self.metrics.counter(wire_stats::PREDICTIONS_SENT).get(),
            predictions_unrouted: self.metrics.counter(wire_stats::PREDICTIONS_UNROUTED).get(),
            connection_panics: self.metrics.counter(wire_stats::CONNECTION_PANICS).get(),
            lock_recoveries: self.metrics.counter(wire_stats::LOCK_RECOVERIES).get(),
            thread_panics: self.metrics.counter(wire_stats::THREAD_PANICS).get(),
        };
        ServeReport {
            tenant: self.tenant.clone(),
            elapsed,
            records_served,
            throughput_rps: records_served as f64 / elapsed.as_secs_f64().max(1e-9),
            latency_p50_ns: latency.p50(),
            latency_p95_ns: latency.p95(),
            latency_p99_ns: latency.p99(),
            shard_queues: self.shard_counters(),
            trainer_queue: self.trainer_queue.as_ref().map(|q| q.counters()),
            model_version: self.model.version(),
            model_publishes: self.metrics.counter("trainer.publishes").get(),
            faults,
            wire,
            metrics_text: self.metrics_snapshot(),
        }
    }

    fn stop_threads(&mut self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        // 1. Stop ingestion; workers drain their queues, flush partial
        //    batches and exit. Join results are inspected: a panic that
        //    escaped supervision must surface, never be discarded.
        for q in &self.shards {
            q.close();
        }
        let workers = std::mem::take(&mut self.workers);
        for (shard, w) in workers.into_iter().enumerate() {
            if let Err(payload) = w.join() {
                self.record_uncontained(format!(
                    "worker {shard} died uncontained: {}",
                    panic_message(payload.as_ref())
                ));
            }
        }
        // 2. Only then stop the trainer, so every labelled record the
        //    workers teed off is still consumed before the final
        //    snapshot publication.
        if let Some(q) = &self.trainer_queue {
            q.close();
        }
        if let Some(t) = self.trainer.take() {
            if let Err(payload) = t.join() {
                self.record_uncontained(format!(
                    "trainer died uncontained: {}",
                    panic_message(payload.as_ref())
                ));
            }
        }
        // 3. Final on-shutdown checkpoint of whatever is serving now —
        //    after the trainer's last publish, so a restarted runtime
        //    resumes from exactly this model. Frame and temporal
        //    snapshots use distinct checkpoint families
        //    (`detector-v*` / `temporal-v*`), both checksummed and
        //    written atomically.
        if let Some(cfg) = &self.checkpoint {
            let snapshot = self.model.current();
            let outcome = match &snapshot.model {
                ServedModel::Frame(detector) => persist::save_detector_atomic(
                    &persist::checkpoint_path(&cfg.dir, snapshot.version),
                    detector,
                )
                .map(|()| persist::prune_checkpoints(&cfg.dir, cfg.keep)),
                ServedModel::Temporal(temporal) => persist::save_temporal_atomic(
                    &persist::temporal_checkpoint_path(&cfg.dir, snapshot.version),
                    temporal,
                )
                .map(|()| persist::prune_temporal_checkpoints(&cfg.dir, cfg.keep)),
            };
            match outcome {
                Ok(_pruned) => {
                    self.metrics.counter("serve.checkpoints").inc();
                }
                Err(e) => {
                    self.metrics.counter("serve.checkpoint_failures").inc();
                    self.supervision.log_panic(format!(
                        "final checkpoint v{} failed: {e}",
                        snapshot.version
                    ));
                }
            }
        }
    }

    fn record_uncontained(&self, message: String) {
        self.uncontained_panics
            .lock()
            // lint:allow(panic, reason = "poison propagation: shutdown-path bookkeeping; a poisoned join log means the report is already untrustworthy")
            .expect("join log poisoned")
            .push(message);
    }
}

impl Drop for ServeRuntime {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occusense_core::detector::{DetectorConfig, ModelKind};
    use occusense_core::temporal::{TemporalConfig, TemporalDetector};
    use occusense_sim::{simulate, ScenarioConfig};
    use std::collections::BTreeMap;

    fn tiny_temporal(seed: u64) -> (TemporalDetector, occusense_dataset::Dataset) {
        let ds = simulate(&ScenarioConfig::quick(600.0, seed));
        let temporal = TemporalDetector::train(
            &ds,
            &TemporalConfig {
                window: 8,
                stride: 4,
                hidden: 8,
                epochs: 1,
                seed,
                ..TemporalConfig::default()
            },
        );
        (temporal, ds)
    }

    fn temporal_config() -> ServeConfig {
        ServeConfig {
            n_shards: 2,
            policy: BackpressurePolicy::Block,
            online: None,
            batch: BatchConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(1),
            },
            ..ServeConfig::default()
        }
    }

    fn recv_n(rx: &mpsc::Receiver<Prediction>, n: usize) -> Vec<Prediction> {
        (0..n)
            .map(|_| {
                rx.recv_timeout(Duration::from_secs(20))
                    .expect("prediction within the deadline")
            })
            .collect()
    }

    #[test]
    fn temporal_serving_matches_solo_streams_bitwise() {
        let (temporal, ds) = tiny_temporal(31);
        let per = 60usize;
        let streams: Vec<&[CsiRecord]> = (0..3)
            .map(|i| &ds.records()[i * per..(i + 1) * per])
            .collect();
        let (rt, rx) = ServeRuntime::start_temporal(temporal.clone(), temporal_config()).unwrap();
        let mut clients: Vec<SensorClient> =
            (0..3).map(|i| rt.client(&format!("sensor-{i}"))).collect();
        // Interleave the three sensors record-by-record so flushes mix
        // them into shared batches — the invariant under test is that
        // this multiplexing is bitwise invisible.
        for r in 0..per {
            for (client, stream) in clients.iter_mut().zip(&streams) {
                client.submit(stream[r]).unwrap();
            }
        }
        let report = rt.shutdown();
        assert_eq!(report.unaccounted_records(), 0);
        assert_eq!(report.records_served, (3 * per) as u64);
        let mut by_sensor: BTreeMap<String, Vec<Prediction>> = BTreeMap::new();
        for p in rx.iter() {
            by_sensor
                .entry(p.sensor_id.to_string())
                .or_default()
                .push(p);
        }
        for (i, stream) in streams.iter().enumerate() {
            let mut got = by_sensor.remove(&format!("sensor-{i}")).unwrap();
            got.sort_by_key(|p| p.seq);
            let expected = temporal.score_stream(stream);
            assert_eq!(got.len(), expected.len());
            for (p, (_, solo)) in got.iter().zip(&expected) {
                assert_eq!(
                    p.proba.to_bits(),
                    solo.to_bits(),
                    "sensor {i} seq {}: batched != solo",
                    p.seq
                );
                assert_eq!(p.model_version, 1);
            }
        }
    }

    #[test]
    fn hot_swap_zero_resets_state_and_stamps_versions() {
        let (t1, ds) = tiny_temporal(41);
        let (t2, _) = tiny_temporal(43);
        let records = &ds.records()[..100];
        let (rt, rx) = ServeRuntime::start_temporal(t1.clone(), temporal_config()).unwrap();
        let mut client = rt.client("sensor-a");
        for r in &records[..50] {
            client.submit(*r).unwrap();
        }
        let mut got = recv_n(&rx, 50);
        assert_eq!(rt.metrics().counter("serve.state_resets").get(), 0);
        assert_eq!(rt.publish_temporal(t2.clone()), 2);
        for r in &records[50..] {
            client.submit(*r).unwrap();
        }
        got.extend(recv_n(&rx, 50));
        assert_eq!(
            rt.metrics().counter("serve.state_resets").get(),
            1,
            "exactly one zero reset at the first post-swap flush"
        );
        let report = rt.shutdown();
        assert_eq!(report.unaccounted_records(), 0);
        got.sort_by_key(|p| p.seq);
        // Before the swap: v1 from a zero state. After: v2 from a
        // fresh zero state — the old hidden row must not leak through.
        let before = t1.score_stream(&records[..50]);
        let after = t2.score_stream(&records[50..]);
        for (p, (_, solo)) in got.iter().take(50).zip(&before) {
            assert_eq!(p.model_version, 1);
            assert_eq!(p.proba.to_bits(), solo.to_bits(), "pre-swap seq {}", p.seq);
        }
        for (p, (_, solo)) in got.iter().skip(50).zip(&after) {
            assert_eq!(p.model_version, 2);
            assert_eq!(p.proba.to_bits(), solo.to_bits(), "post-swap seq {}", p.seq);
        }
    }

    #[test]
    fn evicting_a_sensor_restarts_its_stream_from_zero() {
        let (temporal, ds) = tiny_temporal(37);
        let records = &ds.records()[..120];
        let (rt, rx) = ServeRuntime::start_temporal(temporal.clone(), temporal_config()).unwrap();
        let mut client = rt.client("sensor-a");
        for r in &records[..60] {
            client.submit(*r).unwrap();
        }
        let mut got = recv_n(&rx, 60);
        assert_eq!(rt.active_sensor_states(), 1);
        assert!(rt.evict_sensor("sensor-a"));
        assert!(!rt.evict_sensor("sensor-a"), "second evict finds nothing");
        assert_eq!(rt.active_sensor_states(), 0);
        assert_eq!(rt.metrics().counter("serve.state_evictions").get(), 1);
        for r in &records[60..] {
            client.submit(*r).unwrap();
        }
        got.extend(recv_n(&rx, 60));
        let report = rt.shutdown();
        assert_eq!(report.unaccounted_records(), 0);
        got.sort_by_key(|p| p.seq);
        let first = temporal.score_stream(&records[..60]);
        let second = temporal.score_stream(&records[60..]);
        for (p, (_, solo)) in got.iter().take(60).zip(&first) {
            assert_eq!(p.proba.to_bits(), solo.to_bits(), "pre-evict seq {}", p.seq);
        }
        for (p, (_, solo)) in got.iter().skip(60).zip(&second) {
            assert_eq!(
                p.proba.to_bits(),
                solo.to_bits(),
                "post-evict seq {} must restart from zero state",
                p.seq
            );
        }
    }

    #[test]
    fn start_temporal_refuses_online_training() {
        let (temporal, _) = tiny_temporal(29);
        match ServeRuntime::start_temporal(temporal, ServeConfig::default()) {
            Err(ServeError::OnlineUnsupportedForTemporal) => {}
            Ok(_) => panic!("online training must be refused for temporal models"),
            Err(other) => panic!("wrong refusal: {other}"),
        }
    }

    #[test]
    fn continual_training_loop_is_allocation_free_after_warmup() {
        // The trainer thread holds one warm OnlineDetector workspace
        // for the whole run; once two gradient steps have sized it,
        // the observe→train-batch loop must never grow a buffer again.
        let ds = simulate(&ScenarioConfig::quick(1600.0, 47));
        let frame = OccupancyDetector::train(
            &ds,
            &DetectorConfig {
                model: ModelKind::Mlp,
                mlp_epochs: 1,
                ..DetectorConfig::default()
            },
        );
        let config = ServeConfig {
            n_shards: 1,
            ..ServeConfig::default()
        };
        let batch = OnlineTrainingConfig::default().online.batch_size;
        let (rt, rx) = ServeRuntime::start(frame, config).unwrap();
        let steady_reallocs = rt.metrics().counter("trainer.steady_reallocs");
        let observed = rt.metrics().counter("trainer.observed");
        let mut client = rt.client("sensor-a");
        for r in ds.records().iter().take(8 * batch) {
            client.submit_labelled(*r, r.occupancy()).unwrap();
        }
        let report = rt.shutdown();
        drop(rx);
        assert_eq!(report.unaccounted_records(), 0);
        // Every labelled record reached the trainer (capacity 4096 >>
        // what we submitted), so 8 full batches trained: warm-up (2
        // updates) plus six steady-state gradient steps.
        assert_eq!(observed.get(), (8 * batch) as u64);
        assert!(report.model_publishes >= 3, "trainer barely ran");
        assert_eq!(
            steady_reallocs.get(),
            0,
            "continual training grew a buffer after warm-up"
        );
    }

    #[test]
    fn temporal_publish_on_frame_runtime_quarantines_cleanly() {
        let ds = simulate(&ScenarioConfig::quick(400.0, 11));
        let frame = OccupancyDetector::train(
            &ds,
            &DetectorConfig {
                model: ModelKind::Mlp,
                mlp_epochs: 1,
                ..DetectorConfig::default()
            },
        );
        let (temporal, _) = tiny_temporal(13);
        let config = ServeConfig {
            online: None,
            ..temporal_config()
        };
        let (rt, _rx) = ServeRuntime::start(frame, config).unwrap();
        rt.publish_temporal(temporal);
        let mut client = rt.client("sensor-a");
        for r in &ds.records()[..10] {
            client.submit(*r).unwrap();
        }
        let report = rt.shutdown();
        // A frame runtime has no state table: the mismatched batches
        // are quarantined, never scored — and still fully accounted.
        assert_eq!(report.records_served, 0);
        assert_eq!(report.faults.poisoned_records, 10);
        assert_eq!(report.unaccounted_records(), 0);
    }

    #[test]
    fn temporal_shutdown_checkpoint_resumes_bitwise() {
        let (temporal, ds) = tiny_temporal(47);
        let dir = std::env::temp_dir().join(format!(
            "occusense-serve-temporal-ckpt-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            checkpoint: Some(CheckpointConfig::new(&dir)),
            ..temporal_config()
        };
        let (rt, _rx) = ServeRuntime::start_temporal(temporal.clone(), config).unwrap();
        let mut client = rt.client("sensor-a");
        for r in &ds.records()[..20] {
            client.submit(*r).unwrap();
        }
        let report = rt.shutdown();
        assert_eq!(report.faults.checkpoints_written, 1);
        let (version, _path, loaded) = persist::load_latest_temporal(&dir)
            .unwrap()
            .expect("a temporal checkpoint");
        assert_eq!(version, 1);
        assert_eq!(loaded, temporal);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
