//! Live metrics: counters, gauges and log-bucketed latency histograms
//! with a plain-text snapshot renderer.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap
//! `Arc`-shared atomics — hot paths update them lock-free; the
//! registry's only lock guards name registration and rendering.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets (covers 1 ns … ~584 years).
const N_BUCKETS: usize = 64;

/// A log-bucketed histogram of non-negative integer samples
/// (typically nanoseconds).
///
/// Bucket `i` holds samples in `[2^(i-1), 2^i)` (bucket 0 holds the
/// value 0), so relative quantile error is bounded by 2× at any scale —
/// the usual trade for fixed memory and lock-free recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_of(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(N_BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        // lint:allow(index, reason = "bucket_of clamps to BUCKETS - 1, so the index is always in range")
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate instead of wrapping: a long run of large samples
        // (or one stuck clock) must pin the mean high, never roll the
        // running sum over into a plausible-looking small number.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            });
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (`0 < q <= 1`), linearly interpolated
    /// inside the matched power-of-two bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let in_bucket = b.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if cumulative + in_bucket >= rank {
                let (lo, hi) = if i == 0 {
                    (0u64, 1u64)
                } else {
                    (1u64 << (i - 1), 1u64 << i.min(63))
                };
                let frac = (rank - cumulative) as f64 / in_bucket as f64;
                let interpolated = lo as f64 + frac * (hi - lo) as f64;
                return (interpolated as u64).min(self.max());
            }
            cumulative += in_bucket;
        }
        self.max()
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile — the tail-latency figure the serving runtime
    /// reports.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[derive(Debug, Default)]
struct Families {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// Named metric handles plus a text renderer.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<Families>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        // lint:allow(panic, reason = "poison propagation: a panic mid-registration means torn family maps; fail loud like queue.rs")
        let mut f = self.families.lock().expect("metrics poisoned");
        Arc::clone(f.counters.entry(name.to_string()).or_default())
    }

    /// Returns (creating on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        // lint:allow(panic, reason = "poison propagation: a panic mid-registration means torn family maps; fail loud like queue.rs")
        let mut f = self.families.lock().expect("metrics poisoned");
        Arc::clone(f.gauges.entry(name.to_string()).or_default())
    }

    /// Returns (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        // lint:allow(panic, reason = "poison propagation: a panic mid-registration means torn family maps; fail loud like queue.rs")
        let mut f = self.families.lock().expect("metrics poisoned");
        Arc::clone(f.histograms.entry(name.to_string()).or_default())
    }

    /// Renders every metric as one aligned text line per metric,
    /// sorted by kind then name — the runtime's `/metrics` equivalent.
    pub fn render(&self) -> String {
        // lint:allow(panic, reason = "poison propagation: a panic mid-registration means torn family maps; fail loud like queue.rs")
        let f = self.families.lock().expect("metrics poisoned");
        let mut out = String::new();
        for (name, c) in &f.counters {
            out.push_str(&format!("counter   {name:<40} {}\n", c.get()));
        }
        for (name, g) in &f.gauges {
            out.push_str(&format!("gauge     {name:<40} {}\n", g.get()));
        }
        for (name, h) in &f.histograms {
            out.push_str(&format!(
                "histogram {name:<40} count={} mean={:.0} p50={} p95={} p99={} max={}\n",
                h.count(),
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("ingest.records");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("ingest.records").get(), 5);
        let g = reg.gauge("queue.depth");
        g.set(-3);
        assert_eq!(reg.gauge("queue.depth").get(), -3);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1.0);
        assert_eq!(h.max(), 1000);
        // Log-bucketed: quantiles are within a factor of two.
        let p50 = h.p50();
        assert!((250..=1000).contains(&p50), "p50 {p50}");
        let p99 = h.p99();
        assert!((500..=1000).contains(&p99), "p99 {p99}");
        assert!(h.quantile(1.0) <= 1000);
    }

    #[test]
    fn histogram_sum_saturates_instead_of_wrapping() {
        let h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(1);
        // A wrapping sum would be ~1 here and the mean near zero; the
        // saturated sum pins the mean at the top of the range instead.
        assert!(h.mean() >= (u64::MAX / 3) as f64);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn render_lists_all_kinds_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").inc();
        reg.counter("a.count").add(2);
        reg.gauge("depth").set(7);
        reg.histogram("lat").record(100);
        let text = reg.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("counter   a.count"));
        assert!(lines[1].starts_with("counter   b.count"));
        assert!(lines[2].starts_with("gauge     depth"));
        assert!(lines[3].starts_with("histogram lat"));
        assert!(lines[3].contains("count=1"));
    }
}
