//! The worker shard: dequeue → micro-batch → one batched forward.
//!
//! Each worker owns its queue end and scores against an immutable
//! model snapshot re-read *between* batches (never mid-batch), so the
//! inference path shares no locks with other shards and a hot swap is
//! a single `Arc` re-read away.

use crate::batcher::{BatchConfig, MicroBatcher};
use crate::metrics::{Counter, Histogram};
use crate::model::ModelHandle;
use crate::queue::{BoundedQueue, PopResult};
use crate::trainer::LabelledRecord;
use occusense_dataset::{CsiRecord, Dataset};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One record travelling through the runtime.
#[derive(Debug, Clone)]
pub(crate) struct Job {
    pub sensor_id: Arc<str>,
    pub seq: u64,
    pub record: CsiRecord,
    pub label: Option<u8>,
    pub enqueued_at: Instant,
}

/// The scored output for one ingested record.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The sensor the record came from.
    pub sensor_id: Arc<str>,
    /// Per-sensor ingestion sequence number (0-based).
    pub seq: u64,
    /// The record's scenario timestamp.
    pub timestamp_s: f64,
    /// Predicted binary occupancy.
    pub occupied: u8,
    /// Positive-class probability.
    pub proba: f64,
    /// Version of the model snapshot that scored the record.
    pub model_version: u64,
    /// Queue + batching + inference time, ingest to scored.
    pub latency: Duration,
}

/// Shared instruments every worker updates lock-free.
#[derive(Debug, Clone)]
pub(crate) struct WorkerMetrics {
    pub records: Arc<Counter>,
    pub batches: Arc<Counter>,
    pub deadline_flushes: Arc<Counter>,
    pub latency_ns: Arc<Histogram>,
    pub batch_size: Arc<Histogram>,
    pub inference_ns: Arc<Histogram>,
}

/// Everything one worker thread needs.
pub(crate) struct WorkerContext {
    pub queue: Arc<BoundedQueue<Job>>,
    pub model: Arc<ModelHandle>,
    pub batch: BatchConfig,
    pub out: mpsc::Sender<Prediction>,
    pub trainer_queue: Option<Arc<BoundedQueue<LabelledRecord>>>,
    pub metrics: WorkerMetrics,
}

/// The worker loop: runs until its queue is closed and drained, then
/// flushes any partial batch so no accepted record is ever lost.
pub(crate) fn run(ctx: WorkerContext) {
    let mut batcher = MicroBatcher::new(ctx.batch);
    loop {
        let next = match batcher.deadline() {
            Some(deadline) => ctx.queue.pop_deadline(deadline),
            None => match ctx.queue.pop() {
                Some(job) => PopResult::Item(job),
                None => PopResult::Closed,
            },
        };
        match next {
            PopResult::Item(job) => {
                if let Some(batch) = batcher.push(job, Instant::now()) {
                    flush(&ctx, batch, false);
                }
            }
            PopResult::TimedOut => {
                if let Some(batch) = batcher.flush_due(Instant::now()) {
                    flush(&ctx, batch, true);
                }
            }
            PopResult::Closed => {
                let rest = batcher.take();
                if !rest.is_empty() {
                    flush(&ctx, rest, false);
                }
                return;
            }
        }
    }
}

/// Scores one micro-batch with a single batched forward pass and fans
/// the results out to the prediction channel and (labelled records
/// only) the trainer queue.
fn flush(ctx: &WorkerContext, batch: Vec<Job>, deadline_triggered: bool) {
    let snapshot = ctx.model.current();
    // A shard can host several sensors whose scenario clocks interleave,
    // but `Dataset` requires timestamp order — score through a sorted
    // permutation and un-permute. Each output row depends only on its
    // own input row, so the probabilities are unaffected by the order.
    let mut order: Vec<usize> = (0..batch.len()).collect();
    order.sort_by(|&a, &b| {
        batch[a]
            .record
            .timestamp_s
            .total_cmp(&batch[b].record.timestamp_s)
    });
    let ds: Dataset = order.iter().map(|&i| batch[i].record).collect();
    let infer_start = Instant::now();
    let sorted_probas = snapshot.detector.predict_proba(&ds);
    let mut probas = vec![0.0; batch.len()];
    for (rank, &i) in order.iter().enumerate() {
        probas[i] = sorted_probas[rank];
    }
    ctx.metrics
        .inference_ns
        .record(infer_start.elapsed().as_nanos() as u64);
    ctx.metrics.batches.inc();
    ctx.metrics.batch_size.record(batch.len() as u64);
    if deadline_triggered {
        ctx.metrics.deadline_flushes.inc();
    }

    let scored_at = Instant::now();
    for (job, proba) in batch.into_iter().zip(probas) {
        let latency = scored_at.duration_since(job.enqueued_at);
        ctx.metrics.records.inc();
        ctx.metrics.latency_ns.record(latency.as_nanos() as u64);
        if let (Some(trainer), Some(label)) = (&ctx.trainer_queue, job.label) {
            // The trainer queue sheds (DropOldest) rather than ever
            // stalling the inference path; losses show in its counters.
            let _ = trainer.push(LabelledRecord {
                record: job.record,
                label,
            });
        }
        // A dropped receiver means the caller does not want
        // predictions; serving (and metrics) continue regardless.
        let _ = ctx.out.send(Prediction {
            sensor_id: job.sensor_id,
            seq: job.seq,
            timestamp_s: job.record.timestamp_s,
            occupied: u8::from(proba > 0.5),
            proba,
            model_version: snapshot.version,
            latency,
        });
    }
}
