//! The worker shard: dequeue → micro-batch → one batched forward,
//! supervised against panics.
//!
//! Each worker owns its queue end and scores against an immutable
//! model snapshot re-read *between* batches (never mid-batch), so the
//! inference path shares no locks with other shards and a hot swap is
//! a single `Arc` re-read away.
//!
//! The batch loop runs under `catch_unwind`: a panic while scoring
//! quarantines the in-flight batch into the dead-letter buffer, bumps
//! the shard's restart counter and resumes the loop on the *same*
//! queue — per-sensor ordering and the queue's exact counters survive
//! the fault. Past `max_restarts_per_shard` the shard fails closed:
//! it closes its queue (producers see `SubmitError::Shutdown`) and
//! quarantines the remnant so every accepted record stays accounted.

use crate::batcher::{BatchConfig, MicroBatcher};
use crate::metrics::{Counter, Histogram};
use crate::model::{ModelHandle, ServedModel};
use crate::queue::{BoundedQueue, PopResult};
use crate::state::{SensorState, StateTable};
use crate::supervisor::{is_scorable, panic_message, SupervisorState};
use crate::trainer::LabelledRecord;
use occusense_core::detector::ScoreWorkspace;
use occusense_core::temporal::{TemporalDetector, TemporalWorkspace};
use occusense_core::tensor::{Matrix, Parallelism};
use occusense_dataset::CsiRecord;
use occusense_sim::stream::is_worker_panic_trigger;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One record travelling through the runtime.
#[derive(Debug, Clone)]
pub(crate) struct Job {
    pub sensor_id: Arc<str>,
    pub seq: u64,
    pub record: CsiRecord,
    pub label: Option<u8>,
    pub enqueued_at: Instant,
}

/// The scored output for one ingested record.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The sensor the record came from.
    pub sensor_id: Arc<str>,
    /// Per-sensor ingestion sequence number (0-based).
    pub seq: u64,
    /// The record's scenario timestamp.
    pub timestamp_s: f64,
    /// Predicted binary occupancy.
    pub occupied: u8,
    /// Positive-class probability.
    pub proba: f64,
    /// Version of the model snapshot that scored the record.
    pub model_version: u64,
    /// Queue + batching + inference time, ingest to scored.
    pub latency: Duration,
}

/// Shared instruments every worker updates lock-free.
#[derive(Debug, Clone)]
pub(crate) struct WorkerMetrics {
    pub records: Arc<Counter>,
    pub batches: Arc<Counter>,
    pub deadline_flushes: Arc<Counter>,
    pub restarts: Arc<Counter>,
    pub poisoned: Arc<Counter>,
    pub state_resets: Arc<Counter>,
    pub latency_ns: Arc<Histogram>,
    pub batch_size: Arc<Histogram>,
    pub inference_ns: Arc<Histogram>,
}

/// Everything one worker thread needs.
pub(crate) struct WorkerContext {
    pub shard: usize,
    pub queue: Arc<BoundedQueue<Job>>,
    pub model: Arc<ModelHandle>,
    pub batch: BatchConfig,
    pub out: mpsc::Sender<Prediction>,
    pub trainer_queue: Option<Arc<BoundedQueue<LabelledRecord>>>,
    pub metrics: WorkerMetrics,
    pub supervision: Arc<SupervisorState>,
    pub max_restarts: u64,
    pub panic_on_trigger: bool,
    pub parallelism: Parallelism,
    /// `Some` when the runtime serves a temporal model: this shard's
    /// per-sensor hidden rows live in here.
    pub states: Option<Arc<StateTable>>,
}

/// Per-worker reusable scoring buffers: the record gather, the design
/// matrix, the MLP forward workspace and the probability vector all
/// keep their capacity across flushes, so a steady stream of batches
/// is scored without heap allocations.
struct ScoreBuffers {
    records: Vec<CsiRecord>,
    probas: Vec<f64>,
    ws: ScoreWorkspace,
    temporal: Option<TemporalBuffers>,
}

/// Reusable scratch of the temporal (stateful GRU) scoring path: the
/// per-round record gather, batch-position map, hidden-row matrix and
/// the GRU/head workspaces all keep their capacity across flushes.
struct TemporalBuffers {
    ws: TemporalWorkspace,
    /// Hidden rows of the sensors active in the current round.
    h: Matrix,
    /// Current-round records, one per active sensor.
    records: Vec<CsiRecord>,
    /// `positions[r]` = index into the flush batch of round-row `r`.
    positions: Vec<usize>,
    /// Presence probabilities of the current round's rows.
    step_probas: Vec<f64>,
}

impl WorkerContext {
    fn quarantine(&self, jobs: Vec<Job>, reason: &str) {
        let n = self.supervision.quarantine(self.shard, jobs, reason);
        self.metrics.poisoned.add(n);
    }
}

/// The supervision loop around the batch-scoring loop. Runs until the
/// queue is closed and drained, surviving up to `max_restarts` panics.
pub(crate) fn run(ctx: WorkerContext) {
    // Both cells live *outside* the unwind boundary so a panic while
    // scoring cannot lose records: `in_flight` holds the batch being
    // scored, the batcher holds the not-yet-flushed remainder.
    let in_flight: RefCell<Option<Vec<Job>>> = RefCell::new(None);
    let batcher = RefCell::new(MicroBatcher::new(ctx.batch));
    // Scoring buffers also live outside the unwind boundary: a restart
    // keeps the warmed capacity (every flush overwrites them whole, so
    // no stale state can leak across a panic).
    let buffers = RefCell::new(ScoreBuffers {
        records: Vec::new(),
        probas: Vec::new(),
        ws: ScoreWorkspace::with_parallelism(ctx.parallelism),
        temporal: ctx.states.as_ref().map(|_| TemporalBuffers {
            ws: TemporalWorkspace::with_parallelism(ctx.parallelism),
            h: Matrix::zeros(0, 0),
            records: Vec::new(),
            positions: Vec::new(),
            step_probas: Vec::new(),
        }),
    });
    loop {
        match catch_unwind(AssertUnwindSafe(|| {
            batch_loop(&ctx, &batcher, &in_flight, &buffers)
        })) {
            Ok(()) => return, // queue closed and fully drained
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                if let Some(batch) = in_flight.borrow_mut().take() {
                    ctx.quarantine(batch, &format!("worker panic: {message}"));
                }
                let restarts = ctx.supervision.record_shard_panic(ctx.shard, &message);
                ctx.metrics.restarts.inc();
                if restarts > ctx.max_restarts {
                    fail_shard(&ctx, &batcher);
                    return;
                }
                // Respawn: next iteration re-enters the batch loop on
                // the same queue with the surviving batcher state.
            }
        }
    }
}

/// Permanent failure past the restart limit: stop ingestion and
/// quarantine everything still held, so the accounting identity
/// `pushed = scored + quarantined + dropped` holds even here.
fn fail_shard(ctx: &WorkerContext, batcher: &RefCell<MicroBatcher<Job>>) {
    ctx.queue.close();
    let mut remnant = batcher.borrow_mut().take();
    while let Some(job) = ctx.queue.pop() {
        remnant.push(job);
    }
    if !remnant.is_empty() {
        ctx.quarantine(remnant, "shard failed: restart limit exceeded");
    }
}

/// The batch-scoring loop (the unwind-protected region).
fn batch_loop(
    ctx: &WorkerContext,
    batcher: &RefCell<MicroBatcher<Job>>,
    in_flight: &RefCell<Option<Vec<Job>>>,
    buffers: &RefCell<ScoreBuffers>,
) {
    loop {
        let deadline = batcher.borrow().deadline();
        let next = match deadline {
            Some(deadline) => ctx.queue.pop_deadline(deadline),
            None => match ctx.queue.pop() {
                Some(job) => PopResult::Item(job),
                None => PopResult::Closed,
            },
        };
        match next {
            PopResult::Item(job) => {
                let full = batcher.borrow_mut().push(job, Instant::now());
                if let Some(batch) = full {
                    flush(ctx, in_flight, buffers, batch, false);
                }
            }
            PopResult::TimedOut => {
                let due = batcher.borrow_mut().flush_due(Instant::now());
                if let Some(batch) = due {
                    flush(ctx, in_flight, buffers, batch, true);
                }
            }
            PopResult::Closed => {
                let rest = batcher.borrow_mut().take();
                if !rest.is_empty() {
                    flush(ctx, in_flight, buffers, rest, false);
                }
                return;
            }
        }
    }
}

/// Scores one micro-batch with a single batched forward pass and fans
/// the results out to the prediction channel and (labelled records
/// only) the trainer queue. Non-finite records are quarantined before
/// scoring; the scorable remainder is parked in `in_flight` so the
/// supervisor can quarantine it if the forward pass panics.
fn flush(
    ctx: &WorkerContext,
    in_flight: &RefCell<Option<Vec<Job>>>,
    buffers: &RefCell<ScoreBuffers>,
    batch: Vec<Job>,
    deadline_triggered: bool,
) {
    let (scorable, poisoned): (Vec<Job>, Vec<Job>) =
        batch.into_iter().partition(|job| is_scorable(&job.record));
    if !poisoned.is_empty() {
        ctx.quarantine(poisoned, "non-finite input record");
    }
    if scorable.is_empty() {
        return;
    }
    *in_flight.borrow_mut() = Some(scorable);

    let snapshot = ctx.model.current();
    let infer_start = Instant::now();
    match &snapshot.model {
        ServedModel::Frame(detector) => {
            // lint:no_alloc
            {
                let guard = in_flight.borrow();
                // lint:allow(panic, reason = "invariant: the batch was parked into in_flight two statements ago and nothing can take it in between")
                let batch = guard.as_deref().expect("in-flight batch just parked");
                if ctx.panic_on_trigger && batch.iter().any(|j| is_worker_panic_trigger(&j.record))
                {
                    // lint:allow(panic, reason = "fault injection: this panic IS the feature under test; it exercises the supervisor's restart path")
                    panic!("fault injection: scripted worker panic trigger");
                }
                // One batched forward through the worker's reusable
                // buffers: records are scored in arrival order (each
                // output row depends only on its own input row, so
                // ordering cannot change scores) and steady-state
                // flushes allocate nothing.
                let ScoreBuffers {
                    records,
                    probas,
                    ws,
                    ..
                } = &mut *buffers.borrow_mut();
                records.clear();
                // lint:allow(alloc, reason = "extend into a cleared reusable buffer: capacity is retained across flushes, so steady state does not allocate")
                records.extend(batch.iter().map(|job| job.record));
                detector.predict_proba_slice_into(records, ws, probas);
            }
            // lint:end_no_alloc
        }
        ServedModel::Temporal(temporal) => {
            if !score_temporal(ctx, temporal, snapshot.version, in_flight, buffers) {
                // A temporal snapshot reached a worker without a state
                // table — a frame-mode runtime was handed a temporal
                // publish. Quarantining keeps the accounting identity
                // exact rather than scoring with fabricated state.
                if let Some(batch) = in_flight.borrow_mut().take() {
                    ctx.quarantine(batch, "temporal snapshot on a runtime without sensor state");
                }
                return;
            }
        }
    }
    // The forward pass succeeded: the batch is no longer at risk.
    let batch = in_flight
        .borrow_mut()
        .take()
        // lint:allow(panic, reason = "invariant: the batch was parked into in_flight above and the forward pass cannot consume it")
        .expect("in-flight batch still parked");

    ctx.metrics
        .inference_ns
        .record(infer_start.elapsed().as_nanos() as u64);
    ctx.metrics.batches.inc();
    ctx.metrics.batch_size.record(batch.len() as u64);
    if deadline_triggered {
        ctx.metrics.deadline_flushes.inc();
    }

    let scored_at = Instant::now();
    let buffers = buffers.borrow();
    for (job, &proba) in batch.into_iter().zip(&buffers.probas) {
        let latency = scored_at.duration_since(job.enqueued_at);
        ctx.metrics.records.inc();
        ctx.metrics.latency_ns.record(latency.as_nanos() as u64);
        if let (Some(trainer), Some(label)) = (&ctx.trainer_queue, job.label) {
            // The trainer queue sheds (DropOldest) rather than ever
            // stalling the inference path; losses show in its counters.
            // lint:allow(swallow, reason = "shedding is the contract: DropOldest records every loss in the trainer queue's dropped counter, which the report surfaces")
            let _ = trainer.push(LabelledRecord {
                record: job.record,
                label,
            });
        }
        // A dropped receiver means the caller does not want
        // predictions; serving (and metrics) continue regardless.
        // lint:allow(swallow, reason = "send fails only when the receiver is dropped, which is the caller opting out of predictions; records/latency metrics still account the work")
        let _ = ctx.out.send(Prediction {
            sensor_id: job.sensor_id,
            seq: job.seq,
            timestamp_s: job.record.timestamp_s,
            occupied: u8::from(proba > 0.5),
            proba,
            model_version: snapshot.version,
            latency,
        });
    }
}

/// Stateful sequence scoring of one micro-batch: records are grouped
/// per sensor (arrival order preserved within a sensor) and replayed
/// in *rounds* — round `r` takes each active sensor's `r`-th record,
/// gathers those sensors' hidden rows out of the shard's state table,
/// advances them all with **one** batched GRU step, and scatters the
/// updated rows back. Row independence of the kernels makes the
/// batched step bitwise identical to stepping each sensor alone, so
/// multiplexing sensors into shared batches never changes a score.
///
/// State lifecycle per the [`StateTable`] docs: first sight of a
/// sensor creates a zero row; a snapshot version (or hidden width)
/// mismatch zero-resets it — counted in `state_resets`, and visible to
/// replay verifiers through each prediction's `model_version`.
///
/// Fills `buffers.probas` aligned with the parked batch (position
/// `i` = job `i`'s presence probability), so the caller's fan-out is
/// shared with the frame path. Returns `false` when the worker has no
/// state table (frame-mode runtime handed a temporal snapshot).
fn score_temporal(
    ctx: &WorkerContext,
    temporal: &TemporalDetector,
    version: u64,
    in_flight: &RefCell<Option<Vec<Job>>>,
    buffers: &RefCell<ScoreBuffers>,
) -> bool {
    let Some(table) = &ctx.states else {
        return false;
    };
    let guard = in_flight.borrow();
    // lint:allow(panic, reason = "invariant: the batch was parked into in_flight by the caller immediately before this call")
    let batch = guard.as_deref().expect("in-flight batch just parked");
    let ScoreBuffers {
        probas,
        temporal: bufs,
        ..
    } = &mut *buffers.borrow_mut();
    let Some(bufs) = bufs else {
        return false;
    };
    let hidden = temporal.hidden_dim();
    probas.clear();
    probas.resize(batch.len(), 0.0);

    // Per-sensor batch positions, arrival order preserved within each
    // sensor (the queue is FIFO, so this is ascending client seq).
    let mut groups: BTreeMap<&Arc<str>, Vec<usize>> = BTreeMap::new();
    for (pos, job) in batch.iter().enumerate() {
        groups.entry(&job.sensor_id).or_default().push(pos);
    }

    // One state-lock hold per flush. `lock_shard` only returns `None`
    // for an out-of-range shard index, which `ctx.shard` never is.
    let Some((mut states, wiped)) = table.lock_shard(ctx.shard) else {
        return false;
    };
    if wiped > 0 {
        // A predecessor panicked mid-flush; the shard map was cleared
        // and every sensor on it restarts from zeros.
        ctx.metrics.state_resets.add(wiped as u64);
    }
    for sensor in groups.keys() {
        let state = states
            .entry(Arc::clone(sensor))
            .or_insert_with(|| SensorState {
                h: vec![0.0; hidden],
                model_version: version,
            });
        if state.model_version != version || state.h.len() != hidden {
            // Hot swap: hidden activations of the old weights mean
            // nothing under the new ones — restart the sequence.
            state.h.clear();
            state.h.resize(hidden, 0.0);
            state.model_version = version;
            ctx.metrics.state_resets.inc();
        }
    }

    let rounds = groups.values().map(Vec::len).max().unwrap_or(0);
    for round in 0..rounds {
        bufs.records.clear();
        bufs.positions.clear();
        for positions in groups.values() {
            if let Some(&pos) = positions.get(round) {
                if let Some(job) = batch.get(pos) {
                    bufs.records.push(job.record);
                    bufs.positions.push(pos);
                }
            }
        }
        bufs.h.ensure_shape(bufs.records.len(), hidden);
        for (r, &pos) in bufs.positions.iter().enumerate() {
            if let Some(state) = batch
                .get(pos)
                .and_then(|job| states.get(job.sensor_id.as_ref()))
            {
                bufs.h.row_mut(r).copy_from_slice(&state.h);
            }
        }
        temporal.step_batch_into(
            &bufs.records,
            &mut bufs.h,
            &mut bufs.ws,
            &mut bufs.step_probas,
        );
        for (r, &pos) in bufs.positions.iter().enumerate() {
            if let Some(state) = batch
                .get(pos)
                .and_then(|job| states.get_mut(job.sensor_id.as_ref()))
            {
                state.h.copy_from_slice(bufs.h.row(r));
            }
            if let (Some(slot), Some(&p)) = (probas.get_mut(pos), bufs.step_probas.get(r)) {
                *slot = p;
            }
        }
    }
    true
}
