//! # occusense-serve — streaming inference runtime
//!
//! Turns the offline detector pipeline into a live service, entirely on
//! std threads (no async runtime):
//!
//! ```text
//!  sensors ──▶ bounded shard queues ──▶ worker threads ──▶ predictions
//!  (clients)   (Block / DropOldest /    (micro-batch +
//!               RejectNewest, exact      one batched MLP
//!               drop counters)           forward each)
//!                                           │ labelled records
//!                                           ▼
//!                                      trainer thread ──▶ hot model
//!                                      (OnlineDetector)    swap (v2, v3…)
//! ```
//!
//! * **Backpressure** — every ingestion queue is bounded with a
//!   configurable full-queue policy and exact per-queue counters
//!   ([`queue`]).
//! * **Sharding** — sensors are FNV-1a hash-routed to a fixed worker
//!   shard ([`routing`]), so per-sensor ordering is preserved and the
//!   hot path shares no locks across shards.
//! * **Micro-batching** — each worker flushes on a size or oldest-item
//!   deadline trigger ([`batcher`]) and scores the whole batch with a
//!   single batched forward pass, bitwise identical to per-record
//!   scoring.
//! * **Hot swap** — a trainer thread learns continually from labelled
//!   records and publishes versioned snapshots workers pick up between
//!   batches ([`model`]).
//! * **Stateful sequence scoring** — a runtime booted with
//!   [`ServeRuntime::start_temporal`] serves the GRU sequence model:
//!   each sensor's hidden row is carried between micro-batches in a
//!   per-shard [`state`] table, the current timestep of all sensors in
//!   a batch advances in *one* batched GRU step (bitwise identical to
//!   solo stepping, by row independence of the kernels), states
//!   zero-reset on hot swap and are evicted on disconnect — all under
//!   the same accounting identity.
//! * **Observability** — counters, gauges and log-bucketed latency
//!   histograms with p50/p95/p99, rendered as plain text ([`metrics`]).
//! * **Fault tolerance** — workers and the trainer run under panic
//!   supervision ([`supervisor`]): a panicking shard quarantines the
//!   in-flight batch into a bounded dead-letter buffer and restarts on
//!   the same queue, the trainer falls back to the last published
//!   snapshot, and the run-level accounting identity
//!   `pushed = scored + quarantined + dropped` is checked by
//!   [`ServeReport::unaccounted_records`].
//! * **Crash-safe checkpoints** — published models are persisted
//!   atomically with a checksum footer (`occusense_core::persist`), so
//!   a restarted runtime resumes from the newest valid checkpoint with
//!   bitwise-identical predictions.
//!
//! [`ServeRuntime::start`] boots the whole topology;
//! [`ServeRuntime::shutdown`] drains it gracefully and returns a
//! [`ServeReport`]. See `src/bin/serve_sim.rs` for an end-to-end driver
//! replaying simulated office scenarios as concurrent sensor streams,
//! including a `--faults` mode that injects NaN bursts, spikes,
//! dropouts and scripted panics.
//!
//! [`ServeReport::unaccounted_records`]: runtime::ServeReport::unaccounted_records

#![deny(unsafe_code)]

pub mod batcher;
pub mod metrics;
pub mod model;
pub mod queue;
pub mod report;
pub mod routing;
pub mod runtime;
pub mod state;
pub mod supervisor;
pub mod trainer;
pub mod worker;

pub use batcher::{BatchConfig, MicroBatcher};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use model::{ModelHandle, ModelSnapshot, ServedModel};
pub use queue::{
    BackpressurePolicy, BoundedQueue, PopResult, PushError, QueueCounters, TryPushError,
};
pub use report::{ReportParseError, REPORT_WIRE_VERSION};
pub use routing::{shard_for, try_shard_for, ZeroShardsError};
pub use runtime::{
    wire_stats, OnlineTrainingConfig, SensorClient, ServeConfig, ServeError, ServeReport,
    ServeRuntime, SubmitError, WireCounters,
};
pub use state::{SensorState, StateTable};
pub use supervisor::{CheckpointConfig, DeadLetter, FaultReport, SupervisorConfig};
pub use trainer::LabelledRecord;
pub use worker::Prediction;
