//! End-to-end serving driver: replays `OfficeSimulator` scenarios as
//! concurrent live sensor streams through the `occusense-serve`
//! runtime and prints throughput, tail latency, per-queue drop
//! counters and the full metrics registry.
//!
//! ```text
//! cargo run --release -p occusense-serve --bin serve_sim -- \
//!     --sensors 6 --shards 4 --batch 32 --delay-ms 5 \
//!     --policy drop-oldest --duration 600
//! ```
//!
//! With `--faults SPEC` the sensor streams are corrupted on the way in
//! (NaN bursts, amplitude spikes, dropouts, scripted worker/trainer
//! panics) and the run doubles as a fault-injection smoke test: it
//! exits non-zero unless every record is accounted for and every
//! scripted panic produced a supervised restart.

use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_serve::{
    BackpressurePolicy, BatchConfig, CheckpointConfig, OnlineTrainingConfig, ServeConfig,
    ServeRuntime, SubmitError,
};
use occusense_sim::{simulate, FaultPlan, OfficeSimulator, ScenarioConfig};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "serve_sim — replay simulated office sensors through the serving runtime

  --sensors N         concurrent simulated sensors (default 6)
  --shards N          worker shards (default 4)
  --batch N           micro-batch size trigger (default 32)
  --delay-ms N        micro-batch deadline trigger (default 5)
  --policy P          block | drop-oldest | reject-newest (default drop-oldest)
  --duration S        simulated seconds replayed per sensor (default 600)
  --capacity N        per-shard queue capacity (default 256)
  --faults SPEC       inject faults into every sensor stream and verify
                      recovery. SPEC is comma-separated kind@start[xlen]
                      with kinds nan | spike | drop | panic | trainer-panic,
                      e.g. \"nan@50x5,drop@100x20,panic@300\"
  --checkpoint-dir D  write crash-safe model checkpoints into D
  -h, --help          print this help

networked serving (the occusense-wire gateway; layered above serve, so
it ships as its own driver):

  cargo run --release -p occusense-wire --bin wire_storm -- \\
      --sensors 8 --records 5000 --transport loopback --verify

  wire_storm replays the same simulated fleets over the binary wire
  protocol instead of in-process calls. Its gateway flags mirror the
  ones above (--shards, --batch, --delay-ms, --policy, --capacity) and
  add --transport loopback|tcp, --addr HOST:PORT, --records N,
  --wire-batch N, --outbound-policy P (slow-client handling for the
  prediction stream), --seed S and --verify (bitwise comparison of
  every wire prediction against direct in-process scoring). See
  `wire_storm --help`.";

struct Args {
    sensors: usize,
    shards: usize,
    max_batch: usize,
    max_delay_ms: u64,
    policy: BackpressurePolicy,
    duration_s: f64,
    queue_capacity: usize,
    faults: FaultPlan,
    checkpoint_dir: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            sensors: 6,
            shards: 4,
            max_batch: 32,
            max_delay_ms: 5,
            policy: BackpressurePolicy::DropOldest,
            duration_s: 600.0,
            queue_capacity: 256,
            faults: FaultPlan::new(),
            checkpoint_dir: None,
        }
    }
}

fn parse_value<T: std::str::FromStr>(raw: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("bad value {raw:?} for {what}: {e}"))
}

/// Parses the command line. `Err` carries a user-facing message — the
/// caller prints it with the usage text and exits non-zero; malformed
/// flags must never panic.
fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv;
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            std::process::exit(0);
        }
        const KNOWN: &[&str] = &[
            "--sensors",
            "--shards",
            "--batch",
            "--delay-ms",
            "--policy",
            "--duration",
            "--capacity",
            "--faults",
            "--checkpoint-dir",
        ];
        if !KNOWN.contains(&flag.as_str()) {
            return Err(format!("unknown flag {flag:?}"));
        }
        let raw = it
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--sensors" => args.sensors = parse_value(&raw, "--sensors")?,
            "--shards" => args.shards = parse_value(&raw, "--shards")?,
            "--batch" => args.max_batch = parse_value(&raw, "--batch")?,
            "--delay-ms" => args.max_delay_ms = parse_value(&raw, "--delay-ms")?,
            "--policy" => {
                args.policy = BackpressurePolicy::parse(&raw).ok_or_else(|| {
                    format!("unknown policy {raw:?} (block | drop-oldest | reject-newest)")
                })?;
            }
            "--duration" => args.duration_s = parse_value(&raw, "--duration")?,
            "--capacity" => args.queue_capacity = parse_value(&raw, "--capacity")?,
            "--faults" => {
                args.faults = FaultPlan::parse(&raw).map_err(|e| format!("bad --faults: {e}"))?;
            }
            "--checkpoint-dir" => args.checkpoint_dir = Some(PathBuf::from(raw)),
            _ => unreachable!("flag was vetted against KNOWN"),
        }
    }
    if args.sensors == 0 {
        return Err("--sensors must be >= 1".into());
    }
    if args.shards == 0 {
        return Err("--shards must be >= 1".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("serve_sim: {message}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    // Offline bootstrap: train the paper's MLP on a quick scenario, the
    // same way EXPERIMENTS.md trains the Table IV models.
    eprintln!("training bootstrap detector…");
    let train = simulate(&ScenarioConfig::quick(1200.0, 7));
    let detector = OccupancyDetector::train(
        &train,
        &DetectorConfig {
            model: ModelKind::Mlp,
            mlp_epochs: 4,
            seed: 7,
            ..DetectorConfig::default()
        },
    );

    let mut config = ServeConfig {
        n_shards: args.shards,
        queue_capacity: args.queue_capacity,
        policy: args.policy,
        batch: BatchConfig {
            max_batch: args.max_batch,
            max_delay: Duration::from_millis(args.max_delay_ms),
        },
        online: Some(OnlineTrainingConfig::default()),
        ..ServeConfig::default()
    };
    // Scripted panic sentinels only fire when supervision is armed for
    // them, so a plain run can never be crashed by record contents.
    config.supervisor.panic_on_trigger =
        args.faults.has_worker_panics() || args.faults.has_trainer_panics();
    config.checkpoint = args.checkpoint_dir.clone().map(CheckpointConfig::new);

    eprintln!(
        "serving: {} sensors → {} shards, batch ≤{} / {}ms, policy {:?}, queue capacity {}",
        args.sensors,
        args.shards,
        args.max_batch,
        args.max_delay_ms,
        args.policy,
        args.queue_capacity
    );
    if !args.faults.is_empty() {
        eprintln!(
            "fault injection: {} scripted faults per sensor stream",
            args.faults.faults().len()
        );
    }
    let (runtime, predictions) = match ServeRuntime::start(detector, config) {
        Ok(started) => started,
        Err(e) => {
            eprintln!("serve_sim: {e}");
            std::process::exit(2);
        }
    };

    // One thread per sensor, each flood-replaying its own simulated
    // scenario (distinct seed ⇒ distinct occupancy schedule) as fast as
    // the runtime will take it. Labels ride along so the continual
    // trainer keeps publishing hot swaps while we serve.
    let sensors: Vec<_> = (0..args.sensors)
        .map(|i| {
            let mut client = runtime.client(&format!("sensor-{i}"));
            let scenario = ScenarioConfig::quick(args.duration_s, 100 + i as u64);
            let plan = args.faults.clone();
            std::thread::Builder::new()
                .name(format!("sensor-{i}"))
                .spawn(move || {
                    let mut sent = 0u64;
                    let mut shed = 0u64;
                    let stream = OfficeSimulator::new(scenario).stream().with_faults(plan);
                    for record in stream {
                        let label = record.occupancy();
                        match client.submit_labelled(record, label) {
                            Ok(()) => sent += 1,
                            Err(SubmitError::Rejected) => shed += 1,
                            Err(SubmitError::Shutdown) => break,
                        }
                    }
                    (client.shard(), sent, shed)
                })
                .expect("spawn sensor")
        })
        .collect();

    // Drain predictions concurrently so the output channel never backs
    // up; keep a light running tally for the final print.
    let drain = std::thread::spawn(move || {
        let (mut n, mut occupied, mut max_version) = (0u64, 0u64, 0u64);
        for p in predictions {
            n += 1;
            occupied += u64::from(p.occupied);
            max_version = max_version.max(p.model_version);
        }
        (n, occupied, max_version)
    });

    for (i, s) in sensors.into_iter().enumerate() {
        let (shard, sent, shed) = s.join().expect("sensor thread panicked");
        eprintln!("sensor-{i}: shard {shard}, submitted {sent}, shed at ingress {shed}");
    }

    let report = runtime.shutdown();
    let (predicted, occupied, max_version) = drain.join().expect("drain thread panicked");

    println!("\n=== serve_sim report ===");
    print!("{report}");
    println!(
        "predictions delivered: {predicted} ({occupied} occupied) · newest model seen v{max_version}"
    );
    println!("\n=== metrics ===\n{}", report.metrics_text);

    // In faults mode the run is a verdict, not just a demo: recovery
    // must be provable from the report or the process fails.
    if !args.faults.is_empty() {
        let mut failures = Vec::new();
        let unaccounted = report.unaccounted_records();
        if unaccounted != 0 {
            failures.push(format!("{unaccounted} records unaccounted for"));
        }
        if args.faults.has_worker_panics() && report.faults.shard_restarts.iter().sum::<u64>() == 0
        {
            failures.push("scripted worker panics produced no supervised restarts".into());
        }
        if args.faults.has_trainer_panics() && report.faults.trainer_restarts == 0 {
            failures.push("scripted trainer panics produced no supervised restarts".into());
        }
        if report.faults.uncontained_panics > 0 {
            failures.push(format!(
                "{} panics escaped supervision",
                report.faults.uncontained_panics
            ));
        }
        if failures.is_empty() {
            println!("fault-injection verdict: PASS (all records accounted, restarts observed)");
        } else {
            for f in &failures {
                eprintln!("fault-injection verdict: FAIL — {f}");
            }
            std::process::exit(1);
        }
    }
}
