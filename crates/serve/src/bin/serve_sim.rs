//! End-to-end serving driver: replays `OfficeSimulator` scenarios as
//! concurrent live sensor streams through the `occusense-serve`
//! runtime and prints throughput, tail latency, per-queue drop
//! counters and the full metrics registry.
//!
//! ```text
//! cargo run --release -p occusense-serve --bin serve_sim -- \
//!     --sensors 6 --shards 4 --batch 32 --delay-ms 5 \
//!     --policy drop-oldest --duration 600
//! ```

use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_serve::{
    BackpressurePolicy, BatchConfig, OnlineTrainingConfig, ServeConfig, ServeRuntime, SubmitError,
};
use occusense_sim::{simulate, OfficeSimulator, ScenarioConfig};
use std::time::Duration;

struct Args {
    sensors: usize,
    shards: usize,
    max_batch: usize,
    max_delay_ms: u64,
    policy: BackpressurePolicy,
    duration_s: f64,
    queue_capacity: usize,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            sensors: 6,
            shards: 4,
            max_batch: 32,
            max_delay_ms: 5,
            policy: BackpressurePolicy::DropOldest,
            duration_s: 600.0,
            queue_capacity: 256,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--sensors" => args.sensors = value("--sensors").parse().expect("--sensors"),
            "--shards" => args.shards = value("--shards").parse().expect("--shards"),
            "--batch" => args.max_batch = value("--batch").parse().expect("--batch"),
            "--delay-ms" => args.max_delay_ms = value("--delay-ms").parse().expect("--delay-ms"),
            "--policy" => {
                let raw = value("--policy");
                args.policy = BackpressurePolicy::parse(&raw).unwrap_or_else(|| {
                    panic!("unknown policy {raw:?} (block | drop-oldest | reject-newest)")
                });
            }
            "--duration" => args.duration_s = value("--duration").parse().expect("--duration"),
            "--capacity" => args.queue_capacity = value("--capacity").parse().expect("--capacity"),
            "--help" | "-h" => {
                println!(
                    "serve_sim — replay simulated office sensors through the serving runtime\n\
                     \n\
                     --sensors N     concurrent simulated sensors (default 6)\n\
                     --shards N      worker shards (default 4)\n\
                     --batch N       micro-batch size trigger (default 32)\n\
                     --delay-ms N    micro-batch deadline trigger (default 5)\n\
                     --policy P      block | drop-oldest | reject-newest (default drop-oldest)\n\
                     --duration S    simulated seconds replayed per sensor (default 600)\n\
                     --capacity N    per-shard queue capacity (default 256)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other:?} (try --help)"),
        }
    }
    assert!(args.sensors >= 1, "--sensors must be >= 1");
    args
}

fn main() {
    let args = parse_args();

    // Offline bootstrap: train the paper's MLP on a quick scenario, the
    // same way EXPERIMENTS.md trains the Table IV models.
    eprintln!("training bootstrap detector…");
    let train = simulate(&ScenarioConfig::quick(1200.0, 7));
    let detector = OccupancyDetector::train(
        &train,
        &DetectorConfig {
            model: ModelKind::Mlp,
            mlp_epochs: 4,
            seed: 7,
            ..DetectorConfig::default()
        },
    );

    let config = ServeConfig {
        n_shards: args.shards,
        queue_capacity: args.queue_capacity,
        policy: args.policy,
        batch: BatchConfig {
            max_batch: args.max_batch,
            max_delay: Duration::from_millis(args.max_delay_ms),
        },
        online: Some(OnlineTrainingConfig::default()),
    };
    eprintln!(
        "serving: {} sensors → {} shards, batch ≤{} / {}ms, policy {:?}, queue capacity {}",
        args.sensors,
        args.shards,
        args.max_batch,
        args.max_delay_ms,
        args.policy,
        args.queue_capacity
    );
    let (runtime, predictions) = ServeRuntime::start(detector, config);

    // One thread per sensor, each flood-replaying its own simulated
    // scenario (distinct seed ⇒ distinct occupancy schedule) as fast as
    // the runtime will take it. Labels ride along so the continual
    // trainer keeps publishing hot swaps while we serve.
    let sensors: Vec<_> = (0..args.sensors)
        .map(|i| {
            let mut client = runtime.client(&format!("sensor-{i}"));
            let scenario = ScenarioConfig::quick(args.duration_s, 100 + i as u64);
            std::thread::Builder::new()
                .name(format!("sensor-{i}"))
                .spawn(move || {
                    let mut sent = 0u64;
                    let mut shed = 0u64;
                    for record in OfficeSimulator::new(scenario).stream() {
                        let label = record.occupancy();
                        match client.submit_labelled(record, label) {
                            Ok(()) => sent += 1,
                            Err(SubmitError::Rejected) => shed += 1,
                            Err(SubmitError::Shutdown) => break,
                        }
                    }
                    (client.shard(), sent, shed)
                })
                .expect("spawn sensor")
        })
        .collect();

    // Drain predictions concurrently so the output channel never backs
    // up; keep a light running tally for the final print.
    let drain = std::thread::spawn(move || {
        let (mut n, mut occupied, mut max_version) = (0u64, 0u64, 0u64);
        for p in predictions {
            n += 1;
            occupied += u64::from(p.occupied);
            max_version = max_version.max(p.model_version);
        }
        (n, occupied, max_version)
    });

    for (i, s) in sensors.into_iter().enumerate() {
        let (shard, sent, shed) = s.join().expect("sensor thread panicked");
        eprintln!("sensor-{i}: shard {shard}, submitted {sent}, shed at ingress {shed}");
    }

    let report = runtime.shutdown();
    let (predicted, occupied, max_version) = drain.join().expect("drain thread panicked");

    println!("\n=== serve_sim report ===");
    print!("{report}");
    println!(
        "predictions delivered: {predicted} ({occupied} occupied) · newest model seen v{max_version}"
    );
    println!("\n=== metrics ===\n{}", report.metrics_text);
}
