//! Fault containment for the serving runtime: panic supervision,
//! record quarantine and crash-safe checkpoint plumbing.
//!
//! PR 1's runtime joined its threads with `let _ = join()` — a
//! panicking shard died silently while its sensors kept feeding a
//! queue nobody drained. This module is the opposite stance: every
//! worker and the trainer run their loops under `catch_unwind`; a
//! panic quarantines the offending batch into a bounded dead-letter
//! buffer, bumps a per-shard restart counter, and respawns the loop
//! against the *same* queue, so per-sensor ordering and the exact
//! backpressure counters survive the fault. The invariant the whole
//! module defends, checked by [`ServeReport::unaccounted_records`]:
//!
//! ```text
//! pushed = scored + quarantined + dropped-by-policy   (per run)
//! ```
//!
//! [`ServeReport::unaccounted_records`]: crate::runtime::ServeReport::unaccounted_records

use crate::worker::Job;
use occusense_dataset::CsiRecord;
use std::any::Any;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Supervision knobs (part of [`ServeConfig`](crate::runtime::ServeConfig)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Panics a shard survives before it is declared failed; a failed
    /// shard closes its queue (producers see `SubmitError::Shutdown`)
    /// and quarantines whatever was still queued, so accounting stays
    /// exact even past the limit.
    pub max_restarts_per_shard: u64,
    /// Panics the trainer survives before continual training is given
    /// up for the run (the last published snapshot keeps serving).
    pub max_trainer_restarts: u64,
    /// Entries retained in the dead-letter buffer; older entries are
    /// evicted but stay counted in `poisoned_records`.
    pub dead_letter_capacity: usize,
    /// Fault-injection mode: panic on records carrying the scripted
    /// sentinels of `occusense_sim::stream` (never enable in
    /// production — it turns crafted input into a crash).
    pub panic_on_trigger: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_restarts_per_shard: 8,
            max_trainer_restarts: 8,
            dead_letter_capacity: 256,
            panic_on_trigger: false,
        }
    }
}

/// Periodic + on-shutdown model persistence (see
/// [`occusense_core::persist`] for the on-disk guarantees).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory the versioned `detector-v*.ckpt` files live in
    /// (created by `ServeRuntime::start`).
    pub dir: PathBuf,
    /// Snapshot publications between periodic checkpoints.
    pub every_publishes: u64,
    /// Checkpoints retained on disk (older ones are pruned).
    pub keep: usize,
}

impl CheckpointConfig {
    /// Checkpointing into `dir` with the default cadence (every 4th
    /// publish, keep the 4 newest).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every_publishes: 4,
            keep: 4,
        }
    }
}

/// One quarantined record: what it was, where it was headed and why it
/// never produced a prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetter {
    /// Shard that quarantined the record.
    pub shard: usize,
    /// Originating sensor.
    pub sensor_id: Arc<str>,
    /// The sensor's per-handle sequence number.
    pub seq: u64,
    /// The record itself (kept for offline triage / replay).
    pub record: CsiRecord,
    /// Why it was quarantined (panic message or validation failure).
    pub reason: Arc<str>,
}

/// Bounded ring of quarantined records. Eviction never loses *count*:
/// `total` is exact even when entries age out of the buffer.
#[derive(Debug)]
pub(crate) struct DeadLetterBuffer {
    capacity: usize,
    entries: Mutex<VecDeque<DeadLetter>>,
    total: AtomicU64,
    evicted: AtomicU64,
}

impl DeadLetterBuffer {
    fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: Mutex::new(VecDeque::new()),
            total: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    fn push(&self, letter: DeadLetter) {
        // lint:allow(panic, reason = "poison propagation: the dead-letter buffer is itself fault-tolerance state; serving it torn would hide lost records")
        let mut entries = self.entries.lock().expect("dead-letter poisoned");
        if entries.len() >= self.capacity {
            entries.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        entries.push_back(letter);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    pub(crate) fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    pub(crate) fn depth(&self) -> usize {
        // lint:allow(panic, reason = "poison propagation: the dead-letter buffer is itself fault-tolerance state; serving it torn would hide lost records")
        self.entries.lock().expect("dead-letter poisoned").len()
    }

    pub(crate) fn snapshot(&self) -> Vec<DeadLetter> {
        self.entries
            .lock()
            // lint:allow(panic, reason = "poison propagation: the dead-letter buffer is itself fault-tolerance state; serving it torn would hide lost records")
            .expect("dead-letter poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

/// Supervised panic messages kept for the report (bounded so a
/// crash-looping shard cannot grow memory without bound).
const PANIC_LOG_CAP: usize = 32;

/// Shared supervision state: restart counters, the dead-letter buffer
/// and the panic log. One instance per runtime, `Arc`-shared into
/// every worker and the trainer.
#[derive(Debug)]
pub(crate) struct SupervisorState {
    shard_restarts: Vec<AtomicU64>,
    trainer_restarts: AtomicU64,
    trainer_poisoned: AtomicU64,
    panics: Mutex<Vec<String>>,
    pub(crate) dead_letter: DeadLetterBuffer,
}

impl SupervisorState {
    pub(crate) fn new(n_shards: usize, config: &SupervisorConfig) -> Self {
        Self {
            shard_restarts: (0..n_shards).map(|_| AtomicU64::new(0)).collect(),
            trainer_restarts: AtomicU64::new(0),
            trainer_poisoned: AtomicU64::new(0),
            panics: Mutex::new(Vec::new()),
            dead_letter: DeadLetterBuffer::new(config.dead_letter_capacity),
        }
    }

    /// Records a supervised panic and returns the shard's new count.
    pub(crate) fn record_shard_panic(&self, shard: usize, message: &str) -> u64 {
        self.log_panic(format!("shard {shard}: {message}"));
        // lint:allow(index, reason = "shard < shard count by construction: the supervisor allocates one counter per worker shard at startup")
        self.shard_restarts[shard].fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Records a supervised trainer panic and returns the new count.
    pub(crate) fn record_trainer_panic(&self, message: &str) -> u64 {
        self.log_panic(format!("trainer: {message}"));
        // Exactly the record being observed at panic time is lost.
        self.trainer_poisoned.fetch_add(1, Ordering::Relaxed);
        self.trainer_restarts.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub(crate) fn log_panic(&self, message: String) {
        // lint:allow(panic, reason = "poison propagation: the panic log is only written by supervisors; a poisoned log means supervision itself is broken")
        let mut panics = self.panics.lock().expect("panic log poisoned");
        if panics.len() < PANIC_LOG_CAP {
            panics.push(message);
        }
    }

    /// Quarantines a batch of jobs with a shared reason.
    pub(crate) fn quarantine(&self, shard: usize, jobs: Vec<Job>, reason: &str) -> u64 {
        let reason: Arc<str> = Arc::from(reason);
        let n = jobs.len() as u64;
        for job in jobs {
            self.dead_letter.push(DeadLetter {
                shard,
                sensor_id: job.sensor_id,
                seq: job.seq,
                record: job.record,
                reason: Arc::clone(&reason),
            });
        }
        n
    }

    pub(crate) fn shard_restarts(&self) -> Vec<u64> {
        self.shard_restarts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    pub(crate) fn trainer_restarts(&self) -> u64 {
        self.trainer_restarts.load(Ordering::Relaxed)
    }

    pub(crate) fn trainer_poisoned(&self) -> u64 {
        self.trainer_poisoned.load(Ordering::Relaxed)
    }

    pub(crate) fn panic_log(&self) -> Vec<String> {
        // lint:allow(panic, reason = "poison propagation: the panic log is only written by supervisors; a poisoned log means supervision itself is broken")
        self.panics.lock().expect("panic log poisoned").clone()
    }
}

/// Fault-tolerance section of the [`ServeReport`](crate::runtime::ServeReport).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Supervised panics per shard (a shard respawns after each panic
    /// up to `max_restarts_per_shard`, then fails closed).
    pub shard_restarts: Vec<u64>,
    /// Supervised trainer panics (each falls back to the last
    /// published snapshot).
    pub trainer_restarts: u64,
    /// Records quarantined by the workers: non-finite inputs, batches
    /// in flight during a panic, and queue remnants of a failed shard.
    pub poisoned_records: u64,
    /// Labelled records the trainer lost to panics (inference for
    /// those records was unaffected).
    pub trainer_poisoned: u64,
    /// Dead-letter entries evicted by the capacity bound (still part
    /// of `poisoned_records`).
    pub dead_letters_evicted: u64,
    /// Surviving dead-letter entries at shutdown.
    pub dead_letters: Vec<DeadLetter>,
    /// Messages of supervised panics and checkpoint failures
    /// (bounded log).
    pub panics: Vec<String>,
    /// Thread-join failures at shutdown — panics that escaped
    /// supervision entirely. Always 0 unless the supervisor itself is
    /// broken; surfaced precisely so that bug cannot hide.
    pub uncontained_panics: u64,
    /// Checkpoints written (periodic + final).
    pub checkpoints_written: u64,
    /// Checkpoint attempts that failed (I/O error or a non-finite
    /// model refused by `save_detector_atomic`).
    pub checkpoint_failures: u64,
    /// Records refused at the transport boundary (`RejectNewest`
    /// shard queues surfaced to wire clients as NACK frames). Always 0
    /// for in-process runs; filled by the `occusense-wire` gateway via
    /// [`wire_stats`](crate::runtime::wire_stats).
    pub transport_rejections: u64,
    /// Transport-level timeouts that cost traffic: handshakes that
    /// never completed and sends abandoned at the write timeout.
    pub transport_timeouts: u64,
    /// Connection handlers that panicked and were contained by the
    /// gateway: the connection fails closed, its in-flight records are
    /// re-counted as shed, and the rest of the fleet keeps serving.
    /// Always 0 for in-process runs.
    pub connection_panics: u64,
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Whether a record can be scored at all: any non-finite field would
/// propagate NaN through standardisation and the forward pass and come
/// out as a garbage "prediction". Such records are quarantined instead.
pub(crate) fn is_scorable(record: &CsiRecord) -> bool {
    record.timestamp_s.is_finite()
        && record.temperature_c.is_finite()
        && record.humidity_pct.is_finite()
        && record.csi.iter().all(|a| a.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seq: u64) -> Job {
        Job {
            sensor_id: Arc::from("s"),
            seq,
            record: CsiRecord::new(seq as f64, [0.01; 64], 21.0, 40.0, 0),
            label: None,
            enqueued_at: std::time::Instant::now(),
        }
    }

    #[test]
    fn dead_letter_buffer_evicts_but_never_miscounts() {
        let state = SupervisorState::new(
            1,
            &SupervisorConfig {
                dead_letter_capacity: 3,
                ..SupervisorConfig::default()
            },
        );
        assert_eq!(state.quarantine(0, (0..5).map(job).collect(), "test"), 5);
        assert_eq!(state.dead_letter.total(), 5);
        assert_eq!(state.dead_letter.evicted(), 2);
        assert_eq!(state.dead_letter.depth(), 3);
        let kept: Vec<u64> = state.dead_letter.snapshot().iter().map(|d| d.seq).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert!(state
            .dead_letter
            .snapshot()
            .iter()
            .all(|d| d.reason.as_ref() == "test"));
    }

    #[test]
    fn restart_counters_are_per_shard() {
        let state = SupervisorState::new(3, &SupervisorConfig::default());
        assert_eq!(state.record_shard_panic(1, "boom"), 1);
        assert_eq!(state.record_shard_panic(1, "boom again"), 2);
        assert_eq!(state.record_shard_panic(2, "other"), 1);
        assert_eq!(state.shard_restarts(), vec![0, 2, 1]);
        assert_eq!(state.panic_log().len(), 3);
        assert!(state.panic_log()[0].contains("shard 1"));
    }

    #[test]
    fn non_finite_records_are_not_scorable() {
        let good = CsiRecord::new(1.0, [0.5; 64], 20.0, 45.0, 1);
        assert!(is_scorable(&good));
        let mut nan_csi = good;
        nan_csi.csi[7] = f64::NAN;
        assert!(!is_scorable(&nan_csi));
        let mut inf_temp = good;
        inf_temp.temperature_c = f64::INFINITY;
        assert!(!is_scorable(&inf_temp));
        let mut nan_ts = good;
        nan_ts.timestamp_s = f64::NAN;
        assert!(!is_scorable(&nan_ts));
    }

    #[test]
    fn panic_messages_extract_both_payload_kinds() {
        let caught = std::panic::catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "static str");
        let n = 7;
        let caught = std::panic::catch_unwind(move || panic!("formatted {n}")).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "formatted 7");
    }
}
