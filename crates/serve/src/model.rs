//! Versioned hot model swap.
//!
//! The trainer thread keeps learning on its own [`OnlineDetector`]
//! (`occusense_core::online`) and periodically publishes an immutable
//! snapshot here; workers re-read the slot between micro-batches, so a
//! swap never interrupts an in-flight batch and the inference path
//! never blocks on training. The slot is a single `RwLock<Arc<_>>`
//! touched once per *batch* (not per record), so contention is
//! negligible at any realistic batch size.

use occusense_core::detector::OccupancyDetector;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// An immutable, versioned model the workers score against.
#[derive(Debug)]
pub struct ModelSnapshot {
    /// Monotone publication number (the boot model is version 1).
    pub version: u64,
    /// The frozen detector.
    pub detector: OccupancyDetector,
}

/// The swap point between the trainer and the worker shards.
#[derive(Debug)]
pub struct ModelHandle {
    slot: RwLock<Arc<ModelSnapshot>>,
    next_version: AtomicU64,
}

impl ModelHandle {
    /// Installs the boot model as version 1.
    pub fn new(detector: OccupancyDetector) -> Self {
        Self {
            slot: RwLock::new(Arc::new(ModelSnapshot {
                version: 1,
                detector,
            })),
            next_version: AtomicU64::new(2),
        }
    }

    /// The currently published snapshot (cheap: one `Arc` clone under a
    /// read lock).
    pub fn current(&self) -> Arc<ModelSnapshot> {
        // lint:allow(panic, reason = "poison propagation: the write side only swaps an Arc, but a poisoned slot still signals a publisher panic worth surfacing")
        Arc::clone(&self.slot.read().expect("model slot poisoned"))
    }

    /// The version of the currently published snapshot.
    pub fn version(&self) -> u64 {
        self.current().version
    }

    /// Publishes a new model, returning its version.
    pub fn publish(&self, detector: OccupancyDetector) -> u64 {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let snapshot = Arc::new(ModelSnapshot { version, detector });
        // lint:allow(panic, reason = "poison propagation: the write side only swaps an Arc, but a poisoned slot still signals a publisher panic worth surfacing")
        *self.slot.write().expect("model slot poisoned") = snapshot;
        version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occusense_core::detector::{DetectorConfig, ModelKind};
    use occusense_sim::{simulate, ScenarioConfig};

    fn tiny_detector(seed: u64) -> OccupancyDetector {
        let ds = simulate(&ScenarioConfig::quick(400.0, seed));
        OccupancyDetector::train(
            &ds,
            &DetectorConfig {
                model: ModelKind::Mlp,
                mlp_epochs: 1,
                seed,
                ..DetectorConfig::default()
            },
        )
    }

    #[test]
    fn publish_bumps_version_and_swaps_atomically() {
        let handle = ModelHandle::new(tiny_detector(1));
        assert_eq!(handle.version(), 1);
        let before = handle.current();
        let v2 = handle.publish(tiny_detector(2));
        assert_eq!(v2, 2);
        assert_eq!(handle.version(), 2);
        // Workers holding the old Arc keep a consistent model.
        assert_eq!(before.version, 1);
        assert_eq!(handle.publish(tiny_detector(3)), 3);
    }
}
