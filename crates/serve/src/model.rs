//! Versioned hot model swap.
//!
//! The trainer thread keeps learning on its own [`OnlineDetector`]
//! (`occusense_core::online`) and periodically publishes an immutable
//! snapshot here; workers re-read the slot between micro-batches, so a
//! swap never interrupts an in-flight batch and the inference path
//! never blocks on training. The slot is a single `RwLock<Arc<_>>`
//! touched once per *batch* (not per record), so contention is
//! negligible at any realistic batch size.
//!
//! A snapshot serves either the per-frame detector or the temporal
//! (GRU) sequence model — [`ServedModel`]. A runtime is booted in one
//! mode and stays there: the frame trainer only publishes frame
//! snapshots, and temporal swaps go through
//! [`ModelHandle::publish_temporal`]. Workers detect the (impossible
//! by construction, but cheap to check) kind flip defensively and
//! quarantine rather than score against mismatched state.

use occusense_core::detector::OccupancyDetector;
use occusense_core::temporal::TemporalDetector;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// What a snapshot scores with: the paper's per-frame MLP pipeline or
/// the stateful GRU sequence model.
///
/// The variants differ in size (the GRU carries packed gate weights),
/// but exactly one instance lives inside each `Arc`'d snapshot — the
/// enum is never stored in bulk, so boxing would only add a pointer
/// chase to the scoring hot path.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum ServedModel {
    /// Stateless per-record scoring ([`OccupancyDetector`]).
    Frame(OccupancyDetector),
    /// Stateful per-sensor sequence scoring ([`TemporalDetector`]);
    /// workers carry one hidden row per sensor across batches.
    Temporal(TemporalDetector),
}

/// An immutable, versioned model the workers score against.
#[derive(Debug)]
pub struct ModelSnapshot {
    /// Monotone publication number (the boot model is version 1).
    pub version: u64,
    /// The frozen model.
    pub model: ServedModel,
}

impl ModelSnapshot {
    /// The frame detector, when this snapshot serves one.
    pub fn frame(&self) -> Option<&OccupancyDetector> {
        match &self.model {
            ServedModel::Frame(d) => Some(d),
            ServedModel::Temporal(_) => None,
        }
    }

    /// The temporal detector, when this snapshot serves one.
    pub fn temporal(&self) -> Option<&TemporalDetector> {
        match &self.model {
            ServedModel::Temporal(t) => Some(t),
            ServedModel::Frame(_) => None,
        }
    }
}

/// The swap point between the trainer and the worker shards.
#[derive(Debug)]
pub struct ModelHandle {
    slot: RwLock<Arc<ModelSnapshot>>,
    next_version: AtomicU64,
}

impl ModelHandle {
    /// Installs the boot frame model as version 1.
    pub fn new(detector: OccupancyDetector) -> Self {
        Self::boot(ServedModel::Frame(detector))
    }

    /// Installs the boot temporal model as version 1.
    pub fn new_temporal(detector: TemporalDetector) -> Self {
        Self::boot(ServedModel::Temporal(detector))
    }

    fn boot(model: ServedModel) -> Self {
        Self {
            slot: RwLock::new(Arc::new(ModelSnapshot { version: 1, model })),
            next_version: AtomicU64::new(2),
        }
    }

    /// The currently published snapshot (cheap: one `Arc` clone under a
    /// read lock).
    pub fn current(&self) -> Arc<ModelSnapshot> {
        // lint:allow(panic, reason = "poison propagation: the write side only swaps an Arc, but a poisoned slot still signals a publisher panic worth surfacing")
        Arc::clone(&self.slot.read().expect("model slot poisoned"))
    }

    /// The version of the currently published snapshot.
    pub fn version(&self) -> u64 {
        self.current().version
    }

    /// Publishes a new frame model, returning its version.
    pub fn publish(&self, detector: OccupancyDetector) -> u64 {
        self.swap(ServedModel::Frame(detector))
    }

    /// Publishes a new temporal model, returning its version. Workers
    /// zero-reset every sensor's hidden state the first time they score
    /// it against the new version.
    pub fn publish_temporal(&self, detector: TemporalDetector) -> u64 {
        self.swap(ServedModel::Temporal(detector))
    }

    fn swap(&self, model: ServedModel) -> u64 {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let snapshot = Arc::new(ModelSnapshot { version, model });
        // lint:allow(panic, reason = "poison propagation: the write side only swaps an Arc, but a poisoned slot still signals a publisher panic worth surfacing")
        *self.slot.write().expect("model slot poisoned") = snapshot;
        version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occusense_core::detector::{DetectorConfig, ModelKind};
    use occusense_core::temporal::TemporalConfig;
    use occusense_sim::{simulate, ScenarioConfig};

    fn tiny_detector(seed: u64) -> OccupancyDetector {
        let ds = simulate(&ScenarioConfig::quick(400.0, seed));
        OccupancyDetector::train(
            &ds,
            &DetectorConfig {
                model: ModelKind::Mlp,
                mlp_epochs: 1,
                seed,
                ..DetectorConfig::default()
            },
        )
    }

    #[test]
    fn publish_bumps_version_and_swaps_atomically() {
        let handle = ModelHandle::new(tiny_detector(1));
        assert_eq!(handle.version(), 1);
        let before = handle.current();
        let v2 = handle.publish(tiny_detector(2));
        assert_eq!(v2, 2);
        assert_eq!(handle.version(), 2);
        // Workers holding the old Arc keep a consistent model.
        assert_eq!(before.version, 1);
        assert_eq!(handle.publish(tiny_detector(3)), 3);
    }

    #[test]
    fn temporal_snapshots_expose_the_right_kind() {
        let ds = simulate(&ScenarioConfig::quick(600.0, 5));
        let temporal = TemporalDetector::train(
            &ds,
            &TemporalConfig {
                window: 8,
                stride: 4,
                hidden: 8,
                epochs: 1,
                ..TemporalConfig::default()
            },
        );
        let handle = ModelHandle::new_temporal(temporal.clone());
        let snap = handle.current();
        assert_eq!(snap.version, 1);
        assert!(snap.temporal().is_some());
        assert!(snap.frame().is_none());
        assert_eq!(handle.publish_temporal(temporal), 2);
        assert_eq!(handle.version(), 2);
        let frame = ModelHandle::new(tiny_detector(9)).current();
        assert!(frame.frame().is_some());
        assert!(frame.temporal().is_none());
    }
}
