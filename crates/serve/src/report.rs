//! A process-boundary codec for [`ServeReport`]: the fleet controller
//! supervises worker *processes*, and each worker's final report must
//! cross that boundary intact for the fleet-level accounting identity
//! to close (`occusense-fleet` sums `unaccounted_records()` across
//! workers).
//!
//! The format is a versioned, line-oriented text encoding — one
//! `key value…` line per field, strict field order, `f64`s as the hex
//! of [`f64::to_bits`] so throughput survives bit-for-bit. It is
//! *accounting-complete but diagnostically lossy*: every numeric
//! counter that [`ServeReport::unaccounted_records`] or a fleet
//! roll-up reads round-trips exactly, and panic messages travel
//! escaped; the dead-letter record bodies and the rendered
//! `metrics_text` stay in the worker process (their *counts* are in
//! `poisoned_records` / `dead_letters_evicted`, which do travel).
//! Canonicality therefore holds on the encoded form:
//! `encode(decode(s)) == s` for every accepted `s`.

use crate::queue::QueueCounters;
use crate::runtime::{ServeReport, WireCounters};
use crate::supervisor::FaultReport;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// First line of every encoded report; bumped on layout changes so a
/// fleet controller never mis-sums a foreign revision.
pub const REPORT_WIRE_VERSION: &str = "servereport v1";

/// Why an encoded report was refused. Typed so the fleet supervisor
/// can distinguish a torn pipe (a killed worker mid-write) from a
/// revision mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportParseError {
    /// The first line was not [`REPORT_WIRE_VERSION`].
    BadVersion {
        /// The first line found.
        found: String,
    },
    /// A field line was missing, out of order, or malformed.
    BadField {
        /// The key the decoder expected next.
        expected: &'static str,
        /// The line found (empty when the input ended).
        found: String,
    },
    /// A numeric token failed to parse.
    BadNumber {
        /// The field being decoded.
        field: &'static str,
        /// The offending token.
        token: String,
    },
    /// No `end` terminator — the classic torn write of a worker killed
    /// mid-report.
    Truncated,
}

impl fmt::Display for ReportParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportParseError::BadVersion { found } => {
                write!(f, "report version mismatch: expected {REPORT_WIRE_VERSION:?}, found {found:?}")
            }
            ReportParseError::BadField { expected, found } => {
                write!(f, "expected report field {expected:?}, found line {found:?}")
            }
            ReportParseError::BadNumber { field, token } => {
                write!(f, "bad number {token:?} in report field {field:?}")
            }
            ReportParseError::Truncated => {
                write!(f, "report ended without the `end` terminator (torn write?)")
            }
        }
    }
}

impl Error for ReportParseError {}

/// Escapes a free-form string onto one line: `\` → `\\`, newline →
/// `\n`, carriage return → `\r`.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            // A dangling or unknown escape decodes literally; encode
            // never produces one, so canonicality is unaffected.
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

fn queue_line(out: &mut String, key: &str, q: &QueueCounters) {
    out.push_str(&format!(
        "{key} {} {} {} {} {} {}\n",
        q.pushed, q.popped, q.dropped, q.rejected, q.depth, q.high_watermark
    ));
}

impl ServeReport {
    /// Encodes this report for transport across a process boundary
    /// (see the module docs for what travels and what stays behind).
    pub fn encode_wire(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(REPORT_WIRE_VERSION);
        out.push('\n');
        out.push_str(&format!("tenant {}\n", escape(&self.tenant)));
        out.push_str(&format!("elapsed_ns {}\n", self.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64));
        out.push_str(&format!("records_served {}\n", self.records_served));
        out.push_str(&format!("throughput_rps {:016x}\n", self.throughput_rps.to_bits()));
        out.push_str(&format!("latency_p50_ns {}\n", self.latency_p50_ns));
        out.push_str(&format!("latency_p95_ns {}\n", self.latency_p95_ns));
        out.push_str(&format!("latency_p99_ns {}\n", self.latency_p99_ns));
        out.push_str(&format!("model_version {}\n", self.model_version));
        out.push_str(&format!("model_publishes {}\n", self.model_publishes));
        for q in &self.shard_queues {
            queue_line(&mut out, "shard", q);
        }
        if let Some(t) = &self.trainer_queue {
            queue_line(&mut out, "trainer_queue", t);
        }
        let fr = &self.faults;
        out.push_str("shard_restarts");
        for r in &fr.shard_restarts {
            out.push_str(&format!(" {r}"));
        }
        out.push('\n');
        out.push_str(&format!("trainer_restarts {}\n", fr.trainer_restarts));
        out.push_str(&format!("poisoned_records {}\n", fr.poisoned_records));
        out.push_str(&format!("trainer_poisoned {}\n", fr.trainer_poisoned));
        out.push_str(&format!("dead_letters_evicted {}\n", fr.dead_letters_evicted));
        out.push_str(&format!("uncontained_panics {}\n", fr.uncontained_panics));
        out.push_str(&format!("checkpoints_written {}\n", fr.checkpoints_written));
        out.push_str(&format!("checkpoint_failures {}\n", fr.checkpoint_failures));
        out.push_str(&format!("transport_rejections {}\n", fr.transport_rejections));
        out.push_str(&format!("transport_timeouts {}\n", fr.transport_timeouts));
        out.push_str(&format!("fault_connection_panics {}\n", fr.connection_panics));
        for p in &fr.panics {
            out.push_str(&format!("panic {}\n", escape(p)));
        }
        let w = &self.wire;
        out.push_str(&format!(
            "wire {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
            w.connections,
            w.frames_received,
            w.records_decoded,
            w.records_ingested,
            w.records_rejected,
            w.records_shed,
            w.malformed_frames,
            w.predictions_routed,
            w.predictions_sent,
            w.predictions_unrouted,
            w.connection_panics,
            w.lock_recoveries,
            w.thread_panics,
        ));
        out.push_str("end\n");
        out
    }

    /// Decodes a report previously written by [`encode_wire`].
    ///
    /// The dead-letter bodies and `metrics_text` do not travel: they
    /// decode as empty (their counts are in the numeric fields).
    ///
    /// # Errors
    ///
    /// [`ReportParseError`]; a worker killed mid-write surfaces as
    /// [`ReportParseError::Truncated`], never a half-summed report.
    ///
    /// [`encode_wire`]: Self::encode_wire
    pub fn decode_wire(text: &str) -> Result<Self, ReportParseError> {
        let mut lines = text.lines().peekable();
        let version = lines.next().unwrap_or_default();
        if version != REPORT_WIRE_VERSION {
            return Err(ReportParseError::BadVersion {
                found: version.to_string(),
            });
        }

        fn split_kv<'a>(
            line: &'a str,
            expected: &'static str,
        ) -> Result<&'a str, ReportParseError> {
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            if key != expected {
                return Err(ReportParseError::BadField {
                    expected,
                    found: line.to_string(),
                });
            }
            Ok(rest)
        }

        fn next_field<'a, I: Iterator<Item = &'a str>>(
            lines: &mut I,
            expected: &'static str,
        ) -> Result<&'a str, ReportParseError> {
            let line = lines.next().ok_or(ReportParseError::BadField {
                expected,
                found: String::new(),
            })?;
            split_kv(line, expected)
        }

        fn num(field: &'static str, token: &str) -> Result<u64, ReportParseError> {
            token.parse().map_err(|_| ReportParseError::BadNumber {
                field,
                token: token.to_string(),
            })
        }

        fn queue_counters(
            field: &'static str,
            rest: &str,
        ) -> Result<QueueCounters, ReportParseError> {
            let mut it = rest.split(' ');
            let mut take = || -> Result<u64, ReportParseError> {
                num(field, it.next().unwrap_or_default())
            };
            let q = QueueCounters {
                pushed: take()?,
                popped: take()?,
                dropped: take()?,
                rejected: take()?,
                depth: take()?,
                high_watermark: take()?,
            };
            match it.next() {
                None => Ok(q),
                Some(extra) => Err(ReportParseError::BadNumber {
                    field,
                    token: extra.to_string(),
                }),
            }
        }

        let tenant = unescape(next_field(&mut lines, "tenant")?);
        let elapsed = Duration::from_nanos(num(
            "elapsed_ns",
            next_field(&mut lines, "elapsed_ns")?,
        )?);
        let records_served = num(
            "records_served",
            next_field(&mut lines, "records_served")?,
        )?;
        let rps_raw = next_field(&mut lines, "throughput_rps")?;
        let throughput_rps = f64::from_bits(u64::from_str_radix(rps_raw, 16).map_err(|_| {
            ReportParseError::BadNumber {
                field: "throughput_rps",
                token: rps_raw.to_string(),
            }
        })?);
        let latency_p50_ns = num(
            "latency_p50_ns",
            next_field(&mut lines, "latency_p50_ns")?,
        )?;
        let latency_p95_ns = num(
            "latency_p95_ns",
            next_field(&mut lines, "latency_p95_ns")?,
        )?;
        let latency_p99_ns = num(
            "latency_p99_ns",
            next_field(&mut lines, "latency_p99_ns")?,
        )?;
        let model_version = num("model_version", next_field(&mut lines, "model_version")?)?;
        let model_publishes = num(
            "model_publishes",
            next_field(&mut lines, "model_publishes")?,
        )?;

        let mut shard_queues = Vec::new();
        while let Some(line) = lines.peek() {
            let Some(rest) = line.strip_prefix("shard ") else {
                break;
            };
            shard_queues.push(queue_counters("shard", rest)?);
            lines.next();
        }
        let mut trainer_queue = None;
        if let Some(line) = lines.peek() {
            if let Some(rest) = line.strip_prefix("trainer_queue ") {
                trainer_queue = Some(queue_counters("trainer_queue", rest)?);
                lines.next();
            }
        }

        let restarts_line = lines.next().ok_or(ReportParseError::BadField {
            expected: "shard_restarts",
            found: String::new(),
        })?;
        if restarts_line != "shard_restarts" && !restarts_line.starts_with("shard_restarts ") {
            return Err(ReportParseError::BadField {
                expected: "shard_restarts",
                found: restarts_line.to_string(),
            });
        }
        let mut shard_restarts = Vec::new();
        for token in restarts_line
            .strip_prefix("shard_restarts")
            .unwrap_or_default()
            .split(' ')
            .filter(|t| !t.is_empty())
        {
            shard_restarts.push(num("shard_restarts", token)?);
        }

        let trainer_restarts = num(
            "trainer_restarts",
            next_field(&mut lines, "trainer_restarts")?,
        )?;
        let poisoned_records = num(
            "poisoned_records",
            next_field(&mut lines, "poisoned_records")?,
        )?;
        let trainer_poisoned = num(
            "trainer_poisoned",
            next_field(&mut lines, "trainer_poisoned")?,
        )?;
        let dead_letters_evicted = num(
            "dead_letters_evicted",
            next_field(&mut lines, "dead_letters_evicted")?,
        )?;
        let uncontained_panics = num(
            "uncontained_panics",
            next_field(&mut lines, "uncontained_panics")?,
        )?;
        let checkpoints_written = num(
            "checkpoints_written",
            next_field(&mut lines, "checkpoints_written")?,
        )?;
        let checkpoint_failures = num(
            "checkpoint_failures",
            next_field(&mut lines, "checkpoint_failures")?,
        )?;
        let transport_rejections = num(
            "transport_rejections",
            next_field(&mut lines, "transport_rejections")?,
        )?;
        let transport_timeouts = num(
            "transport_timeouts",
            next_field(&mut lines, "transport_timeouts")?,
        )?;
        let fault_connection_panics = num(
            "fault_connection_panics",
            next_field(&mut lines, "fault_connection_panics")?,
        )?;

        let mut panics = Vec::new();
        while let Some(line) = lines.peek() {
            let Some(rest) = line.strip_prefix("panic ") else {
                break;
            };
            panics.push(unescape(rest));
            lines.next();
        }

        let wire_rest = next_field(&mut lines, "wire")?;
        let mut it = wire_rest.split(' ');
        let mut take = || -> Result<u64, ReportParseError> {
            num("wire", it.next().unwrap_or_default())
        };
        let wire = WireCounters {
            connections: take()?,
            frames_received: take()?,
            records_decoded: take()?,
            records_ingested: take()?,
            records_rejected: take()?,
            records_shed: take()?,
            malformed_frames: take()?,
            predictions_routed: take()?,
            predictions_sent: take()?,
            predictions_unrouted: take()?,
            connection_panics: take()?,
            lock_recoveries: take()?,
            thread_panics: take()?,
        };
        if let Some(extra) = it.next() {
            return Err(ReportParseError::BadNumber {
                field: "wire",
                token: extra.to_string(),
            });
        }

        match lines.next() {
            Some("end") => {}
            Some(other) => {
                return Err(ReportParseError::BadField {
                    expected: "end",
                    found: other.to_string(),
                })
            }
            None => return Err(ReportParseError::Truncated),
        }

        Ok(ServeReport {
            tenant,
            elapsed,
            records_served,
            throughput_rps,
            latency_p50_ns,
            latency_p95_ns,
            latency_p99_ns,
            shard_queues,
            trainer_queue,
            model_version,
            model_publishes,
            faults: FaultReport {
                shard_restarts,
                trainer_restarts,
                poisoned_records,
                trainer_poisoned,
                dead_letters_evicted,
                dead_letters: Vec::new(),
                panics,
                uncontained_panics,
                checkpoints_written,
                checkpoint_failures,
                transport_rejections,
                transport_timeouts,
                connection_panics: fault_connection_panics,
            },
            wire,
            metrics_text: String::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ServeReport {
        ServeReport {
            tenant: "acme-labs".into(),
            elapsed: Duration::from_nanos(1_234_567_891),
            records_served: 4_000,
            throughput_rps: 3240.125,
            latency_p50_ns: 52_000,
            latency_p95_ns: 210_000,
            latency_p99_ns: 612_345,
            shard_queues: vec![
                QueueCounters {
                    pushed: 2_000,
                    popped: 1_990,
                    dropped: 7,
                    rejected: 3,
                    depth: 3,
                    high_watermark: 512,
                },
                QueueCounters {
                    pushed: 2_010,
                    popped: 2_010,
                    dropped: 0,
                    rejected: 0,
                    depth: 0,
                    high_watermark: 96,
                },
            ],
            trainer_queue: Some(QueueCounters {
                pushed: 100,
                popped: 98,
                dropped: 2,
                rejected: 0,
                depth: 0,
                high_watermark: 40,
            }),
            model_version: 3,
            model_publishes: 2,
            faults: FaultReport {
                shard_restarts: vec![1, 0],
                trainer_restarts: 1,
                poisoned_records: 10,
                trainer_poisoned: 2,
                dead_letters_evicted: 4,
                dead_letters: Vec::new(),
                panics: vec![
                    "worker 0 panicked: boom".into(),
                    "multi\nline\\payload".into(),
                ],
                uncontained_panics: 0,
                checkpoints_written: 5,
                checkpoint_failures: 1,
                transport_rejections: 3,
                transport_timeouts: 1,
                connection_panics: 1,
            },
            wire: WireCounters {
                connections: 6,
                frames_received: 900,
                records_decoded: 4_020,
                records_ingested: 4_010,
                records_rejected: 3,
                records_shed: 7,
                malformed_frames: 1,
                predictions_routed: 4_000,
                predictions_sent: 3_998,
                predictions_unrouted: 2,
                connection_panics: 1,
                lock_recoveries: 0,
                thread_panics: 0,
            },
            metrics_text: String::new(),
        }
    }

    #[test]
    fn every_accounting_field_round_trips_exactly() {
        let report = sample_report();
        let encoded = report.encode_wire();
        let back = ServeReport::decode_wire(&encoded).expect("decode");

        assert_eq!(back.tenant, report.tenant);
        assert_eq!(back.elapsed, report.elapsed);
        assert_eq!(back.records_served, report.records_served);
        assert_eq!(
            back.throughput_rps.to_bits(),
            report.throughput_rps.to_bits(),
            "f64 must survive bit-for-bit"
        );
        assert_eq!(back.latency_p50_ns, report.latency_p50_ns);
        assert_eq!(back.latency_p95_ns, report.latency_p95_ns);
        assert_eq!(back.latency_p99_ns, report.latency_p99_ns);
        assert_eq!(back.shard_queues, report.shard_queues);
        assert_eq!(back.trainer_queue, report.trainer_queue);
        assert_eq!(back.model_version, report.model_version);
        assert_eq!(back.model_publishes, report.model_publishes);
        assert_eq!(back.faults.shard_restarts, report.faults.shard_restarts);
        assert_eq!(back.faults.panics, report.faults.panics);
        assert_eq!(back.faults.poisoned_records, report.faults.poisoned_records);
        assert_eq!(back.wire, report.wire);
        assert_eq!(
            back.unaccounted_records(),
            report.unaccounted_records(),
            "the identity must be computable on the decoded side"
        );

        // Canonical on the encoded form.
        assert_eq!(back.encode_wire(), encoded);
    }

    #[test]
    fn minimal_untenanted_report_round_trips() {
        let mut report = sample_report();
        report.tenant = String::new();
        report.trainer_queue = None;
        report.shard_queues.clear();
        report.faults.shard_restarts.clear();
        report.faults.panics.clear();
        let encoded = report.encode_wire();
        let back = ServeReport::decode_wire(&encoded).expect("decode");
        assert_eq!(back.tenant, "");
        assert_eq!(back.trainer_queue, None);
        assert!(back.shard_queues.is_empty());
        assert!(back.faults.shard_restarts.is_empty());
        assert_eq!(back.encode_wire(), encoded);
    }

    #[test]
    fn every_truncation_is_refused_never_half_summed() {
        let encoded = sample_report().encode_wire();
        // Cut at every line boundary short of the full report.
        let lines: Vec<&str> = encoded.lines().collect();
        for keep in 0..lines.len() {
            let partial = lines[..keep]
                .iter()
                .map(|l| format!("{l}\n"))
                .collect::<String>();
            assert!(
                ServeReport::decode_wire(&partial).is_err(),
                "a report cut after {keep} lines must not decode"
            );
        }
    }

    #[test]
    fn version_and_field_refusals_are_typed() {
        let err = ServeReport::decode_wire("servereport v0\n").unwrap_err();
        assert_eq!(
            err,
            ReportParseError::BadVersion {
                found: "servereport v0".into()
            }
        );
        let garbled = sample_report()
            .encode_wire()
            .replace("records_served 4000", "records_served four");
        let err = ServeReport::decode_wire(&garbled).unwrap_err();
        assert_eq!(
            err,
            ReportParseError::BadNumber {
                field: "records_served",
                token: "four".into()
            }
        );
    }
}
