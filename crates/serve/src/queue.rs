//! Bounded ingestion queues with selectable backpressure.
//!
//! Every sensor's records enter the runtime through a
//! [`BoundedQueue`]; what happens when a queue is full is the
//! [`BackpressurePolicy`] — the knob that decides whether a slow shard
//! stalls its producers ([`Block`](BackpressurePolicy::Block)), sheds
//! its oldest samples ([`DropOldest`](BackpressurePolicy::DropOldest),
//! the right default for live sensing where fresh CSI supersedes
//! stale), or pushes the loss back to the caller
//! ([`RejectNewest`](BackpressurePolicy::RejectNewest)).
//!
//! Every queue keeps exact drop/occupancy counters; the runtime mirrors
//! them into the metrics registry.
//!
//! ## Poison-propagation policy
//!
//! Every `Mutex`/`Condvar` acquisition in this module is
//! `lock().expect("queue poisoned")` — **deliberately**. A poisoned
//! queue mutex means a producer or consumer panicked while holding the
//! lock, i.e. mid-mutation of `items` or the counters; silently
//! recovering the guard (`unwrap_or_else(|e| e.into_inner())`) would
//! let a half-updated queue keep serving records with corrupted
//! accounting, breaking the runtime invariant
//! `pushed = scored + quarantined + dropped`. Instead the panic is
//! *propagated* into whichever thread touches the queue next, where
//! the supervisor ([`crate::supervisor`]) catches it, quarantines the
//! in-flight batch, and restarts the shard on a fresh queue. Each
//! `expect` therefore carries a `lint:allow(panic, ...)` waiver rather
//! than being rewritten — the panic *is* the fault-tolerance signal.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// What [`BoundedQueue::push`] does when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Wait until a consumer makes room (lossless, producers stall).
    Block,
    /// Evict the oldest queued item to admit the new one (bounded
    /// staleness, producers never stall).
    #[default]
    DropOldest,
    /// Refuse the new item and hand it back to the producer.
    RejectNewest,
}

impl BackpressurePolicy {
    /// Parses the kebab-case CLI spelling (`block`, `drop-oldest`,
    /// `reject-newest`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "block" => Some(Self::Block),
            "drop-oldest" => Some(Self::DropOldest),
            "reject-newest" => Some(Self::RejectNewest),
            _ => None,
        }
    }
}

/// Why a push did not enqueue its item.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was full under [`BackpressurePolicy::RejectNewest`];
    /// the item is returned.
    Rejected(T),
    /// The queue was closed; the item is returned.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the item that was not enqueued.
    pub fn into_inner(self) -> T {
        match self {
            Self::Rejected(item) | Self::Closed(item) => item,
        }
    }
}

/// Why a [`try_push`](BoundedQueue::try_push) did not enqueue its
/// item. Distinct from [`PushError`] because a non-parking push has an
/// outcome a blocking push never reports: `Full` under
/// [`BackpressurePolicy::Block`], where `push` would have waited.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue was full under [`BackpressurePolicy::Block`]; a
    /// blocking `push` would have parked. Nothing was counted — the
    /// caller decides whether to retry, stash, or drop.
    Full(T),
    /// The queue was full under [`BackpressurePolicy::RejectNewest`];
    /// the rejection was counted.
    Rejected(T),
    /// The queue was closed.
    Closed(T),
}

impl<T> TryPushError<T> {
    /// Recovers the item that was not enqueued.
    pub fn into_inner(self) -> T {
        match self {
            Self::Full(item) | Self::Rejected(item) | Self::Closed(item) => item,
        }
    }
}

/// Outcome of a deadline-bounded pop.
#[derive(Debug, PartialEq, Eq)]
pub enum PopResult<T> {
    /// An item was dequeued.
    Item(T),
    /// The deadline passed with the queue empty.
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

/// Exact traffic counters of one queue (all monotone except `depth`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueCounters {
    /// Items accepted into the queue.
    pub pushed: u64,
    /// Items handed to consumers.
    pub popped: u64,
    /// Items evicted by [`BackpressurePolicy::DropOldest`].
    pub dropped: u64,
    /// Items refused by [`BackpressurePolicy::RejectNewest`].
    pub rejected: u64,
    /// Current occupancy.
    pub depth: u64,
    /// Highest occupancy ever observed.
    pub high_watermark: u64,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with a configurable full-queue policy.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    policy: BackpressurePolicy,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    pushed: AtomicU64,
    popped: AtomicU64,
    dropped: AtomicU64,
    rejected: AtomicU64,
    high_watermark: AtomicU64,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, policy: BackpressurePolicy) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            capacity,
            policy,
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            pushed: AtomicU64::new(0),
            popped: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            high_watermark: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured backpressure policy.
    pub fn policy(&self) -> BackpressurePolicy {
        self.policy
    }

    /// Enqueues an item, applying the backpressure policy when full.
    ///
    /// # Errors
    ///
    /// [`PushError::Rejected`] under `RejectNewest` with a full queue;
    /// [`PushError::Closed`] after [`close`](Self::close). Both return
    /// the item.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        // lint:allow(panic, reason = "poison propagation: see module doc — a poisoned queue must panic into the supervisor, not serve corrupted state")
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        while state.items.len() >= self.capacity {
            match self.policy {
                BackpressurePolicy::Block => {
                    // lint:allow(panic, reason = "poison propagation: see module doc")
                    state = self.not_full.wait(state).expect("queue poisoned");
                    if state.closed {
                        return Err(PushError::Closed(item));
                    }
                }
                BackpressurePolicy::DropOldest => {
                    state.items.pop_front();
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                BackpressurePolicy::RejectNewest => {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(PushError::Rejected(item));
                }
            }
        }
        state.items.push_back(item);
        self.pushed.fetch_add(1, Ordering::Relaxed);
        self.high_watermark
            .fetch_max(state.items.len() as u64, Ordering::Relaxed);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues, blocking until an item arrives or the queue is both
    /// closed and drained (`None`).
    pub fn pop(&self) -> Option<T> {
        // lint:allow(panic, reason = "poison propagation: see module doc — a poisoned queue must panic into the supervisor, not serve corrupted state")
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.popped.fetch_add(1, Ordering::Relaxed);
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            // lint:allow(panic, reason = "poison propagation: see module doc")
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Dequeues, giving up at `deadline` — the wait primitive of the
    /// micro-batcher's flush timer.
    pub fn pop_deadline(&self, deadline: Instant) -> PopResult<T> {
        // lint:allow(panic, reason = "poison propagation: see module doc — a poisoned queue must panic into the supervisor, not serve corrupted state")
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.popped.fetch_add(1, Ordering::Relaxed);
                drop(state);
                self.not_full.notify_one();
                return PopResult::Item(item);
            }
            if state.closed {
                return PopResult::Closed;
            }
            let now = Instant::now();
            let Some(wait) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return PopResult::TimedOut;
            };
            let (guard, timeout) = self
                .not_empty
                .wait_timeout(state, wait)
                // lint:allow(panic, reason = "poison propagation: see module doc")
                .expect("queue poisoned");
            state = guard;
            if timeout.timed_out() && state.items.is_empty() && !state.closed {
                return PopResult::TimedOut;
            }
        }
    }

    /// Non-blocking dequeue: `Item` when something was buffered,
    /// `TimedOut` when the queue is momentarily empty but still open
    /// (the readiness reactor's "would block"), `Closed` once the
    /// queue is both closed and drained. Never parks the caller.
    pub fn try_pop(&self) -> PopResult<T> {
        // lint:allow(panic, reason = "poison propagation: see module doc — a poisoned queue must panic into the supervisor, not serve corrupted state")
        let mut state = self.state.lock().expect("queue poisoned");
        if let Some(item) = state.items.pop_front() {
            self.popped.fetch_add(1, Ordering::Relaxed);
            drop(state);
            self.not_full.notify_one();
            return PopResult::Item(item);
        }
        if state.closed {
            PopResult::Closed
        } else {
            PopResult::TimedOut
        }
    }

    /// Non-parking enqueue: applies the same policy as
    /// [`push`](Self::push) except that a full queue under
    /// [`BackpressurePolicy::Block`] comes back as
    /// [`TryPushError::Full`] instead of parking the caller. This is
    /// the producer face for single-threaded event loops that are also
    /// the queue's consumer — a blocking push there would deadlock.
    ///
    /// # Errors
    ///
    /// [`TryPushError::Full`] (Block policy, queue full — uncounted),
    /// [`TryPushError::Rejected`] (RejectNewest, counted), or
    /// [`TryPushError::Closed`]. All return the item.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        // lint:allow(panic, reason = "poison propagation: see module doc — a poisoned queue must panic into the supervisor, not serve corrupted state")
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        while state.items.len() >= self.capacity {
            match self.policy {
                BackpressurePolicy::Block => return Err(TryPushError::Full(item)),
                BackpressurePolicy::DropOldest => {
                    state.items.pop_front();
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
                BackpressurePolicy::RejectNewest => {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(TryPushError::Rejected(item));
                }
            }
        }
        state.items.push_back(item);
        self.pushed.fetch_add(1, Ordering::Relaxed);
        self.high_watermark
            .fetch_max(state.items.len() as u64, Ordering::Relaxed);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Closes the queue: future pushes fail, consumers drain the
    /// remaining items and then observe end-of-stream.
    pub fn close(&self) {
        // lint:allow(panic, reason = "poison propagation: see module doc — a poisoned queue must panic into the supervisor, not serve corrupted state")
        let mut state = self.state.lock().expect("queue poisoned");
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        // lint:allow(panic, reason = "poison propagation: see module doc")
        self.state.lock().expect("queue poisoned").closed
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        // lint:allow(panic, reason = "poison propagation: see module doc")
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the traffic counters.
    pub fn counters(&self) -> QueueCounters {
        let depth = self.len() as u64;
        QueueCounters {
            pushed: self.pushed.load(Ordering::Relaxed),
            popped: self.popped.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            depth,
            high_watermark: self.high_watermark.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_within_capacity() {
        let q = BoundedQueue::new(8, BackpressurePolicy::Block);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        let c = q.counters();
        assert_eq!((c.pushed, c.popped, c.depth), (5, 5, 0));
        assert_eq!(c.high_watermark, 5);
    }

    #[test]
    fn drop_oldest_keeps_newest_and_counts_exactly() {
        let q = BoundedQueue::new(4, BackpressurePolicy::DropOldest);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        let c = q.counters();
        assert_eq!(c.dropped, 6);
        assert_eq!(c.pushed, 10);
        assert_eq!(c.depth, 4);
        for i in 6..10 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn reject_newest_returns_item_and_counts_exactly() {
        let q = BoundedQueue::new(4, BackpressurePolicy::RejectNewest);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        for i in 4..10 {
            assert_eq!(q.push(i), Err(PushError::Rejected(i)));
        }
        let c = q.counters();
        assert_eq!(c.rejected, 6);
        assert_eq!(c.pushed, 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn block_policy_waits_for_consumer() {
        let q = Arc::new(BoundedQueue::new(2, BackpressurePolicy::Block));
        q.push(0).unwrap();
        q.push(1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2).unwrap())
        };
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(q.len(), 2, "producer should still be blocked");
        assert_eq!(q.pop(), Some(0));
        producer.join().unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.counters().dropped, 0);
    }

    #[test]
    fn close_drains_then_signals_end() {
        let q = BoundedQueue::new(4, BackpressurePolicy::Block);
        q.push('a').unwrap();
        q.close();
        assert_eq!(q.push('b'), Err(PushError::Closed('b')));
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn try_pop_never_blocks() {
        let q: BoundedQueue<u8> = BoundedQueue::new(4, BackpressurePolicy::Block);
        assert_eq!(q.try_pop(), PopResult::TimedOut);
        q.push(5).unwrap();
        assert_eq!(q.try_pop(), PopResult::Item(5));
        assert_eq!(q.try_pop(), PopResult::TimedOut);
        q.push(6).unwrap();
        q.close();
        // Closed queues still drain what they hold before signalling.
        assert_eq!(q.try_pop(), PopResult::Item(6));
        assert_eq!(q.try_pop(), PopResult::Closed);
    }

    #[test]
    fn try_push_reports_full_instead_of_parking() {
        let q: BoundedQueue<u8> = BoundedQueue::new(2, BackpressurePolicy::Block);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        // A blocking push would park here; try_push must not.
        assert_eq!(q.try_push(3), Err(TryPushError::Full(3)));
        // Full is uncounted: the item is the caller's to retry.
        assert_eq!(q.counters().rejected, 0);
        assert_eq!(q.counters().dropped, 0);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        q.close();
        assert_eq!(q.try_push(4), Err(TryPushError::Closed(4)));
    }

    #[test]
    fn try_push_applies_the_lossy_policies() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1, BackpressurePolicy::DropOldest);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.counters().dropped, 1);
        assert_eq!(q.pop(), Some(2));

        let q: BoundedQueue<u8> = BoundedQueue::new(1, BackpressurePolicy::RejectNewest);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(TryPushError::Rejected(2)));
        assert_eq!(q.counters().rejected, 1);
    }

    #[test]
    fn pop_deadline_times_out_and_recovers() {
        let q: BoundedQueue<u8> = BoundedQueue::new(4, BackpressurePolicy::Block);
        let t = Instant::now();
        assert_eq!(
            q.pop_deadline(t + Duration::from_millis(20)),
            PopResult::TimedOut
        );
        assert!(t.elapsed() >= Duration::from_millis(20));
        q.push(9).unwrap();
        assert_eq!(
            q.pop_deadline(Instant::now() + Duration::from_millis(20)),
            PopResult::Item(9)
        );
        q.close();
        assert_eq!(
            q.pop_deadline(Instant::now() + Duration::from_millis(5)),
            PopResult::Closed
        );
    }
}
