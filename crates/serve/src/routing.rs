//! Deterministic sensor → shard routing.
//!
//! Each worker shard owns its model snapshot and queue outright, so no
//! lock is shared on the inference path; the only coordination point is
//! this pure hash. Routing by stable sensor id (rather than round-robin)
//! keeps each sensor's records in order on a single shard, which
//! preserves per-sensor timestamp monotonicity end to end.
//!
//! The hash is the workspace-wide shared FNV-1a-64
//! ([`occusense_core::hash`]) — the same function that seals checkpoint
//! footers, checksums OCW1 frames and keys the fleet controller's
//! consistent-hash ring, so a sensor's placement is reproducible from
//! any layer of the stack.

use occusense_core::hash::fnv1a64;
use std::error::Error;
use std::fmt;

/// Routing asked to place a sensor on a fleet of zero shards.
///
/// Shard counts historically were compile-time constants, but they now
/// also arrive from fleet configuration at runtime — so the zero case
/// is a typed error for config-validation paths ([`try_shard_for`])
/// rather than an abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroShardsError;

impl fmt::Display for ZeroShardsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot route a sensor across zero shards")
    }
}

impl Error for ZeroShardsError {}

/// The shard a sensor's records are routed to, or [`ZeroShardsError`]
/// when `n_shards` is zero. Fleet configuration paths, whose shard
/// counts come from runtime input, validate through this form.
pub fn try_shard_for(sensor_id: &str, n_shards: usize) -> Result<usize, ZeroShardsError> {
    if n_shards == 0 {
        return Err(ZeroShardsError);
    }
    Ok((fnv1a64(sensor_id.as_bytes()) % n_shards as u64) as usize)
}

/// The shard a sensor's records are routed to.
///
/// Saturating policy for the degenerate case: with `n_shards == 0`
/// there is no shard to name, so the result is `0` — callers that must
/// distinguish that case use [`try_shard_for`]. (Serving runtimes
/// reject zero-shard configurations up front via
/// `ServeError::ZeroShards`, so on the hot path the two forms agree.)
///
/// # Example
///
/// ```
/// use occusense_serve::routing::shard_for;
///
/// let s = shard_for("room-3/esp32-a", 4);
/// assert!(s < 4);
/// // Stable: the same id always lands on the same shard.
/// assert_eq!(s, shard_for("room-3/esp32-a", 4));
/// ```
pub fn shard_for(sensor_id: &str, n_shards: usize) -> usize {
    try_shard_for(sensor_id, n_shards).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for n in 1..=16 {
            for i in 0..100 {
                let id = format!("sensor-{i}");
                let s = shard_for(&id, n);
                assert!(s < n);
                assert_eq!(s, shard_for(&id, n));
                assert_eq!(try_shard_for(&id, n), Ok(s));
            }
        }
    }

    #[test]
    fn routing_uses_every_shard() {
        let n = 8;
        let mut hit = vec![false; n];
        for i in 0..200 {
            hit[shard_for(&format!("sensor-{i}"), n)] = true;
        }
        assert!(hit.iter().all(|&h| h), "{hit:?}");
    }

    #[test]
    fn zero_shards_is_a_typed_error_not_a_panic() {
        assert_eq!(try_shard_for("sensor-0", 0), Err(ZeroShardsError));
        // The saturating form stays total.
        assert_eq!(shard_for("sensor-0", 0), 0);
        assert!(ZeroShardsError.to_string().contains("zero shards"));
    }

    #[test]
    fn known_fnv_vectors() {
        // Published FNV-1a test vectors pin the routing for all time:
        // renaming shards or changing the hash is a breaking change.
        // (The shared implementation lives in `occusense_core::hash`;
        // asserting the vectors *here* keeps the routing contract
        // locally witnessed even if that module evolves.)
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
