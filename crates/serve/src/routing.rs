//! Deterministic sensor → shard routing.
//!
//! Each worker shard owns its model snapshot and queue outright, so no
//! lock is shared on the inference path; the only coordination point is
//! this pure hash. Routing by stable sensor id (rather than round-robin)
//! keeps each sensor's records in order on a single shard, which
//! preserves per-sensor timestamp monotonicity end to end.

/// FNV-1a, 64-bit — tiny, stable across platforms and runs.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard a sensor's records are routed to.
///
/// # Panics
///
/// Panics if `n_shards` is zero.
///
/// # Example
///
/// ```
/// use occusense_serve::routing::shard_for;
///
/// let s = shard_for("room-3/esp32-a", 4);
/// assert!(s < 4);
/// // Stable: the same id always lands on the same shard.
/// assert_eq!(s, shard_for("room-3/esp32-a", 4));
/// ```
pub fn shard_for(sensor_id: &str, n_shards: usize) -> usize {
    assert!(n_shards > 0, "shard_for: n_shards must be positive");
    (fnv1a64(sensor_id.as_bytes()) % n_shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for n in 1..=16 {
            for i in 0..100 {
                let id = format!("sensor-{i}");
                let s = shard_for(&id, n);
                assert!(s < n);
                assert_eq!(s, shard_for(&id, n));
            }
        }
    }

    #[test]
    fn routing_uses_every_shard() {
        let n = 8;
        let mut hit = vec![false; n];
        for i in 0..200 {
            hit[shard_for(&format!("sensor-{i}"), n)] = true;
        }
        assert!(hit.iter().all(|&h| h), "{hit:?}");
    }

    #[test]
    fn known_fnv_vectors() {
        // Published FNV-1a test vectors pin the routing for all time:
        // renaming shards or changing the hash is a breaking change.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
