//! Property-based tests for the baseline models.

use occusense_baselines::forest::{ForestConfig, RandomForest};
use occusense_baselines::linreg::{LinRegConfig, LinearRegression};
use occusense_baselines::logreg::{LogRegConfig, LogisticRegression};
use occusense_baselines::tree::{DecisionTree, TreeConfig};
use occusense_tensor::Matrix;
use proptest::prelude::*;

/// A feature matrix plus real targets of matching length.
fn regression_data() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (4usize..30, 1usize..5).prop_flat_map(|(n, d)| {
        let x = prop::collection::vec(-10.0f64..10.0, n * d)
            .prop_map(move |data| Matrix::from_vec(n, d, data));
        let y = prop::collection::vec(-10.0f64..10.0, n);
        (x, y)
    })
}

proptest! {
    #[test]
    fn tree_predictions_within_target_hull((x, y) in regression_data()) {
        let t = DecisionTree::fit(&x, &y, &TreeConfig::default());
        let lo = y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for p in t.predict(&x) {
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn tree_depth_bounded((x, y) in regression_data(), depth in 1usize..6) {
        let t = DecisionTree::fit(
            &x,
            &y,
            &TreeConfig {
                max_depth: depth,
                min_samples_split: 2,
                ..TreeConfig::default()
            },
        );
        prop_assert!(t.depth() <= depth);
    }

    #[test]
    fn forest_predictions_within_target_hull((x, y) in regression_data()) {
        let rf = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 5,
                ..ForestConfig::default()
            },
        );
        let lo = y.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for p in rf.predict(&x) {
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn logreg_probabilities_bounded(
        n in 4usize..40,
        seed_vals in prop::collection::vec(-5.0f64..5.0, 4..40),
    ) {
        let n = n.min(seed_vals.len());
        let x = Matrix::from_vec(n, 1, seed_vals[..n].to_vec());
        let y: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let m = LogisticRegression::fit(
            &x,
            &y,
            &LogRegConfig {
                epochs: 5,
                ..LogRegConfig::default()
            },
        );
        for p in m.predict_proba(&x) {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn linreg_recovers_planted_model(
        n in 6usize..40,
        w in -5.0f64..5.0,
        b in -5.0f64..5.0,
    ) {
        // Exact linear data with a well-spread regressor.
        let x = Matrix::from_fn(n, 1, |r, _| r as f64 * 0.7 - 3.0);
        let y: Vec<f64> = (0..n).map(|r| w * x[(r, 0)] + b).collect();
        let m = LinearRegression::fit(&x, &y, &LinRegConfig { l2: 0.0 }).unwrap();
        prop_assert!((m.coefficients()[0] - w).abs() < 1e-6);
        prop_assert!((m.intercept() - b).abs() < 1e-6);
    }

    #[test]
    fn forest_majority_vote_is_thresholded_mean((x, y) in regression_data()) {
        // Binarise targets first.
        let yb: Vec<f64> = y.iter().map(|&v| f64::from(v > 0.0)).collect();
        let rf = RandomForest::fit(
            &x,
            &yb,
            &ForestConfig {
                n_trees: 4,
                ..ForestConfig::default()
            },
        );
        let probs = rf.predict(&x);
        let labels = rf.predict_labels(&x);
        for (p, l) in probs.iter().zip(&labels) {
            prop_assert_eq!(u8::from(*p > 0.5), *l);
        }
    }

    #[test]
    fn tree_is_deterministic((x, y) in regression_data(), seed in 0u64..20) {
        let cfg = TreeConfig {
            n_features: Some(1),
            seed,
            ..TreeConfig::default()
        };
        prop_assert_eq!(
            DecisionTree::fit(&x, &y, &cfg),
            DecisionTree::fit(&x, &y, &cfg)
        );
    }
}
