//! CART decision trees.
//!
//! One implementation serves classification and regression: for binary
//! 0/1 targets, minimising the weighted child *variance* is equivalent to
//! minimising the Gini impurity (`gini = 2·p(1−p) = 2·var`), so the
//! splitter always minimises `Σ n_child · var_child` via prefix sums over
//! the per-feature sorted targets.

use occusense_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Do not split nodes with fewer samples than this.
    pub min_samples_split: usize,
    /// Each child must keep at least this many samples.
    pub min_samples_leaf: usize,
    /// Number of random candidate features per split; `None` = all.
    pub n_features: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 16,
            min_samples_split: 4,
            min_samples_leaf: 1,
            n_features: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART tree predicting a real value (class probability for
/// binary classification).
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl DecisionTree {
    /// Fits a tree on `x` (`n × d`) and real-valued targets `y`
    /// (use 0.0/1.0 for binary classification).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or shapes mismatch.
    pub fn fit(x: &Matrix, y: &[f64], config: &TreeConfig) -> Self {
        assert_eq!(x.rows(), y.len(), "tree: sample count mismatch");
        assert!(!y.is_empty(), "tree: empty dataset");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut tree = Self {
            nodes: Vec::new(),
            n_features: x.cols(),
        };
        let indices: Vec<usize> = (0..x.rows()).collect();
        tree.build(x, y, indices, 0, config, &mut rng);
        tree
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize) -> usize {
            match nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, left).max(walk(nodes, right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    fn build(
        &mut self,
        x: &Matrix,
        y: &[f64],
        indices: Vec<usize>,
        depth: usize,
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> usize {
        let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len() as f64;
        let is_pure = indices.iter().all(|&i| (y[i] - mean).abs() < 1e-12);
        if depth >= config.max_depth || indices.len() < config.min_samples_split || is_pure {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }

        let Some((feature, threshold)) = best_split(x, y, &indices, config, rng) else {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .into_iter()
            .partition(|&i| x[(i, feature)] <= threshold);
        debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());

        // Reserve the split node, then build children.
        let node_id = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean }); // placeholder
        let left = self.build(x, y, left_idx, depth + 1, config, rng);
        let right = self.build(x, y, right_idx, depth + 1, config, rng);
        self.nodes[node_id] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_id
    }

    /// Predicted value for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the fitted dimension.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "tree: dimension mismatch");
        let mut i = 0;
        loop {
            match self.nodes[i] {
                Node::Leaf { value } => return value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[feature] <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Predicted values for a batch.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        x.rows_iter().map(|row| self.predict_row(row)).collect()
    }
}

/// Finds the `(feature, threshold)` minimising the weighted child
/// variance, or `None` if no valid split exists.
fn best_split(
    x: &Matrix,
    y: &[f64],
    indices: &[usize],
    config: &TreeConfig,
    rng: &mut StdRng,
) -> Option<(usize, f64)> {
    let d = x.cols();
    let features: Vec<usize> = match config.n_features {
        Some(k) if k < d => {
            let mut all: Vec<usize> = (0..d).collect();
            all.shuffle(rng);
            all.truncate(k.max(1));
            all
        }
        _ => (0..d).collect(),
    };

    let n = indices.len();
    let mut best: Option<(f64, usize, f64)> = None; // (cost, feature, threshold)
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(n);

    for &f in &features {
        pairs.clear();
        pairs.extend(indices.iter().map(|&i| (x[(i, f)], y[i])));
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));

        // Prefix sums of y and y² over the sorted order.
        let mut sum_l = 0.0;
        let mut sumsq_l = 0.0;
        let total_sum: f64 = pairs.iter().map(|p| p.1).sum();
        let total_sumsq: f64 = pairs.iter().map(|p| p.1 * p.1).sum();

        for split_at in 1..n {
            let (v_prev, y_prev) = pairs[split_at - 1];
            sum_l += y_prev;
            sumsq_l += y_prev * y_prev;
            let v_here = pairs[split_at].0;
            if v_here <= v_prev {
                continue; // cannot split between equal feature values
            }
            let nl = split_at;
            let nr = n - split_at;
            if nl < config.min_samples_leaf || nr < config.min_samples_leaf {
                continue;
            }
            let sum_r = total_sum - sum_l;
            let sumsq_r = total_sumsq - sumsq_l;
            // n·var = Σy² − (Σy)²/n for each side.
            let cost =
                (sumsq_l - sum_l * sum_l / nl as f64) + (sumsq_r - sum_r * sum_r / nr as f64);
            if best.is_none_or(|(c, _, _)| cost < c - 1e-15) {
                best = Some((cost, f, (v_prev + v_here) / 2.0));
            }
        }
    }
    // Zero-gain splits are allowed (as in scikit-learn's CART with
    // min_impurity_decrease = 0): greedy gain is zero on XOR-like data at
    // the first level, yet deeper splits resolve it. Recursion still
    // terminates because both children are non-empty and purity stops it.
    best.map(|(_, f, t)| (f, t))
}

/// Draws `n` bootstrap indices in `0..n_total` (public for the forest).
pub(crate) fn bootstrap_indices(n_total: usize, n: usize, rng: &mut StdRng) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n_total)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<f64>) {
        (
            Matrix::from_rows(&[&[0., 0.], &[0., 1.], &[1., 0.], &[1., 1.]]),
            vec![0.0, 1.0, 1.0, 0.0],
        )
    }

    #[test]
    fn solves_xor_unlike_linear_models() {
        let (x, y) = xor_data();
        let cfg = TreeConfig {
            min_samples_split: 2,
            ..TreeConfig::default()
        };
        let t = DecisionTree::fit(&x, &y, &cfg);
        assert_eq!(t.predict(&x), y);
    }

    #[test]
    fn single_threshold_split() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[10.0], &[11.0]]);
        let y = [0.0, 0.0, 1.0, 1.0];
        let t = DecisionTree::fit(
            &x,
            &y,
            &TreeConfig {
                min_samples_split: 2,
                ..TreeConfig::default()
            },
        );
        // CART places the threshold at the midpoint between 2 and 10.
        assert_eq!(t.predict_row(&[5.9]), 0.0);
        assert_eq!(t.predict_row(&[6.1]), 1.0);
        assert_eq!(t.predict_row(&[10.5]), 1.0);
    }

    #[test]
    fn respects_max_depth() {
        // Alternating labels along one feature force deep trees.
        let x = Matrix::from_fn(64, 1, |r, _| r as f64);
        let y: Vec<f64> = (0..64).map(|r| (r % 2) as f64).collect();
        let shallow = DecisionTree::fit(
            &x,
            &y,
            &TreeConfig {
                max_depth: 2,
                min_samples_split: 2,
                ..TreeConfig::default()
            },
        );
        assert!(shallow.depth() <= 2);
        let deep = DecisionTree::fit(
            &x,
            &y,
            &TreeConfig {
                max_depth: 10,
                min_samples_split: 2,
                ..TreeConfig::default()
            },
        );
        assert!(deep.depth() > 2);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let y = [5.0, 5.0, 5.0];
        let t = DecisionTree::fit(&x, &y, &TreeConfig::default());
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict_row(&[99.0]), 5.0);
    }

    #[test]
    fn regression_fits_step_function() {
        let x = Matrix::from_fn(40, 1, |r, _| r as f64);
        let y: Vec<f64> = (0..40).map(|r| if r < 20 { 1.5 } else { 7.5 }).collect();
        let t = DecisionTree::fit(&x, &y, &TreeConfig::default());
        assert_eq!(t.predict_row(&[5.0]), 1.5);
        assert_eq!(t.predict_row(&[30.0]), 7.5);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let y = [0.0, 0.0, 0.0, 1.0];
        let t = DecisionTree::fit(
            &x,
            &y,
            &TreeConfig {
                min_samples_leaf: 2,
                min_samples_split: 2,
                ..TreeConfig::default()
            },
        );
        // A 1-sample right leaf (only x=4) is forbidden: split at 2/3.
        assert!((t.predict_row(&[3.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn feature_subsampling_changes_tree_but_stays_valid() {
        let x = Matrix::from_fn(50, 6, |r, c| ((r * (c + 2)) as f64 * 0.317).sin());
        let y: Vec<f64> = (0..50).map(|r| f64::from(x[(r, 3)] > 0.0)).collect();
        let full = DecisionTree::fit(&x, &y, &TreeConfig::default());
        let sub = DecisionTree::fit(
            &x,
            &y,
            &TreeConfig {
                n_features: Some(2),
                seed: 5,
                ..TreeConfig::default()
            },
        );
        // Full tree nails the single informative feature.
        let acc = |t: &DecisionTree| {
            t.predict(&x)
                .iter()
                .zip(&y)
                .filter(|(p, t)| (**p > 0.5) == (**t > 0.5))
                .count()
        };
        assert_eq!(acc(&full), 50);
        assert!(acc(&sub) >= 40);
    }

    #[test]
    fn deterministic_per_seed() {
        let x = Matrix::from_fn(30, 4, |r, c| ((r + c * 7) as f64).cos());
        let y: Vec<f64> = (0..30).map(|r| (r % 2) as f64).collect();
        let cfg = TreeConfig {
            n_features: Some(2),
            seed: 3,
            ..TreeConfig::default()
        };
        assert_eq!(
            DecisionTree::fit(&x, &y, &cfg),
            DecisionTree::fit(&x, &y, &cfg)
        );
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let x = Matrix::filled(10, 3, 1.0);
        let y: Vec<f64> = (0..10).map(|r| (r % 2) as f64).collect();
        let t = DecisionTree::fit(&x, &y, &TreeConfig::default());
        assert_eq!(t.n_nodes(), 1);
        assert!((t.predict_row(&[1.0, 1.0, 1.0]) - 0.5).abs() < 1e-12);
    }
}
