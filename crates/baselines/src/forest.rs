//! Bootstrap-aggregated random forests.
//!
//! The paper's strongest baseline (Table IV): an ensemble of CART trees,
//! each trained on a bootstrap resample with √d random candidate features
//! per split, predictions aggregated by averaging (majority vote for the
//! thresholded binary label).

use crate::tree::{bootstrap_indices, DecisionTree, TreeConfig};
use occusense_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters of a random forest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration. `n_features: None` here means "use √d",
    /// the classification default.
    pub tree: TreeConfig,
    /// Fraction of the training set drawn (with replacement) per tree.
    pub bootstrap_fraction: f64,
    /// Master seed (per-tree seeds derive from it).
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 30,
            tree: TreeConfig::default(),
            bootstrap_fraction: 1.0,
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fits the forest on `x` and real-valued targets `y` (0.0/1.0 for
    /// binary classification).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty, shapes mismatch, or
    /// `n_trees == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_baselines::forest::{ForestConfig, RandomForest};
    /// use occusense_tensor::Matrix;
    ///
    /// // A step function along one feature.
    /// let x = Matrix::from_fn(40, 1, |r, _| r as f64);
    /// let y: Vec<f64> = (0..40).map(|r| f64::from(r >= 20)).collect();
    /// let rf = RandomForest::fit(&x, &y, &ForestConfig::default());
    /// assert_eq!(rf.predict_labels(&Matrix::from_rows(&[&[5.0], &[35.0]])), vec![0, 1]);
    /// ```
    pub fn fit(x: &Matrix, y: &[f64], config: &ForestConfig) -> Self {
        assert!(config.n_trees > 0, "forest: need at least one tree");
        assert_eq!(x.rows(), y.len(), "forest: sample count mismatch");
        assert!(!y.is_empty(), "forest: empty dataset");

        let n = x.rows();
        let n_boot = ((n as f64 * config.bootstrap_fraction).round() as usize).max(1);
        let sqrt_d = (x.cols() as f64).sqrt().round() as usize;
        let mut rng = StdRng::seed_from_u64(config.seed);

        let trees = (0..config.n_trees)
            .map(|t| {
                let indices = bootstrap_indices(n, n_boot, &mut rng);
                let xb = x.select_rows(&indices);
                let yb: Vec<f64> = indices.iter().map(|&i| y[i]).collect();
                let tree_cfg = TreeConfig {
                    n_features: config.tree.n_features.or(Some(sqrt_d.max(1))),
                    seed: config.seed.wrapping_mul(0x9e37_79b9).wrapping_add(t as u64),
                    ..config.tree
                };
                DecisionTree::fit(&xb, &yb, &tree_cfg)
            })
            .collect();
        Self { trees }
    }

    /// The fitted trees.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Ensemble-averaged prediction per row (class probability for
    /// binary labels, value for regression).
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        let mut acc = vec![0.0; x.rows()];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict(x)) {
                *a += p;
            }
        }
        let k = self.trees.len() as f64;
        for a in &mut acc {
            *a /= k;
        }
        acc
    }

    /// Majority-vote binary labels (`mean > 0.5`).
    pub fn predict_labels(&self, x: &Matrix) -> Vec<u8> {
        self.predict(x)
            .into_iter()
            .map(|p| u8::from(p > 0.5))
            .collect()
    }

    /// Rough memory footprint of the fitted model in KiB (for the
    /// embedded-deployment comparison of §V-B: "RF is computationally and
    /// space-intensive"). Counts one feature index, one threshold and two
    /// child indices per node.
    pub fn size_kib(&self) -> f64 {
        let per_node = std::mem::size_of::<usize>() * 3 + std::mem::size_of::<f64>();
        let nodes: usize = self.trees.iter().map(DecisionTree::n_nodes).sum();
        (nodes * per_node) as f64 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_blobs(n: usize) -> (Matrix, Vec<f64>) {
        // Two non-linearly separated rings-ish blobs.
        let x = Matrix::from_fn(n, 2, |r, c| {
            let angle = r as f64 * 0.7;
            let radius = if r % 2 == 0 { 1.0 } else { 3.0 };
            let noise = ((r * 31 + c * 17) % 13) as f64 / 13.0 * 0.4;
            if c == 0 {
                radius * angle.cos() + noise
            } else {
                radius * angle.sin() + noise
            }
        });
        let y = (0..n).map(|r| (r % 2) as f64).collect();
        (x, y)
    }

    #[test]
    fn forest_beats_chance_on_nonlinear_data() {
        let (x, y) = noisy_blobs(200);
        let rf = RandomForest::fit(&x, &y, &ForestConfig::default());
        let labels = rf.predict_labels(&x);
        let correct = labels
            .iter()
            .zip(&y)
            .filter(|(p, t)| **p as f64 == **t)
            .count();
        assert!(correct > 190, "train accuracy {correct}/200");
    }

    #[test]
    fn probabilities_are_bounded_means() {
        let (x, y) = noisy_blobs(100);
        let rf = RandomForest::fit(&x, &y, &ForestConfig::default());
        for p in rf.predict(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn more_trees_stabilise_predictions() {
        let (x, y) = noisy_blobs(150);
        let small = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 2,
                seed: 1,
                ..ForestConfig::default()
            },
        );
        let big = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 40,
                seed: 1,
                ..ForestConfig::default()
            },
        );
        // Bigger forests have smoother probabilities (fewer exact 0/1).
        let extremes = |rf: &RandomForest| {
            rf.predict(&x)
                .iter()
                .filter(|&&p| p == 0.0 || p == 1.0)
                .count()
        };
        assert!(extremes(&big) <= extremes(&small));
        assert_eq!(big.trees().len(), 40);
    }

    #[test]
    fn regression_mode_averages_values() {
        let x = Matrix::from_fn(60, 1, |r, _| r as f64);
        let y: Vec<f64> = (0..60).map(|r| if r < 30 { 2.0 } else { 8.0 }).collect();
        let rf = RandomForest::fit(&x, &y, &ForestConfig::default());
        let low = rf.predict(&Matrix::from_rows(&[&[5.0]]))[0];
        let high = rf.predict(&Matrix::from_rows(&[&[55.0]]))[0];
        assert!((low - 2.0).abs() < 0.8, "low {low}");
        assert!((high - 8.0).abs() < 0.8, "high {high}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = noisy_blobs(80);
        let cfg = ForestConfig {
            n_trees: 5,
            seed: 11,
            ..ForestConfig::default()
        };
        assert_eq!(
            RandomForest::fit(&x, &y, &cfg),
            RandomForest::fit(&x, &y, &cfg)
        );
        let other = ForestConfig { seed: 12, ..cfg };
        assert_ne!(
            RandomForest::fit(&x, &y, &cfg),
            RandomForest::fit(&x, &y, &other)
        );
    }

    #[test]
    fn size_accounting_grows_with_trees() {
        let (x, y) = noisy_blobs(100);
        let small = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 2,
                ..ForestConfig::default()
            },
        );
        let big = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 20,
                ..ForestConfig::default()
            },
        );
        assert!(big.size_kib() > small.size_kib());
        assert!(small.size_kib() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn rejects_zero_trees() {
        let (x, y) = noisy_blobs(10);
        RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 0,
                ..ForestConfig::default()
            },
        );
    }
}
