//! Logistic regression trained by mini-batch SGD.

use occusense_tensor::vecops::sigmoid;
use occusense_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyper-parameters for [`LogisticRegression::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogRegConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            learning_rate: 0.1,
            l2: 1e-4,
            batch_size: 64,
            seed: 0,
        }
    }
}

/// A binary logistic-regression classifier `p = σ(w·x + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Fits the model on features `x` (`n × d`) and binary labels `y`.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != y.len()`, the dataset is empty, or labels
    /// exceed 1.
    pub fn fit(x: &Matrix, y: &[u8], config: &LogRegConfig) -> Self {
        assert_eq!(x.rows(), y.len(), "logreg: sample count mismatch");
        assert!(!y.is_empty(), "logreg: empty dataset");
        assert!(y.iter().all(|&l| l <= 1), "logreg: labels must be 0/1");

        let d = x.cols();
        let mut weights = vec![0.0; d];
        let mut bias = 0.0;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..x.rows()).collect();

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch_size.max(1)) {
                let scale = 1.0 / chunk.len() as f64;
                let mut grad_w = vec![0.0; d];
                let mut grad_b = 0.0;
                for &i in chunk {
                    let row = x.row(i);
                    let z = occusense_tensor::vecops::dot(&weights, row) + bias;
                    let err = sigmoid(z) - y[i] as f64;
                    for (gw, &xi) in grad_w.iter_mut().zip(row) {
                        *gw += err * xi;
                    }
                    grad_b += err;
                }
                for (w, gw) in weights.iter_mut().zip(&grad_w) {
                    *w -= config.learning_rate * (gw * scale + config.l2 * *w);
                }
                bias -= config.learning_rate * grad_b * scale;
            }
        }
        Self { weights, bias }
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Per-sample probability of the positive class.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the fitted dimension.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert_eq!(x.cols(), self.weights.len(), "logreg: dimension mismatch");
        x.rows_iter()
            .map(|row| sigmoid(occusense_tensor::vecops::dot(&self.weights, row) + self.bias))
            .collect()
    }

    /// Thresholded binary predictions (`p > 0.5`).
    pub fn predict(&self, x: &Matrix) -> Vec<u8> {
        self.predict_proba(x)
            .into_iter()
            .map(|p| u8::from(p > 0.5))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable_2d(n: usize) -> (Matrix, Vec<u8>) {
        // Class depends on x0 + x1.
        let x = Matrix::from_fn(n, 2, |r, c| {
            let v = ((r * 7 + c * 13) % 19) as f64 / 19.0 - 0.5;
            if r % 2 == 0 {
                v + 1.0
            } else {
                v - 1.0
            }
        });
        let y = (0..n).map(|r| u8::from(r % 2 == 0)).collect();
        (x, y)
    }

    #[test]
    fn fits_separable_data_perfectly() {
        let (x, y) = separable_2d(200);
        let m = LogisticRegression::fit(&x, &y, &LogRegConfig::default());
        assert_eq!(m.predict(&x), y);
    }

    #[test]
    fn cannot_fit_xor() {
        // The defining property of a linear model — and the premise of the
        // paper's Table IV comparison.
        let x = Matrix::from_rows(&[&[0., 0.], &[0., 1.], &[1., 0.], &[1., 1.]]);
        let y = [0u8, 1, 1, 0];
        let cfg = LogRegConfig {
            epochs: 500,
            ..LogRegConfig::default()
        };
        let m = LogisticRegression::fit(&x, &y, &cfg);
        let correct = m.predict(&x).iter().zip(&y).filter(|(a, b)| a == b).count();
        assert!(
            correct <= 3,
            "a linear model cannot solve XOR ({correct}/4)"
        );
    }

    #[test]
    fn probabilities_are_calibrated_ordering() {
        let (x, y) = separable_2d(100);
        let m = LogisticRegression::fit(&x, &y, &LogRegConfig::default());
        let p = m.predict_proba(&x);
        for (pi, &yi) in p.iter().zip(&y) {
            assert!((0.0..=1.0).contains(pi));
            if yi == 1 {
                assert!(*pi > 0.5);
            } else {
                assert!(*pi < 0.5);
            }
        }
    }

    #[test]
    fn l2_shrinks_weights() {
        let (x, y) = separable_2d(100);
        let weak = LogisticRegression::fit(
            &x,
            &y,
            &LogRegConfig {
                l2: 0.0,
                ..LogRegConfig::default()
            },
        );
        let strong = LogisticRegression::fit(
            &x,
            &y,
            &LogRegConfig {
                l2: 1.0,
                ..LogRegConfig::default()
            },
        );
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm(strong.weights()) < norm(weak.weights()));
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = separable_2d(60);
        let a = LogisticRegression::fit(&x, &y, &LogRegConfig::default());
        let b = LogisticRegression::fit(&x, &y, &LogRegConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "labels must be 0/1")]
    fn rejects_multiclass_labels() {
        LogisticRegression::fit(&Matrix::ones(2, 1), &[0, 2], &LogRegConfig::default());
    }
}
