//! Ordinary least squares (with optional ridge stabilisation).
//!
//! The Table V baseline: "we fit a least-squares solution … using linear
//! regression (ordinary least squares)". Real CSI feature matrices have
//! near-constant columns (null subcarriers), so a small ridge penalty is
//! supported to keep the normal equations well-posed; `l2 = 0` is exact
//! OLS.

use occusense_tensor::{linalg, Matrix};
use std::error::Error;
use std::fmt;

/// Configuration for [`LinearRegression::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinRegConfig {
    /// Ridge penalty λ (0 = exact OLS). The intercept is never penalised.
    pub l2: f64,
}

impl Default for LinRegConfig {
    fn default() -> Self {
        Self { l2: 1e-8 }
    }
}

/// Error returned by [`LinearRegression::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct FitLinRegError {
    inner: linalg::LeastSquaresError,
}

impl fmt::Display for FitLinRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "linear regression fit failed: {}", self.inner)
    }
}

impl Error for FitLinRegError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.inner)
    }
}

/// A fitted linear model `ŷ = x·w + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    coefficients: Vec<f64>,
    intercept: f64,
}

impl LinearRegression {
    /// Fits the model by (ridge-stabilised) least squares via QR on the
    /// augmented system.
    ///
    /// # Errors
    ///
    /// Returns [`FitLinRegError`] if the design matrix is rank deficient
    /// even after regularisation, or shapes mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != y.len()`.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_baselines::linreg::{LinearRegression, LinRegConfig};
    /// use occusense_tensor::Matrix;
    ///
    /// let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
    /// let y = [1.0, 3.0, 5.0, 7.0]; // y = 2x + 1
    /// let m = LinearRegression::fit(&x, &y, &LinRegConfig { l2: 0.0 })?;
    /// assert!((m.coefficients()[0] - 2.0).abs() < 1e-9);
    /// assert!((m.intercept() - 1.0).abs() < 1e-9);
    /// # Ok::<(), occusense_baselines::linreg::FitLinRegError>(())
    /// ```
    pub fn fit(x: &Matrix, y: &[f64], config: &LinRegConfig) -> Result<Self, FitLinRegError> {
        assert_eq!(x.rows(), y.len(), "linreg: sample count mismatch");
        let n = x.rows();
        let d = x.cols();
        let ridge_rows = if config.l2 > 0.0 { d } else { 0 };
        // Augmented design: [1 | X] on top, sqrt(λ)·I (coefficients only,
        // intercept column zero) below.
        let mut a = Matrix::zeros(n + ridge_rows, d + 1);
        for r in 0..n {
            a[(r, 0)] = 1.0;
            let src = x.row(r);
            a.row_mut(r)[1..].copy_from_slice(src);
        }
        let sqrt_l2 = config.l2.sqrt();
        for j in 0..ridge_rows {
            a[(n + j, j + 1)] = sqrt_l2;
        }
        let mut b = y.to_vec();
        b.extend(std::iter::repeat_n(0.0, ridge_rows));

        let solution = linalg::least_squares(&a, &b).map_err(|inner| FitLinRegError { inner })?;
        Ok(Self {
            intercept: solution[0],
            coefficients: solution[1..].to_vec(),
        })
    }

    /// The fitted coefficient vector (without the intercept).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Predicts targets for a batch.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the fitted dimension.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        assert_eq!(
            x.cols(),
            self.coefficients.len(),
            "linreg: dimension mismatch"
        );
        x.rows_iter()
            .map(|row| occusense_tensor::vecops::dot(&self.coefficients, row) + self.intercept)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_on_linear_data() {
        // y = 3 x0 - 2 x1 + 5
        let x = Matrix::from_fn(20, 2, |r, c| ((r + 3 * c) as f64 * 0.917).sin());
        let y: Vec<f64> = (0..20)
            .map(|r| 3.0 * x[(r, 0)] - 2.0 * x[(r, 1)] + 5.0)
            .collect();
        let m = LinearRegression::fit(&x, &y, &LinRegConfig { l2: 0.0 }).unwrap();
        assert!((m.coefficients()[0] - 3.0).abs() < 1e-9);
        assert!((m.coefficients()[1] + 2.0).abs() < 1e-9);
        assert!((m.intercept() - 5.0).abs() < 1e-9);
        let pred = m.predict(&x);
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 1e-9);
        }
    }

    #[test]
    fn ols_fails_on_collinear_ridge_succeeds() {
        // Second column = 2 × first.
        let x = Matrix::from_fn(10, 2, |r, c| (r as f64 + 1.0) * (c as f64 + 1.0));
        let y: Vec<f64> = (0..10).map(|r| r as f64).collect();
        assert!(LinearRegression::fit(&x, &y, &LinRegConfig { l2: 0.0 }).is_err());
        let ridge = LinearRegression::fit(&x, &y, &LinRegConfig { l2: 1e-6 }).unwrap();
        // Ridge still predicts well.
        let pred = ridge.predict(&x);
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 1e-2, "{p} vs {t}");
        }
    }

    #[test]
    fn constant_feature_column_is_handled_by_ridge() {
        let x = Matrix::from_fn(8, 2, |r, c| if c == 0 { 0.5 } else { r as f64 });
        let y: Vec<f64> = (0..8).map(|r| 2.0 * r as f64 + 1.0).collect();
        // Constant column is collinear with the intercept: exact OLS fails.
        assert!(LinearRegression::fit(&x, &y, &LinRegConfig { l2: 0.0 }).is_err());
        let m = LinearRegression::fit(&x, &y, &LinRegConfig::default()).unwrap();
        let pred = m.predict(&x);
        for (p, t) in pred.iter().zip(&y) {
            assert!((p - t).abs() < 1e-3);
        }
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let x = Matrix::from_fn(30, 1, |r, _| r as f64 / 30.0);
        let y: Vec<f64> = (0..30).map(|r| 10.0 * (r as f64 / 30.0)).collect();
        let ols = LinearRegression::fit(&x, &y, &LinRegConfig { l2: 0.0 }).unwrap();
        let ridge = LinearRegression::fit(&x, &y, &LinRegConfig { l2: 10.0 }).unwrap();
        assert!(ridge.coefficients()[0].abs() < ols.coefficients()[0].abs());
    }

    #[test]
    fn noisy_fit_residuals_are_unbiased() {
        let x = Matrix::from_fn(100, 1, |r, _| r as f64 / 50.0);
        let y: Vec<f64> = (0..100)
            .map(|r| 2.0 * (r as f64 / 50.0) + ((r * 13 % 7) as f64 - 3.0) * 0.1)
            .collect();
        let m = LinearRegression::fit(&x, &y, &LinRegConfig { l2: 0.0 }).unwrap();
        let pred = m.predict(&x);
        let mean_resid: f64 = y.iter().zip(&pred).map(|(t, p)| t - p).sum::<f64>() / y.len() as f64;
        assert!(mean_resid.abs() < 1e-9, "bias {mean_resid}");
    }
}
