//! # occusense-baselines
//!
//! The comparison models of the paper's evaluation, implemented from
//! scratch (the paper used scikit-learn; see the substitution table in
//! DESIGN.md):
//!
//! * [`logreg`] — logistic regression trained by mini-batch SGD with L2
//!   regularisation: the *linear* classifier whose Table IV results show
//!   that CSI-based occupancy is not linearly separable.
//! * [`tree`] — a CART decision tree (Gini impurity for classification,
//!   variance reduction for regression).
//! * [`forest`] — a bagged random forest with √d feature subsampling and
//!   majority voting: the *non-linear* ensemble baseline.
//! * [`linreg`] — ordinary least squares (optionally ridge-stabilised)
//!   for the Table V humidity/temperature regression baseline.
//!
//! # Example
//!
//! ```
//! use occusense_baselines::logreg::{LogisticRegression, LogRegConfig};
//! use occusense_tensor::Matrix;
//!
//! // A linearly separable toy problem.
//! let x = Matrix::from_rows(&[&[-2.0], &[-1.0], &[1.0], &[2.0]]);
//! let y = [0u8, 0, 1, 1];
//! let model = LogisticRegression::fit(&x, &y, &LogRegConfig::default());
//! assert_eq!(model.predict(&x), vec![0, 0, 1, 1]);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod forest;
pub mod linreg;
pub mod logreg;
pub mod tree;
