//! Property-based tests for the statistics crate.

use occusense_stats::correlation::{autocorrelation, pearson};
use occusense_stats::descriptive::{quantile_sorted, Histogram, Summary};
use occusense_stats::metrics::{accuracy, mae, mape, r2, rmse, ConfusionMatrix};
use proptest::prelude::*;

proptest! {
    #[test]
    fn pearson_bounded(
        x in prop::collection::vec(-1e3f64..1e3, 3..100),
        ys in prop::collection::vec(-1e3f64..1e3, 3..100),
    ) {
        let n = x.len().min(ys.len());
        if let Some(rho) = pearson(&x[..n], &ys[..n]) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho), "rho = {rho}");
        }
    }

    #[test]
    fn pearson_symmetric(
        x in prop::collection::vec(-100.0f64..100.0, 3..50),
        y in prop::collection::vec(-100.0f64..100.0, 3..50),
    ) {
        let n = x.len().min(y.len());
        let a = pearson(&x[..n], &y[..n]);
        let b = pearson(&y[..n], &x[..n]);
        match (a, b) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
            (None, None) => {}
            _ => prop_assert!(false, "asymmetric definedness"),
        }
    }

    #[test]
    fn pearson_affine_invariant(
        x in prop::collection::vec(-100.0f64..100.0, 3..50),
        scale in 0.1f64..10.0,
        shift in -100.0f64..100.0,
    ) {
        let y: Vec<f64> = x.iter().map(|v| v * 2.0 + 1.0).collect();
        let x2: Vec<f64> = x.iter().map(|v| v * scale + shift).collect();
        if let (Some(a), Some(b)) = (pearson(&x, &y), pearson(&x2, &y)) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn autocorrelation_lag0_is_one(x in prop::collection::vec(-100.0f64..100.0, 2..100)) {
        if let Some(r0) = autocorrelation(&x, 0) {
            prop_assert!((r0 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn summary_ordering(x in prop::collection::vec(-1e4f64..1e4, 1..200)) {
        let s = Summary::of(&x).unwrap();
        prop_assert!(s.min <= s.q25 + 1e-9);
        prop_assert!(s.q25 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q75 + 1e-9);
        prop_assert!(s.q75 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std >= 0.0);
        prop_assert_eq!(s.count, x.len());
    }

    #[test]
    fn quantile_monotone(x in prop::collection::vec(-1e3f64..1e3, 1..100), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let mut sorted = x.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile_sorted(&sorted, lo) <= quantile_sorted(&sorted, hi) + 1e-9);
    }

    #[test]
    fn histogram_conserves_mass(x in prop::collection::vec(-10.0f64..10.0, 0..200), bins in 1usize..20) {
        let h = Histogram::new(&x, bins, -10.0, 10.0);
        prop_assert_eq!(h.counts().iter().sum::<usize>(), x.len());
        prop_assert_eq!(h.total(), x.len());
    }

    #[test]
    fn accuracy_bounded_and_consistent(
        labels in prop::collection::vec(0u8..2, 1..100),
        preds in prop::collection::vec(0u8..2, 1..100),
    ) {
        let n = labels.len().min(preds.len());
        let acc = accuracy(&labels[..n], &preds[..n]);
        prop_assert!((0.0..=1.0).contains(&acc));
        let cm = ConfusionMatrix::from_labels(&labels[..n], &preds[..n]);
        prop_assert!((cm.accuracy() - acc).abs() < 1e-12);
        prop_assert_eq!(cm.total(), n);
    }

    #[test]
    fn confusion_metrics_bounded(
        labels in prop::collection::vec(0u8..2, 1..100),
        preds in prop::collection::vec(0u8..2, 1..100),
    ) {
        let n = labels.len().min(preds.len());
        let cm = ConfusionMatrix::from_labels(&labels[..n], &preds[..n]);
        for m in [cm.precision(), cm.recall(), cm.f1()] {
            prop_assert!((0.0..=1.0).contains(&m));
        }
    }

    #[test]
    fn mae_rmse_nonnegative_and_ordered(
        y in prop::collection::vec(-100.0f64..100.0, 1..100),
        p in prop::collection::vec(-100.0f64..100.0, 1..100),
    ) {
        let n = y.len().min(p.len());
        let a = mae(&y[..n], &p[..n]);
        let r = rmse(&y[..n], &p[..n]);
        prop_assert!(a >= 0.0);
        prop_assert!(r >= a - 1e-9, "rmse {r} < mae {a}");
    }

    #[test]
    fn mae_zero_iff_equal(y in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        prop_assert!(mae(&y, &y).abs() < 1e-12);
        prop_assert!(mape(&y, &y).abs() < 1e-9);
        prop_assert!(rmse(&y, &y).abs() < 1e-12);
    }

    #[test]
    fn r2_of_truth_is_one(y in prop::collection::vec(-100.0f64..100.0, 2..50)) {
        if let Some(v) = r2(&y, &y) {
            prop_assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn mae_triangle_with_offset(
        y in prop::collection::vec(-100.0f64..100.0, 1..50),
        offset in -10.0f64..10.0,
    ) {
        // Shifting predictions by a constant changes MAE by at most |offset|.
        let p: Vec<f64> = y.iter().map(|v| v + offset).collect();
        prop_assert!((mae(&y, &p) - offset.abs()).abs() < 1e-9);
    }
}
