//! Pearson correlation (Eq. 7 of the paper), correlation matrices and
//! autocorrelation.

use occusense_tensor::vecops;
use occusense_tensor::Matrix;

/// Pearson's ρ between two equal-length samples (Eq. 7):
/// `ρ = cov(X, Y) / (σ_x σ_y)`.
///
/// Returns `None` when either sample is constant (zero standard deviation)
/// or shorter than two observations — ρ is undefined in those cases.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use occusense_stats::correlation::pearson;
/// let rho = pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]).unwrap();
/// assert!((rho + 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(
        x.len(),
        y.len(),
        "pearson: length mismatch {} vs {}",
        x.len(),
        y.len()
    );
    if x.len() < 2 {
        return None;
    }
    let sx = vecops::std_dev(x);
    let sy = vecops::std_dev(y);
    if sx == 0.0 || sy == 0.0 {
        return None;
    }
    Some(vecops::covariance(x, y) / (sx * sy))
}

/// Full Pearson correlation matrix over the columns of `data`
/// (observations in rows, variables in columns).
///
/// Undefined entries (constant columns) are reported as `f64::NAN`; the
/// diagonal is `1.0` for non-constant columns.
pub fn correlation_matrix(data: &Matrix) -> Matrix {
    let d = data.cols();
    let cols: Vec<Vec<f64>> = (0..d).map(|c| data.col(c)).collect();
    let mut out = Matrix::zeros(d, d);
    for i in 0..d {
        for j in i..d {
            let rho = pearson(&cols[i], &cols[j]).unwrap_or(f64::NAN);
            out[(i, j)] = rho;
            out[(j, i)] = rho;
        }
    }
    out
}

/// Sample autocorrelation of `x` at integer `lag`.
///
/// Uses the standard biased estimator (normalising by the lag-0
/// autocovariance). Returns `None` if the series is constant or if
/// `lag >= x.len()`.
pub fn autocorrelation(x: &[f64], lag: usize) -> Option<f64> {
    if lag >= x.len() {
        return None;
    }
    let m = vecops::mean(x);
    let denom: f64 = x.iter().map(|v| (v - m) * (v - m)).sum();
    if denom == 0.0 {
        return None;
    }
    let num: f64 = x[lag..]
        .iter()
        .zip(&x[..x.len() - lag])
        .map(|(a, b)| (a - m) * (b - m))
        .sum();
    Some(num / denom)
}

/// Pearson ρ between `x` shifted forward by `lag` and `y`, i.e.
/// `corr(x[t-lag], y[t])`. A positive result at positive lag means `x`
/// leads `y`. Returns `None` when undefined.
pub fn lagged_correlation(x: &[f64], y: &[f64], lag: usize) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "lagged_correlation: length mismatch");
    if lag >= x.len() {
        return None;
    }
    pearson(&x[..x.len() - lag], &y[lag..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let down: Vec<f64> = x.iter().map(|v| -2.0 * v + 7.0).collect();
        assert!((pearson(&x, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_for_orthogonal() {
        let x = [1.0, -1.0, 1.0, -1.0];
        let y = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn pearson_undefined_for_constant_or_tiny() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(pearson(&[1.0], &[2.0]).is_none());
        assert!(pearson(&[], &[]).is_none());
    }

    #[test]
    fn pearson_is_within_unit_interval() {
        // Not a formal property test, but a sanity sweep.
        let x: Vec<f64> = (0..50).map(|i| ((i * 13 % 17) as f64).sin()).collect();
        let y: Vec<f64> = (0..50).map(|i| ((i * 7 % 23) as f64).cos()).collect();
        let rho = pearson(&x, &y).unwrap();
        assert!((-1.0..=1.0).contains(&rho));
    }

    #[test]
    fn correlation_matrix_structure() {
        let data = Matrix::from_rows(&[
            &[1.0, 2.0, 5.0],
            &[2.0, 4.0, 5.0],
            &[3.0, 6.0, 5.0],
            &[4.0, 8.0, 5.0],
        ]);
        let c = correlation_matrix(&data);
        assert_eq!(c.shape(), (3, 3));
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 1.0).abs() < 1e-12);
        assert_eq!(c[(0, 1)], c[(1, 0)]);
        // Column 2 is constant: undefined everywhere it appears.
        assert!(c[(0, 2)].is_nan());
        assert!(c[(2, 2)].is_nan());
    }

    #[test]
    fn autocorrelation_of_alternating_series() {
        let x = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!((autocorrelation(&x, 0).unwrap() - 1.0).abs() < 1e-12);
        let r1 = autocorrelation(&x, 1).unwrap();
        assert!(r1 < -0.8, "lag-1 autocorr of alternating series: {r1}");
        let r2 = autocorrelation(&x, 2).unwrap();
        assert!(r2 > 0.6, "lag-2 autocorr of alternating series: {r2}");
    }

    #[test]
    fn autocorrelation_edge_cases() {
        assert!(autocorrelation(&[1.0, 1.0, 1.0], 1).is_none());
        assert!(autocorrelation(&[1.0, 2.0], 5).is_none());
    }

    #[test]
    fn lagged_correlation_detects_lead() {
        // y is x delayed by 2 samples.
        let x: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut y = vec![0.0; 40];
        y[2..40].copy_from_slice(&x[..38]);
        let at_lag2 = lagged_correlation(&x, &y, 2).unwrap();
        let at_lag0 = lagged_correlation(&x, &y, 0).unwrap();
        assert!(at_lag2 > 0.99, "lag-2 correlation {at_lag2}");
        assert!(at_lag2 > at_lag0);
    }
}
