//! Descriptive statistics: five-number summaries and histograms.

use occusense_tensor::vecops;

/// Summary statistics of a sample, as reported when profiling the dataset
/// (Table III reports per-fold min/max temperature and humidity).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Lower quartile (linear interpolation).
    pub q25: f64,
    /// Median (linear interpolation).
    pub median: f64,
    /// Upper quartile (linear interpolation).
    pub q75: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over `data`.
    ///
    /// Returns `None` for an empty slice.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_stats::descriptive::Summary;
    /// let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
    /// assert_eq!(s.min, 1.0);
    /// assert_eq!(s.max, 4.0);
    /// assert_eq!(s.median, 2.5);
    /// ```
    pub fn of(data: &[f64]) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN data"));
        Some(Self {
            count: data.len(),
            mean: vecops::mean(data),
            std: vecops::std_dev(data),
            min: sorted[0],
            q25: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q75: quantile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
        })
    }
}

/// Linear-interpolation quantile of an already sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// A fixed-width histogram over a closed range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    total: usize,
}

impl Histogram {
    /// Builds a histogram of `data` with `bins` equal-width bins spanning
    /// `[lo, hi]`. Values outside the range are clamped into the edge bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(data: &[f64], bins: usize, lo: f64, hi: f64) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range is empty: {lo}..{hi}");
        let mut counts = vec![0usize; bins];
        let width = (hi - lo) / bins as f64;
        for &x in data {
            let idx = (((x - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
            counts[idx] += 1;
        }
        Self {
            lo,
            hi,
            counts,
            total: data.len(),
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Fraction of observations in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// `(lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin {i} out of bounds");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_of_single_value() {
        let s = Summary::of(&[3.0]).unwrap();
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q25, 3.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [0.0, 1.0, 2.0, 3.0];
        assert!((quantile_sorted(&sorted, 0.5) - 1.5).abs() < 1e-12);
        assert_eq!(quantile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 3.0);
        assert!((quantile_sorted(&sorted, 1.0 / 3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range() {
        quantile_sorted(&[1.0], 1.5);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let h = Histogram::new(&[-1.0, 0.1, 0.5, 0.9, 2.0], 2, 0.0, 1.0);
        // -1.0 clamps into bin 0; 2.0 clamps into bin 1; 0.5 opens bin 1.
        assert_eq!(h.counts(), &[2, 3]);
        assert_eq!(h.total(), 5);
        assert!((h.fraction(0) - 0.4).abs() < 1e-12);
        assert_eq!(h.bin_edges(1), (0.5, 1.0));
    }

    #[test]
    fn histogram_empty_data() {
        let h = Histogram::new(&[], 4, 0.0, 1.0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.fraction(0), 0.0);
    }
}
