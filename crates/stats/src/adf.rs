//! Augmented Dickey–Fuller (ADF) unit-root test.
//!
//! The paper (§V-A) tests every CSI subcarrier series plus the humidity and
//! temperature series for stationarity before running the correlation
//! analysis, citing Cheung & Lai \[26\] for lag order and critical values.
//!
//! The regression estimated here is the standard augmented form
//!
//! ```text
//! Δy_t = c (+ δ·t) + γ·y_{t-1} + Σ_{i=1..p} φ_i Δy_{t-i} + ε_t
//! ```
//!
//! with the null hypothesis `γ = 0` (unit root, non-stationary) rejected
//! when the t-statistic on `γ` falls below the MacKinnon critical value.

use occusense_tensor::{linalg, vecops, Matrix};
use std::error::Error;
use std::fmt;

/// Deterministic terms included in the ADF regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Regression {
    /// No deterministic terms (pure random walk null).
    None,
    /// Constant only — the paper's setting for level series.
    #[default]
    Constant,
    /// Constant and linear trend.
    ConstantTrend,
}

/// How the number of lagged difference terms is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LagSelection {
    /// Use exactly this many lags.
    Fixed(usize),
    /// Search `0..=p_max` (Schwert rule `p_max = 12 (T/100)^{1/4}`) and
    /// pick the lag order minimising the Akaike information criterion.
    #[default]
    Aic,
}

/// Significance levels for which MacKinnon critical values are provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Significance {
    /// 1 % level.
    One,
    /// 5 % level.
    Five,
    /// 10 % level.
    Ten,
}

/// Outcome of an ADF test.
#[derive(Debug, Clone, PartialEq)]
pub struct AdfResult {
    /// The t-statistic on `γ` (the coefficient of `y_{t-1}`).
    pub statistic: f64,
    /// Number of lagged difference terms used.
    pub lags: usize,
    /// Effective number of observations in the regression.
    pub n_obs: usize,
    /// Regression specification that was used.
    pub regression: Regression,
    /// Critical values at the 1 %, 5 % and 10 % levels.
    pub critical_values: [f64; 3],
}

impl AdfResult {
    /// Critical value at the given significance level.
    pub fn critical_value(&self, level: Significance) -> f64 {
        match level {
            Significance::One => self.critical_values[0],
            Significance::Five => self.critical_values[1],
            Significance::Ten => self.critical_values[2],
        }
    }

    /// Whether the unit-root null is rejected at the given level, i.e.
    /// whether the series is judged **stationary**.
    pub fn is_stationary(&self, level: Significance) -> bool {
        self.statistic < self.critical_value(level)
    }
}

impl fmt::Display for AdfResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ADF t={:.4} (lags={}, n={}, cv1%={:.3}, cv5%={:.3}, cv10%={:.3})",
            self.statistic,
            self.lags,
            self.n_obs,
            self.critical_values[0],
            self.critical_values[1],
            self.critical_values[2]
        )
    }
}

/// Error returned by [`adf_test`].
#[derive(Debug, Clone, PartialEq)]
pub enum AdfError {
    /// The series is too short for the requested lag order.
    TooShort {
        /// Observations provided.
        n: usize,
        /// Observations required.
        required: usize,
    },
    /// The regression design matrix was rank deficient (e.g. a constant
    /// series).
    Degenerate,
}

impl fmt::Display for AdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdfError::TooShort { n, required } => {
                write!(
                    f,
                    "series too short for ADF: {n} observations, need {required}"
                )
            }
            AdfError::Degenerate => write!(f, "degenerate ADF regression (constant series?)"),
        }
    }
}

impl Error for AdfError {}

/// Runs the ADF test on `y`.
///
/// # Errors
///
/// Returns [`AdfError::TooShort`] if the series cannot support the
/// requested lag order, and [`AdfError::Degenerate`] for constant series.
///
/// # Example
///
/// ```
/// use occusense_stats::adf::{adf_test, LagSelection, Regression, Significance};
///
/// // White noise is stationary.
/// let noise: Vec<f64> = (0..400).map(|i| ((i * 2654435761u64 as usize) % 97) as f64).collect();
/// let res = adf_test(&noise, Regression::Constant, LagSelection::Fixed(2))?;
/// assert!(res.is_stationary(Significance::Five));
/// # Ok::<(), occusense_stats::adf::AdfError>(())
/// ```
pub fn adf_test(
    y: &[f64],
    regression: Regression,
    lag_selection: LagSelection,
) -> Result<AdfResult, AdfError> {
    match lag_selection {
        LagSelection::Fixed(p) => adf_fixed(y, regression, p),
        LagSelection::Aic => {
            let p_max = schwert_max_lag(y.len());
            let mut best: Option<(f64, AdfResult)> = None;
            for p in 0..=p_max {
                let Ok((res, aic)) = adf_fixed_with_aic(y, regression, p) else {
                    continue;
                };
                match &best {
                    Some((best_aic, _)) if aic >= *best_aic => {}
                    _ => best = Some((aic, res)),
                }
            }
            best.map(|(_, r)| r).ok_or(AdfError::Degenerate)
        }
    }
}

/// Schwert (1989) rule of thumb for the maximum lag order:
/// `floor(12 * (T/100)^{1/4})`.
pub fn schwert_max_lag(n: usize) -> usize {
    (12.0 * (n as f64 / 100.0).powf(0.25)).floor() as usize
}

fn adf_fixed(y: &[f64], regression: Regression, p: usize) -> Result<AdfResult, AdfError> {
    adf_fixed_with_aic(y, regression, p).map(|(r, _)| r)
}

fn adf_fixed_with_aic(
    y: &[f64],
    regression: Regression,
    p: usize,
) -> Result<(AdfResult, f64), AdfError> {
    let det_terms = match regression {
        Regression::None => 0,
        Regression::Constant => 1,
        Regression::ConstantTrend => 2,
    };
    let k = det_terms + 1 + p; // deterministic + y_{t-1} + p lagged diffs
    let dy = vecops::diff(y);
    // Usable observations: t runs from p+1 .. dy.len() (0-based into dy).
    if dy.len() < p + k + 2 {
        return Err(AdfError::TooShort {
            n: y.len(),
            required: p + k + 4,
        });
    }
    let n = dy.len() - p;
    let mut x = Matrix::zeros(n, k);
    let mut b = vec![0.0; n];
    for row in 0..n {
        let t = row + p; // index into dy
        b[row] = dy[t];
        let mut c = 0;
        if det_terms >= 1 {
            x[(row, c)] = 1.0;
            c += 1;
        }
        if det_terms == 2 {
            x[(row, c)] = (row + 1) as f64;
            c += 1;
        }
        // y_{t-1} in original series: y[t] because dy[t] = y[t+1] - y[t].
        x[(row, c)] = y[t];
        c += 1;
        for lag in 1..=p {
            x[(row, c)] = dy[t - lag];
            c += 1;
        }
    }

    let qr = linalg::qr(&x).map_err(|_| AdfError::Degenerate)?;
    let qtb = qr.q.transpose().matvec(&b);
    let beta = linalg::solve_upper_triangular(&qr.r, &qtb).map_err(|_| AdfError::Degenerate)?;

    // Residual variance.
    let pred = x.matvec(&beta);
    let ssr: f64 = b.iter().zip(&pred).map(|(y, p)| (y - p) * (y - p)).sum();
    let dof = n.saturating_sub(k);
    if dof == 0 {
        return Err(AdfError::TooShort {
            n: y.len(),
            required: y.len() + k,
        });
    }
    let sigma2 = ssr / dof as f64;

    // Standard error of the gamma coefficient: sqrt(sigma2 * (X'X)^{-1}_gg)
    // with (X'X)^{-1} = R^{-1} R^{-T}; the gg diagonal entry equals
    // ||R^{-T} e_g||^2, obtained by forward-solving R^T v = e_g.
    let g = det_terms; // column index of y_{t-1}
    let v = solve_lower_from_upper_transposed(&qr.r, g).ok_or(AdfError::Degenerate)?;
    let var_gg = vecops::dot(&v, &v);
    let se = (sigma2 * var_gg).sqrt();
    if !se.is_finite() || se == 0.0 {
        return Err(AdfError::Degenerate);
    }
    let statistic = beta[g] / se;

    // AIC with Gaussian likelihood: n ln(ssr/n) + 2k.
    let aic = n as f64 * (ssr / n as f64).max(f64::MIN_POSITIVE).ln() + 2.0 * k as f64;

    let critical_values = mackinnon_critical_values(regression, n);
    Ok((
        AdfResult {
            statistic,
            lags: p,
            n_obs: n,
            regression,
            critical_values,
        },
        aic,
    ))
}

/// Solves `R^T v = e_col` where `R` is upper triangular (so `R^T` is lower
/// triangular), by forward substitution. Returns `None` on zero pivot.
fn solve_lower_from_upper_transposed(r: &Matrix, col: usize) -> Option<Vec<f64>> {
    let n = r.rows();
    let mut v = vec![0.0; n];
    for i in 0..n {
        let mut s = if i == col { 1.0 } else { 0.0 };
        for j in 0..i {
            // (R^T)[i][j] = R[j][i]
            s -= r[(j, i)] * v[j];
        }
        let d = r[(i, i)];
        if d.abs() < 1e-300 {
            return None;
        }
        v[i] = s / d;
    }
    Some(v)
}

/// MacKinnon (2010) response-surface critical values at the 1 %, 5 % and
/// 10 % levels for the given regression specification and sample size.
pub fn mackinnon_critical_values(regression: Regression, n: usize) -> [f64; 3] {
    let t = n as f64;
    let poly = |b0: f64, b1: f64, b2: f64, b3: f64| b0 + b1 / t + b2 / (t * t) + b3 / (t * t * t);
    match regression {
        Regression::None => [
            poly(-2.56574, -2.2358, -3.627, 0.0),
            poly(-1.94100, -0.2686, -3.365, 31.223),
            poly(-1.61682, 0.2656, -2.714, 25.364),
        ],
        Regression::Constant => [
            poly(-3.43035, -6.5393, -16.786, -79.433),
            poly(-2.86154, -2.8903, -4.234, -40.040),
            poly(-2.56677, -1.5384, -2.809, 0.0),
        ],
        Regression::ConstantTrend => [
            poly(-3.95877, -9.0531, -28.428, -134.155),
            poly(-3.41049, -4.3904, -9.036, -45.374),
            poly(-3.12705, -2.5856, -3.925, -22.380),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn random_walk(n: usize, seed: u64) -> Vec<f64> {
        let noise = white_noise(n, seed);
        let mut y = Vec::with_capacity(n);
        let mut acc = 0.0;
        for e in noise {
            acc += e;
            y.push(acc);
        }
        y
    }

    #[test]
    fn white_noise_is_stationary() {
        let y = white_noise(500, 1);
        let res = adf_test(&y, Regression::Constant, LagSelection::Fixed(3)).unwrap();
        assert!(res.is_stationary(Significance::One), "{res}");
    }

    #[test]
    fn random_walk_is_not_stationary() {
        let y = random_walk(500, 2);
        let res = adf_test(&y, Regression::Constant, LagSelection::Fixed(3)).unwrap();
        assert!(!res.is_stationary(Significance::Ten), "{res}");
    }

    #[test]
    fn ar1_with_small_phi_is_stationary() {
        // y_t = 0.5 y_{t-1} + e_t is strongly stationary.
        let e = white_noise(600, 3);
        let mut y = vec![0.0];
        for t in 1..600 {
            y.push(0.5 * y[t - 1] + e[t]);
        }
        let res = adf_test(&y, Regression::Constant, LagSelection::Aic).unwrap();
        assert!(res.is_stationary(Significance::One), "{res}");
    }

    #[test]
    fn near_unit_root_is_borderline_but_walk_more_extreme() {
        let e = white_noise(400, 4);
        let mut near = vec![0.0];
        for t in 1..400 {
            near.push(0.99 * near[t - 1] + e[t]);
        }
        let res_near = adf_test(&near, Regression::Constant, LagSelection::Fixed(2)).unwrap();
        let res_walk = adf_test(
            &random_walk(400, 4),
            Regression::Constant,
            LagSelection::Fixed(2),
        )
        .unwrap();
        // Both should look much less stationary than white noise.
        let res_noise = adf_test(
            &white_noise(400, 4),
            Regression::Constant,
            LagSelection::Fixed(2),
        )
        .unwrap();
        assert!(res_noise.statistic < res_near.statistic);
        assert!(res_noise.statistic < res_walk.statistic);
    }

    #[test]
    fn trend_stationary_series_needs_trend_term() {
        // y_t = 0.05 t + stationary noise: with a trend term the noise is
        // detected as stationary around the trend.
        let e = white_noise(500, 5);
        let y: Vec<f64> = e
            .iter()
            .enumerate()
            .map(|(t, v)| 0.05 * t as f64 + v)
            .collect();
        let with_trend = adf_test(&y, Regression::ConstantTrend, LagSelection::Fixed(2)).unwrap();
        assert!(with_trend.is_stationary(Significance::Five), "{with_trend}");
    }

    #[test]
    fn aic_selection_returns_reasonable_lags() {
        let y = white_noise(300, 6);
        let res = adf_test(&y, Regression::Constant, LagSelection::Aic).unwrap();
        assert!(res.lags <= schwert_max_lag(300));
    }

    #[test]
    fn constant_series_is_degenerate() {
        let y = vec![5.0; 100];
        let err = adf_test(&y, Regression::Constant, LagSelection::Fixed(1)).unwrap_err();
        assert_eq!(err, AdfError::Degenerate);
    }

    #[test]
    fn short_series_errors() {
        let y = [1.0, 2.0, 3.0];
        let err = adf_test(&y, Regression::Constant, LagSelection::Fixed(5)).unwrap_err();
        assert!(matches!(err, AdfError::TooShort { .. }));
    }

    #[test]
    fn critical_values_are_ordered_and_near_asymptotic() {
        let cv = mackinnon_critical_values(Regression::Constant, 1_000_000);
        assert!((cv[0] + 3.430).abs() < 0.01);
        assert!((cv[1] + 2.862).abs() < 0.01);
        assert!((cv[2] + 2.567).abs() < 0.01);
        assert!(cv[0] < cv[1] && cv[1] < cv[2]);
        let cv_small = mackinnon_critical_values(Regression::Constant, 50);
        // Small samples are more conservative (more negative).
        assert!(cv_small[0] < cv[0]);
    }

    #[test]
    fn schwert_rule_examples() {
        assert_eq!(schwert_max_lag(100), 12);
        assert_eq!(schwert_max_lag(25), 8);
        assert_eq!(schwert_max_lag(1600), 24);
    }

    #[test]
    fn display_contains_key_fields() {
        let y = white_noise(200, 9);
        let res = adf_test(&y, Regression::Constant, LagSelection::Fixed(1)).unwrap();
        let s = res.to_string();
        assert!(s.contains("ADF t="));
        assert!(s.contains("lags=1"));
    }

    #[test]
    fn result_accessors() {
        let y = white_noise(200, 10);
        let res = adf_test(&y, Regression::Constant, LagSelection::Fixed(0)).unwrap();
        assert_eq!(
            res.critical_value(Significance::One),
            res.critical_values[0]
        );
        assert_eq!(
            res.critical_value(Significance::Five),
            res.critical_values[1]
        );
        assert_eq!(
            res.critical_value(Significance::Ten),
            res.critical_values[2]
        );
        assert_eq!(res.regression, Regression::Constant);
    }
}
