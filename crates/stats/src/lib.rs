//! # occusense-stats
//!
//! Statistical substrate for the `occusense` workspace: everything §V-A of
//! the paper ("data profiling") and §II-B ("performance measurement
//! metrics") needs.
//!
//! * [`descriptive`] — five-number summaries and histograms used when
//!   profiling the simulated CSI / temperature / humidity series.
//! * [`correlation`] — Pearson's ρ (Eq. 7 of the paper), correlation
//!   matrices over datasets, and autocorrelation.
//! * [`adf`] — the Augmented Dickey–Fuller unit-root test \[26\] with
//!   automatic lag selection and MacKinnon critical-value response
//!   surfaces, used to establish stationarity before correlating raw data.
//! * [`metrics`] — classification metrics (accuracy for Table IV,
//!   precision/recall/F1, confusion matrices) and regression metrics
//!   (MAE/MAPE of Eq. 2–3 for Table V, plus RMSE and R²).
//!
//! # Example
//!
//! ```
//! use occusense_stats::correlation::pearson;
//!
//! let x = [1.0, 2.0, 3.0, 4.0];
//! let y = [2.0, 4.0, 6.0, 8.0];
//! assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod adf;
pub mod correlation;
pub mod descriptive;
pub mod metrics;
