//! Classification and regression metrics.
//!
//! * Accuracy / precision / recall / F1 and confusion matrices back the
//!   occupancy-detection evaluation (Table IV).
//! * MAE (Eq. 2) and MAPE (Eq. 3) back the humidity/temperature regression
//!   evaluation (Table V); RMSE and R² are provided for completeness.

use std::fmt;

/// The ε of Eq. 3, guarding MAPE against division by zero.
pub const MAPE_EPSILON: f64 = 1e-9;

/// Binary confusion matrix for the occupancy labels
/// (`0` = empty, `1` = occupied).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Occupied predicted occupied.
    pub tp: usize,
    /// Empty predicted occupied.
    pub fp: usize,
    /// Empty predicted empty.
    pub tn: usize,
    /// Occupied predicted empty.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from parallel label slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or contain labels other
    /// than `0` and `1`.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_stats::metrics::ConfusionMatrix;
    /// let cm = ConfusionMatrix::from_labels(&[1, 1, 0, 0], &[1, 0, 0, 1]);
    /// assert_eq!(cm.tp, 1);
    /// assert_eq!(cm.fn_, 1);
    /// assert_eq!(cm.tn, 1);
    /// assert_eq!(cm.fp, 1);
    /// assert_eq!(cm.accuracy(), 0.5);
    /// ```
    pub fn from_labels(y_true: &[u8], y_pred: &[u8]) -> Self {
        assert_eq!(
            y_true.len(),
            y_pred.len(),
            "confusion matrix: length mismatch {} vs {}",
            y_true.len(),
            y_pred.len()
        );
        let mut cm = Self::default();
        for (&t, &p) in y_true.iter().zip(y_pred) {
            assert!(t <= 1 && p <= 1, "labels must be 0 or 1, got ({t}, {p})");
            match (t, p) {
                (1, 1) => cm.tp += 1,
                (0, 1) => cm.fp += 1,
                (0, 0) => cm.tn += 1,
                (1, 0) => cm.fn_ += 1,
                _ => unreachable!(),
            }
        }
        cm
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction of correct predictions; `0.0` when empty.
    pub fn accuracy(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / n as f64
        }
    }

    /// Positive-class precision `tp / (tp + fp)`; `0.0` when no positive
    /// predictions were made.
    pub fn precision(&self) -> f64 {
        let d = self.tp + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Positive-class recall `tp / (tp + fn)`; `0.0` when no positives
    /// exist.
    pub fn recall(&self) -> f64 {
        let d = self.tp + self.fn_;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Harmonic mean of precision and recall; `0.0` when both are zero.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp={} fp={} tn={} fn={} (acc {:.2}%)",
            self.tp,
            self.fp,
            self.tn,
            self.fn_,
            100.0 * self.accuracy()
        )
    }
}

/// Multi-class confusion matrix, used by the occupant-counting and
/// activity-recognition extensions (the paper's §VI future work).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiConfusion {
    n_classes: usize,
    /// Row-major counts: `counts[true * n_classes + predicted]`.
    counts: Vec<usize>,
}

impl MultiConfusion {
    /// Builds a `k × k` confusion matrix from parallel label slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths, `n_classes == 0`, or
    /// any label is `>= n_classes`.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_stats::metrics::MultiConfusion;
    /// let cm = MultiConfusion::from_labels(3, &[0, 1, 2, 1], &[0, 1, 1, 1]);
    /// assert_eq!(cm.accuracy(), 0.75);
    /// assert_eq!(cm.count(2, 1), 1);
    /// ```
    pub fn from_labels(n_classes: usize, y_true: &[usize], y_pred: &[usize]) -> Self {
        assert!(n_classes > 0, "need at least one class");
        assert_eq!(
            y_true.len(),
            y_pred.len(),
            "multi confusion: length mismatch"
        );
        let mut counts = vec![0usize; n_classes * n_classes];
        for (&t, &p) in y_true.iter().zip(y_pred) {
            assert!(
                t < n_classes && p < n_classes,
                "label out of range: ({t}, {p})"
            );
            counts[t * n_classes + p] += 1;
        }
        Self { n_classes, counts }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Count of samples with true class `t` predicted as `p`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn count(&self, t: usize, p: usize) -> usize {
        assert!(
            t < self.n_classes && p < self.n_classes,
            "index out of range"
        );
        self.counts[t * self.n_classes + p]
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy; `0.0` when empty.
    pub fn accuracy(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.n_classes).map(|c| self.count(c, c)).sum();
        correct as f64 / n as f64
    }

    /// Recall of class `c` (`None` if the class has no true samples).
    pub fn recall(&self, c: usize) -> Option<f64> {
        let row: usize = (0..self.n_classes).map(|p| self.count(c, p)).sum();
        (row > 0).then(|| self.count(c, c) as f64 / row as f64)
    }

    /// Precision of class `c` (`None` if the class was never predicted).
    pub fn precision(&self, c: usize) -> Option<f64> {
        let col: usize = (0..self.n_classes).map(|t| self.count(t, c)).sum();
        (col > 0).then(|| self.count(c, c) as f64 / col as f64)
    }

    /// Unweighted mean of the defined per-class recalls (macro recall).
    pub fn macro_recall(&self) -> f64 {
        let recalls: Vec<f64> = (0..self.n_classes).filter_map(|c| self.recall(c)).collect();
        if recalls.is_empty() {
            0.0
        } else {
            recalls.iter().sum::<f64>() / recalls.len() as f64
        }
    }

    /// F1 score of class `c`: harmonic mean of precision and recall.
    /// `None` if the class neither appears in truth nor was predicted
    /// (both ingredients undefined); a class seen on only one side gets
    /// `Some(0.0)` because the other ingredient is an implicit zero.
    pub fn f1(&self, c: usize) -> Option<f64> {
        match (self.precision(c), self.recall(c)) {
            (None, None) => None,
            (Some(p), Some(r)) if p + r > 0.0 => Some(2.0 * p * r / (p + r)),
            _ => Some(0.0),
        }
    }

    /// Unweighted mean of the defined per-class F1 scores (macro F1).
    pub fn macro_f1(&self) -> f64 {
        let f1s: Vec<f64> = (0..self.n_classes).filter_map(|c| self.f1(c)).collect();
        if f1s.is_empty() {
            0.0
        } else {
            f1s.iter().sum::<f64>() / f1s.len() as f64
        }
    }
}

impl fmt::Display for MultiConfusion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "confusion ({} classes, rows = truth):", self.n_classes)?;
        for t in 0..self.n_classes {
            write!(f, "  {t}:")?;
            for p in 0..self.n_classes {
                write!(f, " {:>7}", self.count(t, p))?;
            }
            writeln!(f)?;
        }
        write!(f, "accuracy {:.2}%", 100.0 * self.accuracy())
    }
}

/// Classification accuracy over parallel label slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(y_true: &[u8], y_pred: &[u8]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "accuracy: length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    let correct = y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count();
    correct as f64 / y_true.len() as f64
}

/// Mean Absolute Error (Eq. 2): `MAE = (1/N) Σ |y - ŷ|`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "mae: length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(y, p)| (y - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Mean Absolute Percentage Error (Eq. 3), reported in percent:
/// `MAPE = (100/N) Σ |y - ŷ| / max(ε, |y|)`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mape(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "mape: length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    100.0
        * y_true
            .iter()
            .zip(y_pred)
            .map(|(y, p)| (y - p).abs() / y.abs().max(MAPE_EPSILON))
            .sum::<f64>()
        / y_true.len() as f64
}

/// Root Mean Squared Error.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "rmse: length mismatch");
    if y_true.is_empty() {
        return 0.0;
    }
    (y_true
        .iter()
        .zip(y_pred)
        .map(|(y, p)| (y - p) * (y - p))
        .sum::<f64>()
        / y_true.len() as f64)
        .sqrt()
}

/// Coefficient of determination R². Returns `f64::NEG_INFINITY`-style
/// negative values for models worse than predicting the mean; `None` if the
/// true values are constant (undefined).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> Option<f64> {
    assert_eq!(y_true.len(), y_pred.len(), "r2: length mismatch");
    if y_true.is_empty() {
        return None;
    }
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|y| (y - mean) * (y - mean)).sum();
    if ss_tot == 0.0 {
        return None;
    }
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(y, p)| (y - p) * (y - p))
        .sum();
    Some(1.0 - ss_res / ss_tot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn confusion_counts_and_derived_metrics() {
        let y_true = [1, 1, 1, 1, 0, 0, 0, 0, 0, 0];
        let y_pred = [1, 1, 1, 0, 0, 0, 0, 0, 1, 1];
        let cm = ConfusionMatrix::from_labels(&y_true, &y_pred);
        assert_eq!(cm.tp, 3);
        assert_eq!(cm.fn_, 1);
        assert_eq!(cm.tn, 4);
        assert_eq!(cm.fp, 2);
        approx(cm.accuracy(), 0.7);
        approx(cm.precision(), 3.0 / 5.0);
        approx(cm.recall(), 3.0 / 4.0);
        let p = 0.6;
        let r = 0.75;
        approx(cm.f1(), 2.0 * p * r / (p + r));
        assert_eq!(cm.total(), 10);
    }

    #[test]
    fn confusion_degenerate_cases() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1(), 0.0);

        // All negative, all predicted negative: precision/recall undefined->0.
        let cm = ConfusionMatrix::from_labels(&[0, 0], &[0, 0]);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
    }

    #[test]
    #[should_panic(expected = "labels must be 0 or 1")]
    fn confusion_rejects_multiclass() {
        ConfusionMatrix::from_labels(&[2], &[0]);
    }

    #[test]
    fn accuracy_function_matches_confusion() {
        let y_true = [1, 0, 1, 0];
        let y_pred = [1, 1, 1, 0];
        approx(
            accuracy(&y_true, &y_pred),
            ConfusionMatrix::from_labels(&y_true, &y_pred).accuracy(),
        );
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn mae_known_values() {
        approx(mae(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
        approx(mae(&[1.0, 2.0], &[2.0, 4.0]), 1.5);
        assert_eq!(mae(&[], &[]), 0.0);
    }

    #[test]
    fn mape_known_values() {
        // 50% error on each of two samples.
        approx(mape(&[2.0, 4.0], &[1.0, 2.0]), 50.0);
        // Zero target guarded by epsilon: huge but finite.
        let m = mape(&[0.0], &[1.0]);
        assert!(m.is_finite() && m > 1e9);
        assert_eq!(mape(&[], &[]), 0.0);
    }

    #[test]
    fn mape_scale_invariance() {
        // Eq. 3 is invariant to global scaling of both vectors.
        let y = [2.0, 4.0, 8.0];
        let p = [1.0, 5.0, 6.0];
        let y10: Vec<f64> = y.iter().map(|v| v * 10.0).collect();
        let p10: Vec<f64> = p.iter().map(|v| v * 10.0).collect();
        approx(mape(&y, &p), mape(&y10, &p10));
    }

    #[test]
    fn rmse_known_values() {
        approx(rmse(&[0.0, 0.0], &[3.0, 4.0]), (12.5f64).sqrt());
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn rmse_dominates_mae() {
        let y = [0.0, 0.0, 0.0, 0.0];
        let p = [0.0, 0.0, 0.0, 4.0];
        assert!(rmse(&y, &p) >= mae(&y, &p));
    }

    #[test]
    fn r2_perfect_and_mean_predictors() {
        let y = [1.0, 2.0, 3.0, 4.0];
        approx(r2(&y, &y).unwrap(), 1.0);
        let mean_pred = [2.5; 4];
        approx(r2(&y, &mean_pred).unwrap(), 0.0);
        // Worse than the mean: negative.
        assert!(r2(&y, &[4.0, 3.0, 2.0, 1.0]).unwrap() < 0.0);
        // Constant target: undefined.
        assert!(r2(&[1.0, 1.0], &[1.0, 2.0]).is_none());
        assert!(r2(&[], &[]).is_none());
    }

    #[test]
    fn display_includes_accuracy() {
        let cm = ConfusionMatrix::from_labels(&[1, 0], &[1, 0]);
        assert!(cm.to_string().contains("100.00%"));
    }

    #[test]
    fn multi_confusion_counts_and_accuracy() {
        let cm = MultiConfusion::from_labels(3, &[0, 0, 1, 2, 2, 2], &[0, 1, 1, 2, 2, 0]);
        assert_eq!(cm.total(), 6);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(2, 0), 1);
        approx(cm.accuracy(), 4.0 / 6.0);
        approx(cm.recall(2).unwrap(), 2.0 / 3.0);
        approx(cm.precision(1).unwrap(), 0.5);
        assert_eq!(cm.n_classes(), 3);
    }

    #[test]
    fn multi_confusion_undefined_classes() {
        // Class 2 never appears in truth; class 1 never predicted.
        let cm = MultiConfusion::from_labels(3, &[0, 0, 1], &[0, 0, 0]);
        assert!(cm.recall(2).is_none());
        assert!(cm.precision(1).is_none());
        // Macro recall averages only the defined ones: 1.0 and 0.0.
        approx(cm.macro_recall(), 0.5);
    }

    #[test]
    fn multi_confusion_f1_matches_hand_computation() {
        let cm = MultiConfusion::from_labels(3, &[0, 0, 1, 2, 2, 2], &[0, 1, 1, 2, 2, 0]);
        // Class 0: precision 1/2, recall 1/2 → f1 = 1/2.
        approx(cm.f1(0).unwrap(), 0.5);
        // Class 1: precision 1/2, recall 1 → f1 = 2/3.
        approx(cm.f1(1).unwrap(), 2.0 / 3.0);
        // Class 2: precision 1, recall 2/3 → f1 = 4/5.
        approx(cm.f1(2).unwrap(), 0.8);
        approx(cm.macro_f1(), (0.5 + 2.0 / 3.0 + 0.8) / 3.0);
    }

    #[test]
    fn multi_confusion_f1_undefined_and_zero_cases() {
        // Class 2 absent on both sides → None; class 1 present in truth
        // but never predicted → Some(0.0).
        let cm = MultiConfusion::from_labels(3, &[0, 0, 1], &[0, 0, 0]);
        assert!(cm.f1(2).is_none());
        approx(cm.f1(1).unwrap(), 0.0);
        // Perfect class 0 (f1 = 2·(2/3)·1/(2/3+1) = 0.8) averaged with 0.
        approx(cm.macro_f1(), (0.8 + 0.0) / 2.0);
    }

    #[test]
    fn multi_confusion_agrees_with_binary() {
        let yt = [1u8, 1, 0, 0, 1];
        let yp = [1u8, 0, 0, 1, 1];
        let b = ConfusionMatrix::from_labels(&yt, &yp);
        let m = MultiConfusion::from_labels(
            2,
            &yt.iter().map(|&v| v as usize).collect::<Vec<_>>(),
            &yp.iter().map(|&v| v as usize).collect::<Vec<_>>(),
        );
        approx(b.accuracy(), m.accuracy());
        assert_eq!(b.tp, m.count(1, 1));
        assert_eq!(b.fn_, m.count(1, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn multi_confusion_validates_labels() {
        MultiConfusion::from_labels(2, &[2], &[0]);
    }

    #[test]
    fn multi_confusion_display() {
        let cm = MultiConfusion::from_labels(2, &[0, 1], &[0, 1]);
        let s = cm.to_string();
        assert!(s.contains("accuracy 100.00%"));
        assert!(s.contains("rows = truth"));
    }
}
