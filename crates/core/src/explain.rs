//! Grad-CAM explanations over the detector's input features (Figure 3).

use crate::detector::OccupancyDetector;
use occusense_dataset::features::csi_env_feature_names;
use occusense_dataset::{Dataset, FeatureView};
use occusense_nn::gradcam;

/// Per-input-feature importance of a trained MLP detector, as plotted in
/// Figure 3 of the paper: one (signed) value per CSI subcarrier plus, for
/// the C+E view, temperature (`e`) and humidity (`h`).
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Feature names in plot order.
    pub feature_names: Vec<String>,
    /// Signed importance per feature (gradient×input, batch-averaged).
    pub importance: Vec<f64>,
}

impl Explanation {
    /// Computes the explanation of an MLP detector over an evaluation
    /// dataset. Returns `None` for non-MLP detectors (Grad-CAM needs
    /// gradients).
    pub fn of(detector: &OccupancyDetector, dataset: &Dataset) -> Option<Self> {
        let mlp = detector.mlp()?;
        let x = detector.features_of(dataset);
        let importance = gradcam::input_attribution(mlp, &x, 1.0);
        let feature_names = match detector.features() {
            FeatureView::CsiEnv => csi_env_feature_names(),
            FeatureView::Csi => (0..64).map(|i| format!("a{i}")).collect(),
            FeatureView::Env => vec!["e".to_owned(), "h".to_owned()],
            FeatureView::TimeOnly => vec!["sin(t)".to_owned(), "cos(t)".to_owned()],
        };
        Some(Self {
            feature_names,
            importance,
        })
    }

    /// Indices of the `k` features with the largest |importance|, most
    /// important first.
    pub fn top_features(&self, k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.importance.len()).collect();
        order.sort_by(|&a, &b| {
            self.importance[b]
                .abs()
                .partial_cmp(&self.importance[a].abs())
                .expect("finite importance")
        });
        order.truncate(k);
        order
    }

    /// Mean |importance| of a span of features (used to compare the CSI
    /// block against the environment block, the paper's headline
    /// finding).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or empty.
    pub fn mean_abs_importance(&self, range: std::ops::Range<usize>) -> f64 {
        assert!(!range.is_empty() && range.end <= self.importance.len());
        let n = range.len();
        self.importance[range].iter().map(|v| v.abs()).sum::<f64>() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorConfig, ModelKind};
    use occusense_sim::{simulate, ScenarioConfig};

    fn trained_mlp_detector() -> (OccupancyDetector, Dataset) {
        let ds = simulate(&ScenarioConfig::quick(1600.0, 55));
        let split = (ds.len() * 7) / 10;
        let train: Dataset = ds.records()[..split].iter().copied().collect();
        let test: Dataset = ds.records()[split..].iter().copied().collect();
        let det = OccupancyDetector::train(
            &train,
            &DetectorConfig {
                model: ModelKind::Mlp,
                features: FeatureView::CsiEnv,
                mlp_epochs: 5,
                ..DetectorConfig::default()
            },
        );
        (det, test)
    }

    #[test]
    fn explanation_has_66_named_features() {
        let (det, test) = trained_mlp_detector();
        let e = Explanation::of(&det, &test).expect("MLP detector");
        assert_eq!(e.feature_names.len(), 66);
        assert_eq!(e.importance.len(), 66);
        assert_eq!(e.feature_names[0], "a0");
        assert_eq!(e.feature_names[64], "e");
        assert_eq!(e.feature_names[65], "h");
        assert!(e.importance.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn non_mlp_detectors_have_no_explanation() {
        let ds = simulate(&ScenarioConfig::quick(600.0, 56));
        let det = OccupancyDetector::train(
            &ds,
            &DetectorConfig {
                model: ModelKind::LogisticRegression,
                ..DetectorConfig::default()
            },
        );
        assert!(Explanation::of(&det, &ds).is_none());
    }

    #[test]
    fn top_features_are_sorted_by_magnitude() {
        let e = Explanation {
            feature_names: vec!["a".into(), "b".into(), "c".into()],
            importance: vec![0.1, -0.9, 0.5],
        };
        assert_eq!(e.top_features(2), vec![1, 2]);
        assert_eq!(e.top_features(10), vec![1, 2, 0]);
    }

    #[test]
    fn mean_abs_importance_blocks() {
        let e = Explanation {
            feature_names: (0..4).map(|i| format!("f{i}")).collect(),
            importance: vec![1.0, -1.0, 0.0, 0.0],
        };
        assert_eq!(e.mean_abs_importance(0..2), 1.0);
        assert_eq!(e.mean_abs_importance(2..4), 0.0);
    }
}
