//! # occusense-core
//!
//! The top-level library of the `occusense` workspace: a Rust
//! reproduction of *Towards Deep Learning-based Occupancy Detection Via
//! WiFi Sensing in Unconstrained Environments* (DATE 2023).
//!
//! It ties the substrates together into the paper's pipelines:
//!
//! * [`detector`] — [`OccupancyDetector`]: train an MLP (or a logistic
//!   regression / random forest baseline) on any feature subset, predict
//!   and evaluate per fold, never retraining (§V-B / Table IV).
//! * [`regressor`] — [`EnvRegressor`]: estimate humidity and temperature
//!   from CSI with OLS or the neural network (§V-D / Table V).
//! * [`explain`] — [`Explanation`]: Grad-CAM feature importance over the
//!   66 input features (§V-C / Figure 3).
//! * [`temporal`] — [`TemporalDetector`]: a GRU encoder over sliding
//!   CSI windows with a softmax count/presence head, the sequence-model
//!   counterpart of the per-frame counter (multi-room scenarios).
//! * [`sampling`] — stratified training-set subsampling (the simulator
//!   generates hundreds of thousands of rows; models train on a seeded
//!   stratified subsample, documented in EXPERIMENTS.md).
//! * [`experiments`] — one driver per table/figure of the paper,
//!   consumed by the `occusense-bench` repro binaries.
//!
//! # Quickstart
//!
//! ```
//! use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
//! use occusense_core::FeatureView;
//! use occusense_sim::{simulate, ScenarioConfig};
//!
//! // Simulate a short scenario, train on the first 70 %, test on the rest.
//! let ds = simulate(&ScenarioConfig::quick(1200.0, 7));
//! let split = (ds.len() * 7) / 10;
//! let train: occusense_core::Dataset =
//!     ds.records()[..split].iter().copied().collect();
//! let test: occusense_core::Dataset =
//!     ds.records()[split..].iter().copied().collect();
//!
//! let config = DetectorConfig {
//!     model: ModelKind::Mlp,
//!     features: FeatureView::Csi,
//!     ..DetectorConfig::default()
//! };
//! let detector = OccupancyDetector::train(&train, &config);
//! let accuracy = detector.evaluate(&test).accuracy();
//! assert!(accuracy > 0.5);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod activity;
pub mod counting;
pub mod detector;
pub mod experiments;
pub mod explain;
pub mod hash;
pub mod online;
pub mod persist;
pub mod regressor;
pub mod sampling;
pub mod temporal;

pub use activity::{ActivityConfig, ActivityRecognizer};
pub use counting::{CountingConfig, OccupancyCounter};
pub use detector::{DetectorConfig, ModelKind, OccupancyDetector};
pub use explain::Explanation;
pub use regressor::{EnvRegressor, RegressorKind};
pub use temporal::{TemporalConfig, TemporalDetector, TemporalTrainWorkspace, TemporalWorkspace};

// Re-export the substrate crates under one roof for downstream users.
pub use occusense_baselines as baselines;
pub use occusense_channel as channel;
pub use occusense_dataset as dataset;
pub use occusense_nn as nn;
pub use occusense_sim as sim;
pub use occusense_stats as stats;
pub use occusense_tensor as tensor;

pub use occusense_dataset::{CsiRecord, Dataset, FeatureView};
