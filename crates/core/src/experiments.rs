//! Experiment drivers: one function per table/figure of the paper.
//!
//! Each driver consumes a full-window dataset (normally produced by
//! `occusense_sim::simulate(&ScenarioConfig::turetta2022(seed))`) and
//! returns a typed result that the `occusense-bench` repro binaries
//! print side by side with the paper's reported values.

use crate::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use crate::explain::Explanation;
use crate::regressor::{EnvRegressionScores, EnvRegressor, RegressorConfig, RegressorKind};
use occusense_dataset::folds::{split_by_folds, turetta_folds, FoldSpec};
use occusense_dataset::profile::OccupancyProfile;
use occusense_dataset::{Dataset, FeatureView};
use occusense_stats::adf::{adf_test, AdfError, LagSelection, Regression, Significance};
use occusense_stats::correlation::pearson;

/// Shared experiment knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Master seed.
    pub seed: u64,
    /// Stratified cap on every model's training set.
    pub max_train_samples: usize,
    /// MLP / NN epochs (paper: 10).
    pub epochs: usize,
    /// Random-forest size.
    pub n_trees: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            max_train_samples: 40_000,
            epochs: 10,
            n_trees: 30,
        }
    }
}

impl ExperimentConfig {
    /// A much smaller configuration for integration tests.
    pub fn tiny() -> Self {
        Self {
            seed: 0,
            max_train_samples: 3_000,
            epochs: 3,
            n_trees: 8,
        }
    }

    fn detector(&self, model: ModelKind, features: FeatureView) -> DetectorConfig {
        let mut cfg = DetectorConfig {
            model,
            features,
            seed: self.seed,
            max_train_samples: Some(self.max_train_samples),
            mlp_epochs: self.epochs,
            ..DetectorConfig::default()
        };
        cfg.forest.n_trees = self.n_trees;
        cfg
    }
}

// ---------------------------------------------------------------------
// Table II — occupancy distribution.
// ---------------------------------------------------------------------

/// E2: the Table II occupancy-distribution profile of the dataset.
pub fn table2(dataset: &Dataset) -> OccupancyProfile {
    OccupancyProfile::of(dataset, 4)
}

// ---------------------------------------------------------------------
// Table III — fold statistics.
// ---------------------------------------------------------------------

/// One measured row of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldRow {
    /// The fold's timeline spec.
    pub spec: FoldSpec,
    /// Empty-labelled samples in the fold.
    pub empty: usize,
    /// Occupied-labelled samples in the fold.
    pub occupied: usize,
    /// Temperature (min, max) observed in the fold, °C.
    pub temperature: (f64, f64),
    /// Humidity (min, max) observed in the fold, %.
    pub humidity: (f64, f64),
}

/// E3: measured Table III rows (fold 0 = train, 1–5 = test).
pub fn table3(dataset: &Dataset) -> Vec<FoldRow> {
    turetta_folds()
        .into_iter()
        .map(|spec| {
            let fold = spec.slice(dataset);
            let labels = fold.labels();
            let occupied = labels.iter().filter(|&&l| l == 1).count();
            let temps = fold.temperatures();
            let hums = fold.humidities();
            let min_max = |v: &[f64]| {
                (
                    v.iter().copied().fold(f64::INFINITY, f64::min),
                    v.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                )
            };
            FoldRow {
                empty: labels.len() - occupied,
                occupied,
                temperature: min_max(&temps),
                humidity: min_max(&hums),
                spec,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// §V-A — data profiling (stationarity + correlations).
// ---------------------------------------------------------------------

/// E4: the §V-A profiling numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilingReport {
    /// Fraction of the 64 subcarrier series judged stationary at 5 %.
    pub stationary_subcarrier_fraction: f64,
    /// Whether temperature and humidity series are stationary at 5 %.
    pub env_stationary: (bool, bool),
    /// Pearson ρ(temperature, humidity) — paper: 0.45.
    pub rho_temp_humidity: f64,
    /// Pearson ρ(temperature, occupancy) — paper: 0.44.
    pub rho_temp_occupancy: f64,
    /// Pearson ρ(humidity, occupancy) — paper: 0.35.
    pub rho_humidity_occupancy: f64,
    /// Max over subcarriers of |ρ(subcarrier, temperature)| — paper: the
    /// mid-to-high band correlates ~0.20–0.30.
    pub max_subcarrier_env_rho: f64,
    /// Pearson ρ(time-of-day encoding, temperature) magnitude — paper
    /// reports a strong (0.77) time–environment correlation.
    pub rho_time_temperature: f64,
}

/// Runs the §V-A profiling pipeline: dedup/clean checks are assumed done
/// by the caller; series are thinned to at most `max_points` for the ADF
/// regressions (lag order fixed at 4, see EXPERIMENTS.md).
///
/// `start_offset_s` is the wall-clock offset of scenario `t = 0` past
/// midnight (the `turetta2022` campaign starts at 15:08:40), needed so
/// the time-of-day correlation uses true wall-clock time.
pub fn profiling(
    dataset: &Dataset,
    max_points: usize,
    start_offset_s: f64,
) -> Result<ProfilingReport, AdfError> {
    let thin = |v: Vec<f64>| -> Vec<f64> {
        let step = (v.len() / max_points.max(1)).max(1);
        v.into_iter().step_by(step).collect()
    };
    let adf_ok = |v: &[f64]| -> Result<bool, AdfError> {
        match adf_test(v, Regression::Constant, LagSelection::Fixed(4)) {
            Ok(res) => Ok(res.is_stationary(Significance::Five)),
            // Constant (quantised) series have no unit root to find; treat
            // as trivially stationary rather than failing the profile.
            Err(AdfError::Degenerate) => Ok(true),
            Err(e) => Err(e),
        }
    };

    // Environment series revert on an hours timescale, so their ADF
    // regressions need a coarser sampling grid than the CSI series:
    // thinned too finely, the 5-minute sensor lag masquerades as a unit
    // root.
    let thin_env = |v: Vec<f64>| -> Vec<f64> {
        let target = (max_points / 8).max(300);
        let step = (v.len() / target).max(1);
        v.into_iter().step_by(step).collect()
    };
    let temps = dataset.temperatures();
    let hums = dataset.humidities();
    let labels: Vec<f64> = dataset.labels().iter().map(|&l| l as f64).collect();
    let hours: Vec<f64> = dataset
        .iter()
        .map(|r| {
            let wall = (r.timestamp_s + start_offset_s).rem_euclid(86_400.0);
            let day_phase = wall / 86_400.0 * std::f64::consts::TAU;
            // The noon-peaking leg of the daily phase serves as the scalar
            // "time" feature for the correlation (§V-A correlates "the
            // time" with the environmental series).
            -day_phase.cos()
        })
        .collect();

    let mut stationary = 0usize;
    let mut max_env_rho = 0.0f64;
    for k in 0..occusense_dataset::N_SUBCARRIERS {
        let series = dataset.subcarrier_series(k);
        if adf_ok(&thin(series.clone()))? {
            stationary += 1;
        }
        if let Some(rho) = pearson(&series, &temps) {
            max_env_rho = max_env_rho.max(rho.abs());
        }
        if let Some(rho) = pearson(&series, &hums) {
            max_env_rho = max_env_rho.max(rho.abs());
        }
    }

    Ok(ProfilingReport {
        stationary_subcarrier_fraction: stationary as f64 / occusense_dataset::N_SUBCARRIERS as f64,
        env_stationary: (
            adf_ok(&thin_env(temps.clone()))?,
            adf_ok(&thin_env(hums.clone()))?,
        ),
        rho_temp_humidity: pearson(&temps, &hums).unwrap_or(f64::NAN),
        rho_temp_occupancy: pearson(&temps, &labels).unwrap_or(f64::NAN),
        rho_humidity_occupancy: pearson(&hums, &labels).unwrap_or(f64::NAN),
        max_subcarrier_env_rho: max_env_rho,
        rho_time_temperature: pearson(&hours, &temps).unwrap_or(f64::NAN),
    })
}

// ---------------------------------------------------------------------
// Table IV — occupancy detection accuracy.
// ---------------------------------------------------------------------

/// One (model, feature-view) column of Table IV.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Cell {
    /// Model family.
    pub model: ModelKind,
    /// Feature subset.
    pub features: FeatureView,
    /// Accuracy on test folds 1–5 (fractions, not %).
    pub fold_accuracy: [f64; 5],
}

impl Table4Cell {
    /// Mean accuracy over the five folds.
    pub fn average(&self) -> f64 {
        self.fold_accuracy.iter().sum::<f64>() / 5.0
    }
}

/// E5: the full Table IV plus the paper's time-only side note.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// All nine (model × view) cells, in paper order.
    pub cells: Vec<Table4Cell>,
    /// Accuracy of an MLP given only the time of day (paper: 89.3 %).
    pub time_only_accuracy: f64,
}

impl Table4 {
    /// Looks up one cell.
    pub fn cell(&self, model: ModelKind, features: FeatureView) -> Option<&Table4Cell> {
        self.cells
            .iter()
            .find(|c| c.model == model && c.features == features)
    }
}

/// Runs E5: trains each of the nine (model, view) combinations once on
/// fold 0 and evaluates on folds 1–5 without retraining.
pub fn table4(dataset: &Dataset, config: &ExperimentConfig) -> Table4 {
    let (train, tests) = split_by_folds(dataset);
    let mut cells = Vec::with_capacity(9);
    for model in ModelKind::TABLE4 {
        for features in FeatureView::TABLE4 {
            let det = OccupancyDetector::train(&train, &config.detector(model, features));
            let mut fold_accuracy = [0.0; 5];
            for (acc, fold) in fold_accuracy.iter_mut().zip(&tests) {
                *acc = det.evaluate(fold).accuracy();
            }
            cells.push(Table4Cell {
                model,
                features,
                fold_accuracy,
            });
        }
    }
    // Time-only ablation (the paper's 89.3 % note), evaluated over the
    // union of the test folds.
    let det = OccupancyDetector::train(
        &train,
        &config.detector(ModelKind::Mlp, FeatureView::TimeOnly),
    );
    let mut correct = 0usize;
    let mut total = 0usize;
    for fold in &tests {
        let cm = det.evaluate(fold);
        correct += cm.tp + cm.tn;
        total += cm.total();
    }
    Table4 {
        cells,
        time_only_accuracy: correct as f64 / total.max(1) as f64,
    }
}

// ---------------------------------------------------------------------
// Table V — humidity/temperature regression.
// ---------------------------------------------------------------------

/// One model row group of Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// Regressor family.
    pub kind: RegressorKind,
    /// Scores on test folds 1–5.
    pub fold_scores: [EnvRegressionScores; 5],
}

impl Table5Row {
    /// Fold-averaged scores.
    pub fn average(&self) -> EnvRegressionScores {
        let mut avg = EnvRegressionScores {
            mae_temperature: 0.0,
            mae_humidity: 0.0,
            mape_temperature: 0.0,
            mape_humidity: 0.0,
        };
        for s in &self.fold_scores {
            avg.mae_temperature += s.mae_temperature / 5.0;
            avg.mae_humidity += s.mae_humidity / 5.0;
            avg.mape_temperature += s.mape_temperature / 5.0;
            avg.mape_humidity += s.mape_humidity / 5.0;
        }
        avg
    }
}

/// E7: Table V — linear vs neural-network regression of temperature and
/// humidity from CSI, trained on fold 0, evaluated on folds 1–5.
pub fn table5(dataset: &Dataset, config: &ExperimentConfig) -> Vec<Table5Row> {
    let (train, tests) = split_by_folds(dataset);
    [RegressorKind::Linear, RegressorKind::NeuralNetwork]
        .into_iter()
        .map(|kind| {
            let cfg = RegressorConfig {
                kind,
                seed: config.seed,
                max_train_samples: Some(config.max_train_samples),
                epochs: config.epochs,
                ..RegressorConfig::default()
            };
            let model = EnvRegressor::train(&train, &cfg).expect("regressor fit");
            let mut fold_scores = [EnvRegressionScores {
                mae_temperature: 0.0,
                mae_humidity: 0.0,
                mape_temperature: 0.0,
                mape_humidity: 0.0,
            }; 5];
            for (score, fold) in fold_scores.iter_mut().zip(&tests) {
                *score = model.evaluate(fold);
            }
            Table5Row { kind, fold_scores }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 3 — Grad-CAM importance.
// ---------------------------------------------------------------------

/// E6: Figure 3 — trains the C+E MLP on fold 0 and explains it over the
/// union of the test folds.
pub fn fig3(dataset: &Dataset, config: &ExperimentConfig) -> Explanation {
    let (train, tests) = split_by_folds(dataset);
    let det = OccupancyDetector::train(
        &train,
        &config.detector(ModelKind::Mlp, FeatureView::CsiEnv),
    );
    let mut eval = Dataset::new();
    for fold in tests {
        eval.extend(fold.records().iter().copied());
    }
    // Cap the explanation batch: gradients over a few thousand samples
    // average out the per-sample noise already.
    let eval = crate::sampling::stratified_subsample(&eval, 5_000, config.seed);
    Explanation::of(&det, &eval).expect("MLP detector explains")
}

#[cfg(test)]
mod tests {
    use super::*;
    use occusense_sim::{simulate, ScenarioConfig};

    /// A downscaled full-timeline dataset shared by the driver tests.
    fn small_turetta() -> Dataset {
        let mut cfg = ScenarioConfig::turetta2022(5);
        cfg.sample_rate_hz = 0.05; // one sample every 20 s → ~13.7 k rows
        simulate(&cfg)
    }

    #[test]
    fn drivers_produce_consistent_shapes() {
        let ds = small_turetta();
        let cfg = ExperimentConfig::tiny();

        let profile = table2(&ds);
        assert_eq!(profile.total(), ds.len());
        assert!(profile.empty_total() > 0 && profile.occupied_total() > 0);

        let rows = table3(&ds);
        assert_eq!(rows.len(), 6);
        assert_eq!(
            rows.iter().map(|r| r.empty + r.occupied).sum::<usize>(),
            ds.len()
        );
        // Night folds are empty, fold 5 fully occupied.
        assert_eq!(rows[1].occupied, 0);
        assert_eq!(rows[2].occupied, 0);
        assert_eq!(rows[3].occupied, 0);
        assert_eq!(rows[5].empty, 0);
        // Fold 4 is mixed.
        assert!(rows[4].empty > 0 && rows[4].occupied > 0);

        let t4 = table4(&ds, &cfg);
        assert_eq!(t4.cells.len(), 9);
        for cell in &t4.cells {
            for &a in &cell.fold_accuracy {
                assert!((0.0..=1.0).contains(&a));
            }
            assert!((0.0..=1.0).contains(&cell.average()));
        }
        assert!(t4.cell(ModelKind::Mlp, FeatureView::Csi).is_some());
        assert!((0.0..=1.0).contains(&t4.time_only_accuracy));

        let t5 = table5(&ds, &cfg);
        assert_eq!(t5.len(), 2);
        for row in &t5 {
            let avg = row.average();
            assert!(avg.mae_temperature.is_finite() && avg.mae_temperature >= 0.0);
            assert!(avg.mae_humidity.is_finite());
        }

        let explanation = fig3(&ds, &cfg);
        assert_eq!(explanation.importance.len(), 66);
    }

    #[test]
    fn profiling_reports_paper_shaped_correlations() {
        let ds = small_turetta();
        let report = profiling(&ds, 4_000, occusense_sim::clock::COLLECTION_START_OFFSET_S)
            .expect("profiling");
        // Stationarity: the paper finds all series stationary; at minimum
        // a solid majority of subcarriers must be.
        assert!(
            report.stationary_subcarrier_fraction > 0.6,
            "stationary fraction {}",
            report.stationary_subcarrier_fraction
        );
        // Signs: temperature–humidity, temperature–occupancy and
        // humidity–occupancy all correlate positively in the paper.
        assert!(report.rho_temp_occupancy > 0.0, "{report:?}");
        assert!(report.rho_humidity_occupancy > 0.0, "{report:?}");
        assert!(report.rho_time_temperature > 0.0, "{report:?}");
        assert!(report.max_subcarrier_env_rho > 0.05, "{report:?}");
    }
}
