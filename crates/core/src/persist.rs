//! Persistence of trained detectors (model + standardiser + feature
//! view), so a detector trained once can be deployed by the `occusense`
//! CLI or an embedded gateway without retraining.
//!
//! Format (line-oriented, on top of the `occusense-nn` model format):
//!
//! ```text
//! occusense-detector v1
//! features <CSI|Env|C+E|Time>
//! means <d floats>
//! stds <d floats>
//! <embedded occusense-mlp v1 payload>
//! ```

use crate::detector::OccupancyDetector;
use occusense_dataset::{FeatureView, Standardizer};
use occusense_nn::serialize as nn_serialize;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Error returned by [`load_detector`].
#[derive(Debug)]
pub enum LoadDetectorError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed detector file.
    Parse(String),
    /// The embedded model failed to load.
    Model(nn_serialize::LoadModelError),
}

impl fmt::Display for LoadDetectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadDetectorError::Io(e) => write!(f, "detector load: {e}"),
            LoadDetectorError::Parse(msg) => write!(f, "detector parse error: {msg}"),
            LoadDetectorError::Model(e) => write!(f, "detector model: {e}"),
        }
    }
}

impl Error for LoadDetectorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadDetectorError::Io(e) => Some(e),
            LoadDetectorError::Parse(_) => None,
            LoadDetectorError::Model(e) => Some(e),
        }
    }
}

impl From<io::Error> for LoadDetectorError {
    fn from(e: io::Error) -> Self {
        LoadDetectorError::Io(e)
    }
}

/// Error returned by [`save_detector`] when the detector is not
/// MLP-backed (only the MLP has a serialisation format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedModelError;

impl fmt::Display for UnsupportedModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "only MLP-backed detectors can be saved")
    }
}

impl Error for UnsupportedModelError {}

/// Saves an MLP-backed detector.
///
/// # Errors
///
/// Returns [`UnsupportedModelError`] for non-MLP detectors (boxed with
/// the I/O error into one error type via `Box<dyn Error>` would hide the
/// distinction, so the two cases are kept separate: the unsupported case
/// is reported as `io::ErrorKind::Unsupported`).
pub fn save_detector<W: Write>(mut w: W, detector: &OccupancyDetector) -> io::Result<()> {
    let Some(mlp) = detector.mlp() else {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            UnsupportedModelError,
        ));
    };
    writeln!(w, "occusense-detector v1")?;
    writeln!(w, "features {}", detector.features().name())?;
    let standardizer = detector.standardizer();
    write_floats(&mut w, "means", standardizer.means())?;
    write_floats(&mut w, "stds", standardizer.stds())?;
    nn_serialize::save(w, mlp)
}

fn write_floats<W: Write>(w: &mut W, tag: &str, values: &[f64]) -> io::Result<()> {
    write!(w, "{tag}")?;
    for v in values {
        write!(w, " {v:e}")?;
    }
    writeln!(w)
}

/// Loads a detector saved by [`save_detector`].
///
/// # Errors
///
/// Returns [`LoadDetectorError`] on I/O failure or malformed content.
pub fn load_detector<R: Read>(r: R) -> Result<OccupancyDetector, LoadDetectorError> {
    let mut reader = BufReader::new(r);
    let mut line = String::new();
    let mut next_line = |reader: &mut BufReader<R>| -> Result<String, LoadDetectorError> {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(LoadDetectorError::Parse("unexpected end of file".into()));
        }
        Ok(line.trim_end().to_owned())
    };

    let header = next_line(&mut reader)?;
    if header != "occusense-detector v1" {
        return Err(LoadDetectorError::Parse(format!("bad header '{header}'")));
    }
    let features_line = next_line(&mut reader)?;
    let features = match features_line.strip_prefix("features ") {
        Some("CSI") => FeatureView::Csi,
        Some("Env") => FeatureView::Env,
        Some("C+E") => FeatureView::CsiEnv,
        Some("Time") => FeatureView::TimeOnly,
        _ => {
            return Err(LoadDetectorError::Parse(format!(
                "bad features line '{features_line}'"
            )))
        }
    };
    let means = parse_floats(&next_line(&mut reader)?, "means")?;
    let stds = parse_floats(&next_line(&mut reader)?, "stds")?;
    if means.len() != features.dimension() || stds.len() != features.dimension() {
        return Err(LoadDetectorError::Parse(format!(
            "standardizer dimension {} does not match feature view {}",
            means.len(),
            features.dimension()
        )));
    }
    let standardizer = Standardizer::from_parts(means, stds);
    let mlp = nn_serialize::load(reader).map_err(LoadDetectorError::Model)?;
    if mlp.input_dim() != features.dimension() {
        return Err(LoadDetectorError::Parse(format!(
            "model input dimension {} does not match feature view {}",
            mlp.input_dim(),
            features.dimension()
        )));
    }
    Ok(OccupancyDetector::from_parts(features, standardizer, mlp))
}

fn parse_floats(line: &str, tag: &str) -> Result<Vec<f64>, LoadDetectorError> {
    let rest = line
        .strip_prefix(tag)
        .ok_or_else(|| LoadDetectorError::Parse(format!("expected '{tag} …', got '{line}'")))?;
    rest.split_whitespace()
        .map(|s| {
            s.parse()
                .map_err(|e| LoadDetectorError::Parse(format!("bad {tag} value '{s}': {e}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorConfig, ModelKind};
    use occusense_sim::{simulate, ScenarioConfig};

    fn trained(model: ModelKind) -> (OccupancyDetector, occusense_dataset::Dataset) {
        let ds = simulate(&ScenarioConfig::quick(900.0, 81));
        let det = OccupancyDetector::train(
            &ds,
            &DetectorConfig {
                model,
                mlp_epochs: 2,
                ..DetectorConfig::default()
            },
        );
        (det, ds)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (det, ds) = trained(ModelKind::Mlp);
        let mut buf = Vec::new();
        save_detector(&mut buf, &det).unwrap();
        let loaded = load_detector(&buf[..]).unwrap();
        assert_eq!(loaded.predict_proba(&ds), det.predict_proba(&ds));
        assert_eq!(loaded.features(), det.features());
    }

    #[test]
    fn non_mlp_detectors_are_rejected() {
        let (det, _) = trained(ModelKind::RandomForest);
        let err = save_detector(Vec::new(), &det).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn load_rejects_bad_header() {
        let err = load_detector(&b"nope\n"[..]).unwrap_err();
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn load_rejects_dimension_mismatch() {
        let (det, _) = trained(ModelKind::Mlp);
        let mut buf = Vec::new();
        save_detector(&mut buf, &det).unwrap();
        // Corrupt the feature view to Env (dimension 2 vs 64).
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("features CSI", "features Env");
        let err = load_detector(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("dimension"));
    }

    #[test]
    fn load_rejects_truncation() {
        let (det, _) = trained(ModelKind::Mlp);
        let mut buf = Vec::new();
        save_detector(&mut buf, &det).unwrap();
        assert!(load_detector(&buf[..buf.len() / 3]).is_err());
    }
}
