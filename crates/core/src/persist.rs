//! Persistence of trained detectors (model + standardiser + feature
//! view), so a detector trained once can be deployed by the `occusense`
//! CLI or an embedded gateway without retraining.
//!
//! Format (line-oriented, on top of the `occusense-nn` model format):
//!
//! ```text
//! occusense-detector v1
//! features <CSI|Env|C+E|Time>
//! means <d floats>
//! stds <d floats>
//! <embedded occusense-mlp v1 payload>
//! ```
//!
//! ## Crash-safe checkpoints
//!
//! The serving runtime persists its live model through the *checked*
//! variants: [`save_detector_checked`] appends an FNV-1a-64 checksum
//! footer over the payload bytes, [`save_detector_atomic`] additionally
//! writes to a temporary file, fsyncs and atomically renames into
//! place (a crash mid-write can therefore never clobber the previous
//! checkpoint), and [`load_latest`] walks a checkpoint directory from
//! the newest version down, skipping any file whose checksum no longer
//! matches — so recovery always resumes from the newest *valid*
//! checkpoint.

use crate::detector::OccupancyDetector;
use crate::temporal::TemporalDetector;
use occusense_dataset::{FeatureView, Standardizer};
use occusense_nn::serialize as nn_serialize;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};

/// Error returned by [`load_detector`].
#[derive(Debug)]
pub enum LoadDetectorError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed detector file.
    Parse(String),
    /// The embedded model failed to load.
    Model(nn_serialize::LoadModelError),
}

impl fmt::Display for LoadDetectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadDetectorError::Io(e) => write!(f, "detector load: {e}"),
            LoadDetectorError::Parse(msg) => write!(f, "detector parse error: {msg}"),
            LoadDetectorError::Model(e) => write!(f, "detector model: {e}"),
        }
    }
}

impl Error for LoadDetectorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadDetectorError::Io(e) => Some(e),
            LoadDetectorError::Parse(_) => None,
            LoadDetectorError::Model(e) => Some(e),
        }
    }
}

impl From<io::Error> for LoadDetectorError {
    fn from(e: io::Error) -> Self {
        LoadDetectorError::Io(e)
    }
}

/// Error returned by [`save_detector`] when the detector is not
/// MLP-backed (only the MLP has a serialisation format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedModelError;

impl fmt::Display for UnsupportedModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "only MLP-backed detectors can be saved")
    }
}

impl Error for UnsupportedModelError {}

/// Saves an MLP-backed detector.
///
/// # Errors
///
/// Returns [`UnsupportedModelError`] for non-MLP detectors (boxed with
/// the I/O error into one error type via `Box<dyn Error>` would hide the
/// distinction, so the two cases are kept separate: the unsupported case
/// is reported as `io::ErrorKind::Unsupported`).
pub fn save_detector<W: Write>(mut w: W, detector: &OccupancyDetector) -> io::Result<()> {
    let Some(mlp) = detector.mlp() else {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            UnsupportedModelError,
        ));
    };
    writeln!(w, "occusense-detector v1")?;
    writeln!(w, "features {}", detector.features().name())?;
    let standardizer = detector.standardizer();
    write_floats(&mut w, "means", standardizer.means())?;
    write_floats(&mut w, "stds", standardizer.stds())?;
    nn_serialize::save(w, mlp)
}

fn write_floats<W: Write>(w: &mut W, tag: &str, values: &[f64]) -> io::Result<()> {
    write!(w, "{tag}")?;
    for v in values {
        write!(w, " {v:e}")?;
    }
    writeln!(w)
}

/// Loads a detector saved by [`save_detector`].
///
/// # Errors
///
/// Returns [`LoadDetectorError`] on I/O failure or malformed content.
pub fn load_detector<R: Read>(r: R) -> Result<OccupancyDetector, LoadDetectorError> {
    let mut reader = BufReader::new(r);
    let mut line = String::new();
    let mut next_line = |reader: &mut BufReader<R>| -> Result<String, LoadDetectorError> {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(LoadDetectorError::Parse("unexpected end of file".into()));
        }
        Ok(line.trim_end().to_owned())
    };

    let header = next_line(&mut reader)?;
    if header != "occusense-detector v1" {
        return Err(LoadDetectorError::Parse(format!("bad header '{header}'")));
    }
    let features_line = next_line(&mut reader)?;
    let features = match features_line.strip_prefix("features ") {
        Some("CSI") => FeatureView::Csi,
        Some("Env") => FeatureView::Env,
        Some("C+E") => FeatureView::CsiEnv,
        Some("Time") => FeatureView::TimeOnly,
        _ => {
            return Err(LoadDetectorError::Parse(format!(
                "bad features line '{features_line}'"
            )))
        }
    };
    let means = parse_floats(&next_line(&mut reader)?, "means")?;
    let stds = parse_floats(&next_line(&mut reader)?, "stds")?;
    if means.iter().chain(&stds).any(|v| !v.is_finite()) {
        return Err(LoadDetectorError::Parse(
            "non-finite standardizer value (corrupt checkpoint?)".into(),
        ));
    }
    if means.len() != features.dimension() || stds.len() != features.dimension() {
        return Err(LoadDetectorError::Parse(format!(
            "standardizer dimension {} does not match feature view {}",
            means.len(),
            features.dimension()
        )));
    }
    let standardizer = Standardizer::from_parts(means, stds);
    let mlp = nn_serialize::load(reader).map_err(LoadDetectorError::Model)?;
    if mlp.input_dim() != features.dimension() {
        return Err(LoadDetectorError::Parse(format!(
            "model input dimension {} does not match feature view {}",
            mlp.input_dim(),
            features.dimension()
        )));
    }
    Ok(OccupancyDetector::from_parts(features, standardizer, mlp))
}

fn parse_floats(line: &str, tag: &str) -> Result<Vec<f64>, LoadDetectorError> {
    let rest = line
        .strip_prefix(tag)
        .ok_or_else(|| LoadDetectorError::Parse(format!("expected '{tag} …', got '{line}'")))?;
    rest.split_whitespace()
        .map(|s| {
            s.parse()
                .map_err(|e| LoadDetectorError::Parse(format!("bad {tag} value '{s}': {e}")))
        })
        .collect()
}

/// Tag of the checksum footer line appended by the checked writers.
pub const CHECKSUM_TAG: &str = "checksum fnv1a";

/// File extension of versioned checkpoints.
pub const CHECKPOINT_EXT: &str = "ckpt";

const CHECKPOINT_PREFIX: &str = "detector-v";

const TEMPORAL_CHECKPOINT_PREFIX: &str = "temporal-v";

// The checksum hash is the workspace-wide shared FNV-1a-64
// (`crate::hash`); its pinned test vectors guarantee footers written by
// the pre-dedup private copy still verify.
use crate::hash::fnv1a64 as fnv1a;

/// Whether every parameter of the detector is finite — a detector with
/// NaN/inf weights or standardiser statistics would poison every
/// prediction after a reload, so checkpoint writers refuse to persist
/// one (keeping the last *good* checkpoint on disk instead).
pub fn detector_is_finite(detector: &OccupancyDetector) -> bool {
    let standardizer = detector.standardizer();
    let stats_finite = standardizer
        .means()
        .iter()
        .chain(standardizer.stds())
        .all(|v| v.is_finite());
    let Some(mlp) = detector.mlp() else {
        return stats_finite;
    };
    stats_finite
        && mlp.layers().iter().all(|layer| {
            layer.bias.iter().all(|v| v.is_finite())
                && (0..layer.in_dim()).all(|r| layer.weights.row(r).iter().all(|v| v.is_finite()))
        })
}

/// Saves a detector followed by a checksum footer line
/// (`checksum fnv1a <16-hex>`) over the payload bytes.
///
/// # Errors
///
/// Same as [`save_detector`].
pub fn save_detector_checked<W: Write>(mut w: W, detector: &OccupancyDetector) -> io::Result<()> {
    let mut payload = Vec::new();
    save_detector(&mut payload, detector)?;
    let sum = fnv1a(&payload);
    w.write_all(&payload)?;
    writeln!(w, "{CHECKSUM_TAG} {sum:016x}")
}

/// Loads a detector saved by [`save_detector_checked`], verifying the
/// checksum footer first.
///
/// # Errors
///
/// [`LoadDetectorError::Parse`] when the footer is missing, malformed
/// or does not match the payload (e.g. a bit-flipped checkpoint), plus
/// everything [`load_detector`] can return.
pub fn load_detector_checked<R: Read>(mut r: R) -> Result<OccupancyDetector, LoadDetectorError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    load_detector(verify_checksum(&bytes)?)
}

/// Validates the checksum footer of a checked payload and returns the
/// payload bytes in front of it.
fn verify_checksum(bytes: &[u8]) -> Result<&[u8], LoadDetectorError> {
    let without_trailing_newline = match bytes.last() {
        Some(b'\n') => &bytes[..bytes.len() - 1],
        _ => return Err(LoadDetectorError::Parse("missing checksum footer".into())),
    };
    let footer_start = without_trailing_newline
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap_or(0);
    let footer = std::str::from_utf8(&without_trailing_newline[footer_start..])
        .map_err(|_| LoadDetectorError::Parse("non-UTF-8 checksum footer".into()))?;
    let expected = footer
        .strip_prefix(CHECKSUM_TAG)
        .map(str::trim)
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .ok_or_else(|| LoadDetectorError::Parse(format!("bad checksum footer '{footer}'")))?;
    let payload = &bytes[..footer_start];
    let actual = fnv1a(payload);
    if actual != expected {
        return Err(LoadDetectorError::Parse(format!(
            "checksum mismatch: footer {expected:016x}, payload {actual:016x} \
             (corrupt checkpoint)"
        )));
    }
    Ok(payload)
}

/// Crash-safe save: refuses non-finite detectors, writes the checked
/// format to `<path>.tmp`, fsyncs, atomically renames onto `path` and
/// fsyncs the directory — so `path` always holds either the previous
/// complete checkpoint or the new one, never a torn write.
///
/// # Errors
///
/// `io::ErrorKind::InvalidData` for non-finite detectors; otherwise the
/// underlying I/O error.
pub fn save_detector_atomic(path: &Path, detector: &OccupancyDetector) -> io::Result<()> {
    if !detector_is_finite(detector) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "detector has non-finite parameters; refusing to checkpoint",
        ));
    }
    let mut checked = Vec::new();
    save_detector_checked(&mut checked, detector)?;
    atomic_write(path, &checked)
}

/// Writes `bytes` to `<path>.tmp`, fsyncs, atomically renames onto
/// `path` and fsyncs the directory.
fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Directory fsync makes the rename itself durable; best-effort
        // because not every filesystem supports opening a directory.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The canonical path of the checkpoint holding model `version` inside
/// `dir` (zero-padded so lexicographic order equals version order).
pub fn checkpoint_path(dir: &Path, version: u64) -> PathBuf {
    dir.join(format!("{CHECKPOINT_PREFIX}{version:09}.{CHECKPOINT_EXT}"))
}

/// Lists the checkpoints in `dir`, sorted ascending by version.
///
/// # Errors
///
/// Propagates directory-read failures; files that do not match the
/// checkpoint naming scheme are ignored.
pub fn list_checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    list_checkpoints_with(dir, CHECKPOINT_PREFIX)
}

fn list_checkpoints_with(dir: &Path, prefix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(version) = name
            .strip_prefix(prefix)
            .and_then(|rest| rest.strip_suffix(&format!(".{CHECKPOINT_EXT}")))
            .and_then(|v| v.parse::<u64>().ok())
        else {
            continue;
        };
        found.push((version, path));
    }
    found.sort_unstable_by_key(|(v, _)| *v);
    Ok(found)
}

/// Recovery path: loads the newest checkpoint in `dir` whose checksum
/// still verifies, skipping corrupt or truncated files. Returns `None`
/// when the directory holds no loadable checkpoint.
///
/// # Errors
///
/// Propagates directory-read failures only; unreadable *checkpoints*
/// are skipped, not fatal — that is the point of the recovery path.
pub fn load_latest(dir: &Path) -> io::Result<Option<(u64, PathBuf, OccupancyDetector)>> {
    for (version, path) in list_checkpoints(dir)?.into_iter().rev() {
        let Ok(file) = fs::File::open(&path) else {
            continue;
        };
        if let Ok(detector) = load_detector_checked(file) {
            return Ok(Some((version, path, detector)));
        }
    }
    Ok(None)
}

/// Suffix appended to checkpoint files set aside by
/// [`load_latest_compatible`]. A quarantined file no longer ends in
/// `.ckpt`, so every listing and recovery walk ignores it — but the
/// bytes stay on disk for a human to inspect, instead of being loaded
/// (wrong) or deleted (unforensicable).
pub const QUARANTINE_SUFFIX: &str = "quarantined";

/// Renames a rejected checkpoint aside (best-effort — a file that
/// vanished concurrently is already out of the recovery path).
fn quarantine(path: &Path) -> Option<PathBuf> {
    let mut target = path.as_os_str().to_owned();
    target.push(".");
    target.push(QUARANTINE_SUFFIX);
    let target = PathBuf::from(target);
    fs::rename(path, &target).ok().map(|()| target)
}

/// Multi-tenant recovery path: loads the newest checkpoint in `dir`
/// that verifies *and* satisfies `accept`, quarantining every newer
/// file that fails either test (renamed with [`QUARANTINE_SUFFIX`],
/// never deleted, never loaded).
///
/// A fleet tenant's lineage directory can end up polluted — another
/// tenant's checkpoints copied in by a bad deploy, truncated files
/// from a torn transfer, foreign bytes under a checkpoint name. Plain
/// [`load_latest`] skips what fails its checksum, but a *different
/// tenant's* checkpoint is internally valid and would load cleanly;
/// the `accept` predicate (typically an architecture check against the
/// tenant's `TenantSpec`) is what keeps cross-tenant weights out of a
/// serving process. Older checkpoints behind the accepted one are left
/// untouched.
///
/// # Errors
///
/// Propagates directory-read failures only; rejected checkpoints are
/// quarantined, not fatal, and this function never panics on any file
/// content.
pub fn load_latest_compatible(
    dir: &Path,
    accept: impl Fn(&OccupancyDetector) -> bool,
) -> io::Result<Option<(u64, PathBuf, OccupancyDetector)>> {
    for (version, path) in list_checkpoints(dir)?.into_iter().rev() {
        let Ok(file) = fs::File::open(&path) else {
            continue;
        };
        match load_detector_checked(file) {
            Ok(detector) if accept(&detector) => return Ok(Some((version, path, detector))),
            Ok(_) | Err(_) => {
                quarantine(&path);
            }
        }
    }
    Ok(None)
}

/// Removes the oldest checkpoints in `dir`, keeping the `keep` newest;
/// returns how many were deleted.
///
/// # Errors
///
/// Propagates directory-read failures; individual deletions are
/// best-effort (a checkpoint that vanished concurrently is not fatal).
pub fn prune_checkpoints(dir: &Path, keep: usize) -> io::Result<usize> {
    let checkpoints = list_checkpoints(dir)?;
    let excess = checkpoints.len().saturating_sub(keep.max(1));
    let mut removed = 0;
    for (_, path) in &checkpoints[..excess] {
        if fs::remove_file(path).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

// ---------------------------------------------------------------------
// Temporal (GRU) detector persistence — same framing as the per-frame
// detector, with the GRU payload in front of the head MLP:
//
// ```text
// occusense-temporal v1
// features <CSI|Env|C+E|Time>
// window <frames>
// means <d floats>
// stds <d floats>
// <embedded occusense-gru v1 payload>
// <embedded occusense-mlp v1 payload>
// ```
// ---------------------------------------------------------------------

/// Saves a temporal detector.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save_temporal<W: Write>(mut w: W, detector: &TemporalDetector) -> io::Result<()> {
    writeln!(w, "occusense-temporal v1")?;
    writeln!(w, "features {}", detector.features().name())?;
    writeln!(w, "window {}", detector.window())?;
    let standardizer = detector.standardizer();
    write_floats(&mut w, "means", standardizer.means())?;
    write_floats(&mut w, "stds", standardizer.stds())?;
    nn_serialize::save_gru(&mut w, detector.gru())?;
    nn_serialize::save(w, detector.head())
}

/// Loads a temporal detector saved by [`save_temporal`].
///
/// # Errors
///
/// Returns [`LoadDetectorError`] on I/O failure or malformed content.
pub fn load_temporal<R: Read>(r: R) -> Result<TemporalDetector, LoadDetectorError> {
    let mut reader = BufReader::new(r);
    let mut line = String::new();
    let mut next_line = |reader: &mut BufReader<R>| -> Result<String, LoadDetectorError> {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(LoadDetectorError::Parse("unexpected end of file".into()));
        }
        Ok(line.trim_end().to_owned())
    };

    let header = next_line(&mut reader)?;
    if header != "occusense-temporal v1" {
        return Err(LoadDetectorError::Parse(format!("bad header '{header}'")));
    }
    let features_line = next_line(&mut reader)?;
    let features = match features_line.strip_prefix("features ") {
        Some("CSI") => FeatureView::Csi,
        Some("Env") => FeatureView::Env,
        Some("C+E") => FeatureView::CsiEnv,
        Some("Time") => FeatureView::TimeOnly,
        _ => {
            return Err(LoadDetectorError::Parse(format!(
                "bad features line '{features_line}'"
            )))
        }
    };
    let window_line = next_line(&mut reader)?;
    let window: usize = window_line
        .strip_prefix("window ")
        .and_then(|v| v.parse().ok())
        .filter(|&w| w > 0)
        .ok_or_else(|| LoadDetectorError::Parse(format!("bad window line '{window_line}'")))?;
    let means = parse_floats(&next_line(&mut reader)?, "means")?;
    let stds = parse_floats(&next_line(&mut reader)?, "stds")?;
    if means.iter().chain(&stds).any(|v| !v.is_finite()) {
        return Err(LoadDetectorError::Parse(
            "non-finite standardizer value (corrupt checkpoint?)".into(),
        ));
    }
    if means.len() != features.dimension() || stds.len() != features.dimension() {
        return Err(LoadDetectorError::Parse(format!(
            "standardizer dimension {} does not match feature view {}",
            means.len(),
            features.dimension()
        )));
    }
    let standardizer = Standardizer::from_parts(means, stds);
    let gru = nn_serialize::load_gru_from(&mut reader).map_err(LoadDetectorError::Model)?;
    if gru.in_dim() != features.dimension() {
        return Err(LoadDetectorError::Parse(format!(
            "GRU input dimension {} does not match feature view {}",
            gru.in_dim(),
            features.dimension()
        )));
    }
    let head = nn_serialize::load(reader).map_err(LoadDetectorError::Model)?;
    if head.input_dim() != gru.hidden_dim() {
        return Err(LoadDetectorError::Parse(format!(
            "head input dimension {} does not match GRU hidden width {}",
            head.input_dim(),
            gru.hidden_dim()
        )));
    }
    Ok(TemporalDetector::from_parts(
        features,
        window,
        standardizer,
        gru,
        head,
    ))
}

/// Saves a temporal detector followed by the checksum footer.
///
/// # Errors
///
/// Same as [`save_temporal`].
pub fn save_temporal_checked<W: Write>(mut w: W, detector: &TemporalDetector) -> io::Result<()> {
    let mut payload = Vec::new();
    save_temporal(&mut payload, detector)?;
    let sum = fnv1a(&payload);
    w.write_all(&payload)?;
    writeln!(w, "{CHECKSUM_TAG} {sum:016x}")
}

/// Loads a temporal detector saved by [`save_temporal_checked`],
/// verifying the checksum footer first.
///
/// # Errors
///
/// Same classes as [`load_detector_checked`].
pub fn load_temporal_checked<R: Read>(mut r: R) -> Result<TemporalDetector, LoadDetectorError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    load_temporal(verify_checksum(&bytes)?)
}

/// Crash-safe temporal checkpoint: refuses non-finite detectors, then
/// checked-write + fsync + atomic rename, exactly like
/// [`save_detector_atomic`].
///
/// # Errors
///
/// `io::ErrorKind::InvalidData` for non-finite detectors; otherwise the
/// underlying I/O error.
pub fn save_temporal_atomic(path: &Path, detector: &TemporalDetector) -> io::Result<()> {
    if !detector.is_finite() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "temporal detector has non-finite parameters; refusing to checkpoint",
        ));
    }
    let mut checked = Vec::new();
    save_temporal_checked(&mut checked, detector)?;
    atomic_write(path, &checked)
}

/// The canonical path of the temporal checkpoint holding model
/// `version` inside `dir`.
pub fn temporal_checkpoint_path(dir: &Path, version: u64) -> PathBuf {
    dir.join(format!(
        "{TEMPORAL_CHECKPOINT_PREFIX}{version:09}.{CHECKPOINT_EXT}"
    ))
}

/// Lists the temporal checkpoints in `dir`, sorted ascending by
/// version. Detector (`detector-v*`) checkpoints are ignored, so both
/// families can share a directory.
///
/// # Errors
///
/// Same as [`list_checkpoints`].
pub fn list_temporal_checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    list_checkpoints_with(dir, TEMPORAL_CHECKPOINT_PREFIX)
}

/// Recovery path for temporal models: newest valid checkpoint in
/// `dir`, skipping corrupt files.
///
/// # Errors
///
/// Same as [`load_latest`].
pub fn load_latest_temporal(dir: &Path) -> io::Result<Option<(u64, PathBuf, TemporalDetector)>> {
    for (version, path) in list_temporal_checkpoints(dir)?.into_iter().rev() {
        let Ok(file) = fs::File::open(&path) else {
            continue;
        };
        if let Ok(detector) = load_temporal_checked(file) {
            return Ok(Some((version, path, detector)));
        }
    }
    Ok(None)
}

/// Removes the oldest temporal checkpoints in `dir`, keeping the
/// `keep` newest; returns how many were deleted.
///
/// # Errors
///
/// Same as [`prune_checkpoints`].
pub fn prune_temporal_checkpoints(dir: &Path, keep: usize) -> io::Result<usize> {
    let checkpoints = list_temporal_checkpoints(dir)?;
    let excess = checkpoints.len().saturating_sub(keep.max(1));
    let mut removed = 0;
    for (_, path) in &checkpoints[..excess] {
        if fs::remove_file(path).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorConfig, ModelKind};
    use occusense_sim::{simulate, ScenarioConfig};

    fn trained(model: ModelKind) -> (OccupancyDetector, occusense_dataset::Dataset) {
        let ds = simulate(&ScenarioConfig::quick(900.0, 81));
        let det = OccupancyDetector::train(
            &ds,
            &DetectorConfig {
                model,
                mlp_epochs: 2,
                ..DetectorConfig::default()
            },
        );
        (det, ds)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let (det, ds) = trained(ModelKind::Mlp);
        let mut buf = Vec::new();
        save_detector(&mut buf, &det).unwrap();
        let loaded = load_detector(&buf[..]).unwrap();
        assert_eq!(loaded.predict_proba(&ds), det.predict_proba(&ds));
        assert_eq!(loaded.features(), det.features());
    }

    #[test]
    fn non_mlp_detectors_are_rejected() {
        let (det, _) = trained(ModelKind::RandomForest);
        let err = save_detector(Vec::new(), &det).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn load_rejects_bad_header() {
        let err = load_detector(&b"nope\n"[..]).unwrap_err();
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn load_rejects_dimension_mismatch() {
        let (det, _) = trained(ModelKind::Mlp);
        let mut buf = Vec::new();
        save_detector(&mut buf, &det).unwrap();
        // Corrupt the feature view to Env (dimension 2 vs 64).
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("features CSI", "features Env");
        let err = load_detector(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("dimension"));
    }

    #[test]
    fn load_rejects_truncation() {
        let (det, _) = trained(ModelKind::Mlp);
        let mut buf = Vec::new();
        save_detector(&mut buf, &det).unwrap();
        assert!(load_detector(&buf[..buf.len() / 3]).is_err());
    }

    /// Rewrites one whitespace-separated line of a saved detector.
    fn rewrite_line(buf: &[u8], prefix: &str, new_line: &str) -> Vec<u8> {
        let text = String::from_utf8(buf.to_vec()).unwrap();
        let out: Vec<String> = text
            .lines()
            .map(|l| {
                if l.starts_with(prefix) {
                    new_line.to_owned()
                } else {
                    l.to_owned()
                }
            })
            .collect();
        (out.join("\n") + "\n").into_bytes()
    }

    #[test]
    fn load_rejects_non_finite_standardizer_values() {
        let (det, _) = trained(ModelKind::Mlp);
        let mut buf = Vec::new();
        save_detector(&mut buf, &det).unwrap();
        let n = det.standardizer().stds().len();
        for bad in ["NaN", "inf", "-inf"] {
            let stds = format!("stds {}", vec![bad; n].join(" "));
            let corrupted = rewrite_line(&buf, "stds ", &stds);
            let err = load_detector(&corrupted[..]).unwrap_err();
            assert!(err.to_string().contains("non-finite"), "stds={bad}: {err}");
        }
    }

    #[test]
    fn load_rejects_zero_length_feature_lines() {
        let (det, _) = trained(ModelKind::Mlp);
        let mut buf = Vec::new();
        save_detector(&mut buf, &det).unwrap();
        for line in ["means", "stds"] {
            let corrupted = rewrite_line(&buf, &format!("{line} "), line);
            let err = load_detector(&corrupted[..]).unwrap_err();
            assert!(err.to_string().contains("dimension"), "{line}: {err}");
        }
    }

    #[test]
    fn checked_round_trip_preserves_predictions() {
        let (det, ds) = trained(ModelKind::Mlp);
        let mut buf = Vec::new();
        save_detector_checked(&mut buf, &det).unwrap();
        let loaded = load_detector_checked(&buf[..]).unwrap();
        assert_eq!(loaded.predict_proba(&ds), det.predict_proba(&ds));
        // The plain loader still reads a checked file (the footer sits
        // after the payload it already consumes).
        assert!(load_detector(&buf[..]).is_ok());
    }

    #[test]
    fn checksum_rejects_every_single_bit_flip_probe() {
        let (det, _) = trained(ModelKind::Mlp);
        let mut buf = Vec::new();
        save_detector_checked(&mut buf, &det).unwrap();
        // Flip one bit at a handful of positions spread over the file.
        for pos in [10, buf.len() / 3, buf.len() / 2, buf.len() - 30] {
            let mut corrupt = buf.clone();
            corrupt[pos] ^= 0x04;
            let err = load_detector_checked(&corrupt[..]).unwrap_err();
            assert!(
                err.to_string().contains("checksum") || err.to_string().contains("footer"),
                "bit flip at {pos} not caught: {err}"
            );
        }
        assert!(load_detector_checked(&buf[..buf.len() / 2]).is_err());
        assert!(load_detector_checked(&b""[..]).is_err());
    }

    #[test]
    fn footers_written_by_the_pre_dedup_hash_still_verify() {
        // The private FNV-1a copy this module carried before the shared
        // `crate::hash` existed, verbatim: a checkpoint sealed by an
        // old build must keep verifying forever.
        fn legacy(bytes: &[u8]) -> u64 {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash
        }
        let (det, ds) = trained(ModelKind::Mlp);
        let mut payload = Vec::new();
        save_detector(&mut payload, &det).unwrap();
        let mut checked = payload.clone();
        writeln!(checked, "{CHECKSUM_TAG} {:016x}", legacy(&payload)).unwrap();
        let loaded = load_detector_checked(&checked[..]).expect("legacy footer must verify");
        assert_eq!(loaded.predict_proba(&ds), det.predict_proba(&ds));
        // And the current writer produces byte-identical output.
        let mut fresh = Vec::new();
        save_detector_checked(&mut fresh, &det).unwrap();
        assert_eq!(fresh, checked);
    }

    fn temp_checkpoint_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("occusense-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_save_load_latest_and_prune() {
        let (det, ds) = trained(ModelKind::Mlp);
        let dir = temp_checkpoint_dir("atomic");
        for version in 1..=4u64 {
            save_detector_atomic(&checkpoint_path(&dir, version), &det).unwrap();
        }
        let listed = list_checkpoints(&dir).unwrap();
        assert_eq!(
            listed.iter().map(|(v, _)| *v).collect::<Vec<_>>(),
            [1, 2, 3, 4]
        );
        // Corrupt the newest checkpoint: recovery falls back to v3.
        let newest = checkpoint_path(&dir, 4);
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&newest, &bytes).unwrap();
        let (version, path, loaded) = load_latest(&dir).unwrap().expect("a valid checkpoint");
        assert_eq!(version, 3);
        assert_eq!(path, checkpoint_path(&dir, 3));
        assert_eq!(loaded.predict_proba(&ds), det.predict_proba(&ds));
        // Prune keeps the newest two files (valid or not).
        assert_eq!(prune_checkpoints(&dir, 2).unwrap(), 2);
        let kept = list_checkpoints(&dir).unwrap();
        assert_eq!(kept.iter().map(|(v, _)| *v).collect::<Vec<_>>(), [3, 4]);
        // No .tmp residue from the atomic writes.
        assert!(fs::read_dir(&dir)
            .unwrap()
            .all(|e| e.unwrap().path().extension().unwrap() == CHECKPOINT_EXT));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn polluted_lineage_skips_and_quarantines_never_loads_cross_tenant() {
        let (ours, ds) = trained(ModelKind::Mlp);
        // A different tenant's model: internally valid (checksum and
        // format both pass), but a different architecture — exactly the
        // file plain `load_latest` would wrongly serve.
        let foreign_ds = simulate(&ScenarioConfig::quick(900.0, 82));
        let foreign = OccupancyDetector::train(
            &foreign_ds,
            &DetectorConfig {
                model: ModelKind::Mlp,
                mlp_epochs: 1,
                features: occusense_dataset::FeatureView::CsiEnv,
                ..DetectorConfig::default()
            },
        );
        let dir = temp_checkpoint_dir("polluted");
        save_detector_atomic(&checkpoint_path(&dir, 1), &ours).unwrap();
        save_detector_atomic(&checkpoint_path(&dir, 2), &ours).unwrap();
        save_detector_atomic(&checkpoint_path(&dir, 3), &foreign).unwrap();
        let mut truncated = Vec::new();
        save_detector_checked(&mut truncated, &ours).unwrap();
        fs::write(checkpoint_path(&dir, 4), &truncated[..truncated.len() / 3]).unwrap();
        fs::write(checkpoint_path(&dir, 5), b"not a checkpoint at all\n").unwrap();

        let want = ours.features();
        let accept = move |d: &OccupancyDetector| d.features() == want;
        let (version, path, loaded) = load_latest_compatible(&dir, accept)
            .unwrap()
            .expect("v2 is the newest compatible checkpoint");
        assert_eq!(version, 2);
        assert_eq!(path, checkpoint_path(&dir, 2));
        assert_eq!(loaded.predict_proba(&ds), ours.predict_proba(&ds));
        // Everything newer than v2 is renamed aside (never deleted,
        // never loaded); v1, behind the accepted checkpoint, is left
        // untouched.
        assert_eq!(
            list_checkpoints(&dir)
                .unwrap()
                .iter()
                .map(|(v, _)| *v)
                .collect::<Vec<_>>(),
            [1, 2]
        );
        for v in 3..=5u64 {
            let mut q = checkpoint_path(&dir, v).into_os_string();
            q.push(".");
            q.push(QUARANTINE_SUFFIX);
            assert!(
                PathBuf::from(q).exists(),
                "v{v} must be quarantined, not deleted"
            );
            assert!(!checkpoint_path(&dir, v).exists());
        }
        // Idempotent: the second recovery walks an already-clean dir.
        let again = load_latest_compatible(&dir, accept).unwrap().unwrap();
        assert_eq!(again.0, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fully_polluted_lineage_returns_none_without_panicking() {
        let dir = temp_checkpoint_dir("all-foreign");
        fs::write(checkpoint_path(&dir, 1), b"garbage").unwrap();
        fs::write(checkpoint_path(&dir, 2), [0u8; 100]).unwrap();
        assert!(load_latest_compatible(&dir, |_| true).unwrap().is_none());
        assert!(list_checkpoints(&dir).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_has_no_latest_checkpoint() {
        let dir = temp_checkpoint_dir("empty");
        assert!(load_latest(&dir).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    fn trained_temporal() -> (TemporalDetector, occusense_dataset::Dataset) {
        let ds = simulate(&ScenarioConfig::quick(900.0, 83));
        let det = TemporalDetector::train(
            &ds,
            &crate::temporal::TemporalConfig {
                window: 8,
                stride: 4,
                hidden: 8,
                epochs: 1,
                ..crate::temporal::TemporalConfig::default()
            },
        );
        (det, ds)
    }

    #[test]
    fn temporal_round_trip_is_bitwise() {
        let (det, ds) = trained_temporal();
        let mut buf = Vec::new();
        save_temporal(&mut buf, &det).unwrap();
        let loaded = load_temporal(&buf[..]).unwrap();
        assert_eq!(loaded, det);
        let a: Vec<u64> = det
            .score_stream(&ds.records()[..64])
            .iter()
            .map(|(_, p)| p.to_bits())
            .collect();
        let b: Vec<u64> = loaded
            .score_stream(&ds.records()[..64])
            .iter()
            .map(|(_, p)| p.to_bits())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn temporal_checked_round_trip_and_corruption() {
        let (det, _) = trained_temporal();
        let mut buf = Vec::new();
        save_temporal_checked(&mut buf, &det).unwrap();
        assert_eq!(load_temporal_checked(&buf[..]).unwrap(), det);
        for pos in [7usize, buf.len() / 2, buf.len() - 3] {
            let mut corrupt = buf.clone();
            corrupt[pos] ^= 0x04;
            assert!(
                load_temporal_checked(&corrupt[..]).is_err(),
                "bit flip at {pos} not caught"
            );
        }
        assert!(load_temporal_checked(&buf[..buf.len() / 2]).is_err());
    }

    #[test]
    fn temporal_load_rejects_mismatched_dims() {
        let (det, _) = trained_temporal();
        let mut buf = Vec::new();
        save_temporal(&mut buf, &det).unwrap();
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("features CSI", "features Env");
        let err = load_temporal(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("dimension"));
        assert!(load_temporal(&b"nope\n"[..])
            .unwrap_err()
            .to_string()
            .contains("bad header"));
    }

    #[test]
    fn temporal_checkpoints_coexist_with_detector_checkpoints() {
        let (frame, _) = trained(ModelKind::Mlp);
        let (temporal, ds) = trained_temporal();
        let dir = temp_checkpoint_dir("temporal");
        save_detector_atomic(&checkpoint_path(&dir, 1), &frame).unwrap();
        for version in 1..=3u64 {
            save_temporal_atomic(&temporal_checkpoint_path(&dir, version), &temporal).unwrap();
        }
        // Families list independently.
        assert_eq!(
            list_checkpoints(&dir)
                .unwrap()
                .iter()
                .map(|(v, _)| *v)
                .collect::<Vec<_>>(),
            [1]
        );
        assert_eq!(
            list_temporal_checkpoints(&dir)
                .unwrap()
                .iter()
                .map(|(v, _)| *v)
                .collect::<Vec<_>>(),
            [1, 2, 3]
        );
        // Corrupt the newest temporal checkpoint: recovery falls back to v2.
        let newest = temporal_checkpoint_path(&dir, 3);
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&newest, &bytes).unwrap();
        let (version, path, loaded) = load_latest_temporal(&dir).unwrap().expect("a checkpoint");
        assert_eq!(version, 2);
        assert_eq!(path, temporal_checkpoint_path(&dir, 2));
        assert_eq!(loaded.predict(&ds), temporal.predict(&ds));
        assert_eq!(prune_temporal_checkpoints(&dir, 1).unwrap(), 2);
        assert_eq!(list_temporal_checkpoints(&dir).unwrap().len(), 1);
        // Pruning temporal checkpoints never touches detector ones.
        assert_eq!(list_checkpoints(&dir).unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
