//! Humidity and temperature regression from CSI (§V-D / Table V).

use crate::sampling::stratified_subsample;
use occusense_baselines::linreg::{FitLinRegError, LinRegConfig, LinearRegression};
use occusense_dataset::{Dataset, FeatureView, Standardizer};
use occusense_nn::loss::Mse;
use occusense_nn::optim::AdamW;
use occusense_nn::train::{TrainConfig, Trainer};
use occusense_nn::Mlp;
use occusense_stats::metrics::{mae, mape};
use occusense_tensor::Matrix;

/// Which regression family to fit (the two column groups of Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RegressorKind {
    /// Ordinary least squares.
    Linear,
    /// The paper's MLP backbone with two regression heads.
    #[default]
    NeuralNetwork,
}

impl RegressorKind {
    /// Table-header name.
    pub fn name(&self) -> &'static str {
        match self {
            RegressorKind::Linear => "Linear Regressor",
            RegressorKind::NeuralNetwork => "Neural Network",
        }
    }
}

/// Regressor hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressorConfig {
    /// Model family.
    pub kind: RegressorKind,
    /// Seed.
    pub seed: u64,
    /// Stratified training-set cap.
    pub max_train_samples: Option<usize>,
    /// NN: epochs.
    pub epochs: usize,
    /// NN: batch size.
    pub batch_size: usize,
    /// NN: learning rate.
    pub learning_rate: f64,
    /// NN: decoupled weight decay.
    pub weight_decay: f64,
    /// Linear: ridge stabiliser.
    pub linreg: LinRegConfig,
}

impl Default for RegressorConfig {
    fn default() -> Self {
        Self {
            kind: RegressorKind::NeuralNetwork,
            seed: 0,
            max_train_samples: Some(50_000),
            epochs: 10,
            batch_size: 256,
            learning_rate: 5e-3,
            weight_decay: 1e-4,
            linreg: LinRegConfig::default(),
        }
    }
}

/// Predicted environment values for a batch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnvPrediction {
    /// Predicted temperatures, °C.
    pub temperature_c: Vec<f64>,
    /// Predicted relative humidities, %.
    pub humidity_pct: Vec<f64>,
}

/// MAE and MAPE of temperature and humidity over one evaluation set —
/// one cell group of Table V.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvRegressionScores {
    /// Temperature MAE, °C.
    pub mae_temperature: f64,
    /// Humidity MAE, %.
    pub mae_humidity: f64,
    /// Temperature MAPE, %.
    pub mape_temperature: f64,
    /// Humidity MAPE, %.
    pub mape_humidity: f64,
}

#[derive(Debug, Clone, PartialEq)]
enum FittedRegressor {
    Linear {
        temperature: LinearRegression,
        humidity: LinearRegression,
    },
    Network {
        mlp: Mlp,
        target_standardizer: Standardizer,
    },
}

/// A trained CSI → (temperature, humidity) regressor.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvRegressor {
    standardizer: Standardizer,
    model: FittedRegressor,
}

impl EnvRegressor {
    /// Trains the regressor on CSI features of the training set.
    ///
    /// # Errors
    ///
    /// Returns [`FitLinRegError`] if the OLS fit fails (rank-deficient
    /// design even after ridge stabilisation).
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty.
    pub fn train(train: &Dataset, config: &RegressorConfig) -> Result<Self, FitLinRegError> {
        assert!(!train.is_empty(), "regressor: empty training set");
        let sub = match config.max_train_samples {
            Some(max) => stratified_subsample(train, max, config.seed),
            None => train.clone(),
        };
        let x_raw = FeatureView::Csi.design_matrix(&sub);
        let standardizer = Standardizer::fit(&x_raw);
        let x = standardizer.transform(&x_raw);
        let temps = sub.temperatures();
        let hums = sub.humidities();

        let model = match config.kind {
            RegressorKind::Linear => FittedRegressor::Linear {
                temperature: LinearRegression::fit(&x, &temps, &config.linreg)?,
                humidity: LinearRegression::fit(&x, &hums, &config.linreg)?,
            },
            RegressorKind::NeuralNetwork => {
                // Standardise targets too: temperatures ~20 and humidity
                // ~40 would otherwise dwarf the loss scale.
                let mut y = Matrix::zeros(sub.len(), 2);
                for (r, (t, h)) in temps.iter().zip(&hums).enumerate() {
                    y[(r, 0)] = *t;
                    y[(r, 1)] = *h;
                }
                let target_standardizer = Standardizer::fit(&y);
                let y_std = target_standardizer.transform(&y);
                let mut mlp = Mlp::paper_regressor(x.cols(), 2, config.seed);
                let mut optim = AdamW::new(config.learning_rate, config.weight_decay);
                Trainer::new(TrainConfig {
                    epochs: config.epochs,
                    batch_size: config.batch_size,
                    shuffle_seed: config.seed,
                    ..TrainConfig::default()
                })
                .fit(&mut mlp, &x, &y_std, &Mse, &mut optim);
                FittedRegressor::Network {
                    mlp,
                    target_standardizer,
                }
            }
        };
        Ok(Self {
            standardizer,
            model,
        })
    }

    /// Predicts temperature and humidity for every record.
    pub fn predict(&self, dataset: &Dataset) -> EnvPrediction {
        let x = self
            .standardizer
            .transform(&FeatureView::Csi.design_matrix(dataset));
        match &self.model {
            FittedRegressor::Linear {
                temperature,
                humidity,
            } => EnvPrediction {
                temperature_c: temperature.predict(&x),
                humidity_pct: humidity.predict(&x),
            },
            FittedRegressor::Network {
                mlp,
                target_standardizer,
            } => {
                let out = mlp.predict(&x);
                let means = target_standardizer.means();
                let stds = target_standardizer.stds();
                let unscale = |v: f64, c: usize| v * stds[c].max(1e-12) + means[c];
                EnvPrediction {
                    temperature_c: out.col(0).into_iter().map(|v| unscale(v, 0)).collect(),
                    humidity_pct: out.col(1).into_iter().map(|v| unscale(v, 1)).collect(),
                }
            }
        }
    }

    /// Evaluates MAE/MAPE (Eq. 2–3) against the dataset's sensor ground
    /// truth — one Table V cell group.
    pub fn evaluate(&self, dataset: &Dataset) -> EnvRegressionScores {
        let pred = self.predict(dataset);
        let temps = dataset.temperatures();
        let hums = dataset.humidities();
        EnvRegressionScores {
            mae_temperature: mae(&temps, &pred.temperature_c),
            mae_humidity: mae(&hums, &pred.humidity_pct),
            mape_temperature: mape(&temps, &pred.temperature_c),
            mape_humidity: mape(&hums, &pred.humidity_pct),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occusense_sim::{simulate, ScenarioConfig};

    fn quick_split() -> (Dataset, Dataset) {
        let ds = simulate(&ScenarioConfig::quick(1600.0, 33));
        let split = (ds.len() * 7) / 10;
        (
            ds.records()[..split].iter().copied().collect(),
            ds.records()[split..].iter().copied().collect(),
        )
    }

    #[test]
    fn both_regressors_fit_and_produce_finite_scores() {
        let (train, test) = quick_split();
        for kind in [RegressorKind::Linear, RegressorKind::NeuralNetwork] {
            let cfg = RegressorConfig {
                kind,
                epochs: 5,
                ..RegressorConfig::default()
            };
            let model = EnvRegressor::train(&train, &cfg).expect("fit");
            let scores = model.evaluate(&test);
            for v in [
                scores.mae_temperature,
                scores.mae_humidity,
                scores.mape_temperature,
                scores.mape_humidity,
            ] {
                assert!(v.is_finite() && v >= 0.0, "{kind:?}: {v}");
            }
            // Sanity: predictions are in physically plausible ranges.
            let pred = model.predict(&test);
            assert_eq!(pred.temperature_c.len(), test.len());
            for t in &pred.temperature_c {
                assert!((-10.0..60.0).contains(t), "temperature {t}");
            }
        }
    }

    #[test]
    fn regressor_beats_trivial_baseline_on_training_data() {
        // In-sample the NN must beat predicting the global mean.
        let (train, _) = quick_split();
        let cfg = RegressorConfig {
            epochs: 8,
            ..RegressorConfig::default()
        };
        let model = EnvRegressor::train(&train, &cfg).expect("fit");
        let scores = model.evaluate(&train);
        let temps = train.temperatures();
        let mean_t = temps.iter().sum::<f64>() / temps.len() as f64;
        let baseline = mae(&temps, &vec![mean_t; temps.len()]);
        assert!(
            scores.mae_temperature < baseline,
            "NN {} vs mean baseline {}",
            scores.mae_temperature,
            baseline
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (train, test) = quick_split();
        let cfg = RegressorConfig {
            epochs: 2,
            ..RegressorConfig::default()
        };
        let a = EnvRegressor::train(&train, &cfg).unwrap().predict(&test);
        let b = EnvRegressor::train(&train, &cfg).unwrap().predict(&test);
        assert_eq!(a, b);
    }

    #[test]
    fn kind_names_match_table5_headers() {
        assert_eq!(RegressorKind::Linear.name(), "Linear Regressor");
        assert_eq!(RegressorKind::NeuralNetwork.name(), "Neural Network");
    }
}
