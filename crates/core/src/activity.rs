//! Activity recognition from CSI — the paper's §VI future work:
//! "design an ML model that simultaneously performs occupancy detection
//! and activity recognition".
//!
//! The recogniser is the same MLP backbone as the occupancy detector,
//! with a four-way softmax head over the room-level activity classes
//! (empty / seated / standing / walking). Because the occupancy label is
//! `class != Empty`, one model does both tasks at once.

use crate::sampling::stratified_indices;
use occusense_dataset::{Dataset, FeatureView, Standardizer};
use occusense_nn::loss::SoftmaxCrossEntropy;
use occusense_nn::optim::AdamW;
use occusense_nn::train::{TrainConfig, Trainer};
use occusense_nn::Mlp;
use occusense_sim::occupants::ActivityClass;
use occusense_stats::metrics::MultiConfusion;

/// Hyper-parameters of the activity recogniser.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityConfig {
    /// Feature subset (the paper's future work would use CSI).
    pub features: FeatureView,
    /// Master seed.
    pub seed: u64,
    /// Stratified cap on the training set (stratified by *occupancy*,
    /// which keeps the empty/occupied balance; activity classes within
    /// the occupied side follow their natural frequencies).
    pub max_train_samples: Option<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Decoupled weight decay.
    pub weight_decay: f64,
}

impl Default for ActivityConfig {
    fn default() -> Self {
        Self {
            features: FeatureView::Csi,
            seed: 0,
            max_train_samples: Some(50_000),
            epochs: 10,
            batch_size: 256,
            learning_rate: 5e-3,
            weight_decay: 1e-4,
        }
    }
}

/// A trained four-way activity recogniser.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityRecognizer {
    features: FeatureView,
    standardizer: Standardizer,
    mlp: Mlp,
}

impl ActivityRecognizer {
    /// Trains the recogniser on records and their parallel activity
    /// labels.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or label count mismatches.
    pub fn train(train: &Dataset, labels: &[ActivityClass], config: &ActivityConfig) -> Self {
        assert!(!train.is_empty(), "activity: empty training set");
        assert_eq!(train.len(), labels.len(), "activity: label count mismatch");

        let indices = match config.max_train_samples {
            Some(max) => stratified_indices(train, max, config.seed),
            None => (0..train.len()).collect(),
        };
        let sub: Dataset = indices.iter().map(|&i| train.records()[i]).collect();
        let sub_labels: Vec<usize> = indices.iter().map(|&i| labels[i].label()).collect();

        let x_raw = config.features.design_matrix(&sub);
        let standardizer = Standardizer::fit(&x_raw);
        let x = standardizer.transform(&x_raw);
        let y = SoftmaxCrossEntropy::one_hot(&sub_labels, ActivityClass::COUNT);

        let mut mlp = Mlp::paper_regressor(
            config.features.dimension(),
            ActivityClass::COUNT,
            config.seed,
        );
        let mut optim = AdamW::new(config.learning_rate, config.weight_decay);
        Trainer::new(TrainConfig {
            epochs: config.epochs,
            batch_size: config.batch_size,
            shuffle_seed: config.seed,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &x, &y, &SoftmaxCrossEntropy, &mut optim);

        Self {
            features: config.features,
            standardizer,
            mlp,
        }
    }

    /// Predicted activity class per record.
    pub fn predict(&self, dataset: &Dataset) -> Vec<ActivityClass> {
        let x = self
            .standardizer
            .transform(&self.features.design_matrix(dataset));
        SoftmaxCrossEntropy::argmax(&self.mlp.predict(&x))
            .into_iter()
            .map(|l| ActivityClass::ALL[l])
            .collect()
    }

    /// Multi-class confusion matrix against ground-truth labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != dataset.len()`.
    pub fn evaluate(&self, dataset: &Dataset, labels: &[ActivityClass]) -> MultiConfusion {
        assert_eq!(
            dataset.len(),
            labels.len(),
            "activity: label count mismatch"
        );
        let pred: Vec<usize> = self.predict(dataset).iter().map(|c| c.label()).collect();
        let truth: Vec<usize> = labels.iter().map(|c| c.label()).collect();
        MultiConfusion::from_labels(ActivityClass::COUNT, &truth, &pred)
    }

    /// The occupancy view of the activity predictions
    /// (`class != Empty`) — "simultaneously performs occupancy detection".
    pub fn predict_occupancy(&self, dataset: &Dataset) -> Vec<u8> {
        self.predict(dataset)
            .into_iter()
            .map(|c| u8::from(c != ActivityClass::Empty))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occusense_sim::{simulate_annotated, ScenarioConfig};
    use occusense_stats::metrics::accuracy;

    fn annotated_split() -> (Dataset, Vec<ActivityClass>, Dataset, Vec<ActivityClass>) {
        let (ds, labels) = simulate_annotated(&ScenarioConfig::quick(2400.0, 61));
        let split = (ds.len() * 7) / 10;
        (
            ds.records()[..split].iter().copied().collect(),
            labels[..split].to_vec(),
            ds.records()[split..].iter().copied().collect(),
            labels[split..].to_vec(),
        )
    }

    #[test]
    fn recognizer_beats_chance() {
        let (train, train_labels, test, test_labels) = annotated_split();
        let model = ActivityRecognizer::train(
            &train,
            &train_labels,
            &ActivityConfig {
                epochs: 5,
                ..ActivityConfig::default()
            },
        );
        let cm = model.evaluate(&test, &test_labels);
        // Four classes: chance is far below 0.5; empty-vs-rest alone gets
        // us well above it.
        assert!(cm.accuracy() > 0.5, "activity accuracy {}", cm.accuracy());
        assert_eq!(cm.n_classes(), 4);
    }

    #[test]
    fn occupancy_view_matches_binary_task() {
        let (train, train_labels, test, _) = annotated_split();
        let model = ActivityRecognizer::train(
            &train,
            &train_labels,
            &ActivityConfig {
                epochs: 5,
                ..ActivityConfig::default()
            },
        );
        let occ_pred = model.predict_occupancy(&test);
        let occ_true = test.labels();
        let acc = accuracy(&occ_true, &occ_pred);
        assert!(acc > 0.8, "occupancy-from-activity accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let (train, train_labels, test, _) = annotated_split();
        let cfg = ActivityConfig {
            epochs: 2,
            ..ActivityConfig::default()
        };
        let a = ActivityRecognizer::train(&train, &train_labels, &cfg).predict(&test);
        let b = ActivityRecognizer::train(&train, &train_labels, &cfg).predict(&test);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn train_validates_label_length() {
        let (train, _, _, _) = annotated_split();
        ActivityRecognizer::train(&train, &[], &ActivityConfig::default());
    }
}
