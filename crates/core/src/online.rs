//! Online (continual) training — §V-B's argument for preferring the MLP
//! over the random forest: "an MLP model can be trained continuously.
//! There is no need to use the whole dataset again but only new data,
//! which can also arrive in real-time, thus doing online training."
//!
//! [`OnlineDetector`] wraps a trained MLP detector with a persistent
//! AdamW state and a small replay buffer: each labelled record streams
//! in, is first *predicted* (prequential evaluation — test-then-train)
//! and then used for a gradient step once a mini-batch accumulates.

use crate::detector::OccupancyDetector;
use occusense_dataset::CsiRecord;
use occusense_nn::loss::BceWithLogits;
use occusense_nn::optim::AdamW;
use occusense_nn::train::{TrainConfig, TrainWorkspace, Trainer};
use occusense_nn::Mlp;
use occusense_tensor::Matrix;

/// Configuration of the online learner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Gradient step size for the streaming updates (usually smaller
    /// than the offline rate to avoid catastrophic drift).
    pub learning_rate: f64,
    /// Decoupled weight decay.
    pub weight_decay: f64,
    /// Records accumulated before each gradient step.
    pub batch_size: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            learning_rate: 1e-3,
            weight_decay: 1e-4,
            batch_size: 64,
        }
    }
}

/// An MLP occupancy detector that keeps learning from a labelled stream.
#[derive(Debug, Clone)]
pub struct OnlineDetector {
    features: occusense_dataset::FeatureView,
    standardizer: occusense_dataset::Standardizer,
    mlp: Mlp,
    optimizer: AdamW,
    trainer: Trainer,
    buffer_x: Vec<f64>,
    buffer_y: Vec<f64>,
    /// Reused gradient-step and scoring buffers: once warm, a
    /// prediction or streaming update performs no heap allocations.
    /// One workspace serves both paths — the MLP buffers are sized by
    /// the larger (batch) shape, so single-row scoring rides along
    /// without growing anything.
    ws: TrainWorkspace,
    xb: Matrix,
    yb: Matrix,
    xrow: Matrix,
    proba: Vec<f64>,
    config: OnlineConfig,
    updates: u64,
}

impl OnlineDetector {
    /// Wraps an offline-trained MLP detector for streaming updates.
    ///
    /// The feature standardiser is frozen at its offline statistics —
    /// online re-estimation would silently shift every input.
    ///
    /// Returns `None` if the detector is not MLP-backed.
    pub fn from_detector(detector: &OccupancyDetector, config: OnlineConfig) -> Option<Self> {
        let mlp = detector.mlp()?.clone();
        Some(Self {
            features: detector.features(),
            standardizer: detector.standardizer().clone(),
            mlp,
            optimizer: AdamW::new(config.learning_rate, config.weight_decay),
            trainer: Trainer::new(TrainConfig {
                epochs: 1,
                batch_size: config.batch_size,
                shuffle_seed: 0,
                ..TrainConfig::default()
            }),
            buffer_x: Vec::new(),
            buffer_y: Vec::new(),
            ws: TrainWorkspace::new(),
            xb: Matrix::default(),
            yb: Matrix::default(),
            xrow: Matrix::default(),
            proba: Vec::new(),
            config,
            updates: 0,
        })
    }

    /// Number of gradient steps taken so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Number of buffer-growth events across the learner's warm
    /// workspace (scoring and gradient-step buffers alike); flat across
    /// observations ⇒ the steady-state continual-training loop is
    /// allocation-free.
    pub fn reallocs(&self) -> u64 {
        self.ws.reallocs()
    }

    /// Predicts the occupancy of one record `(label, confidence)`,
    /// through the learner's warm workspace — allocation-free in the
    /// steady state.
    // lint:no_alloc
    pub fn predict_record(&mut self, record: &CsiRecord) -> (u8, f64) {
        let d = self.features.dimension();
        if self.xrow.ensure_shape(1, d) {
            self.ws.mlp_workspace_mut().scratch_mut().note_grow();
        }
        self.features.extract_into(record, self.xrow.row_mut(0));
        self.standardizer
            .transform_row_inplace(self.xrow.row_mut(0));
        self.mlp
            .predict_proba_into(&self.xrow, self.ws.mlp_workspace_mut(), &mut self.proba);
        let p = self.proba[0];
        (u8::from(p > 0.5), p)
    }

    /// Prequential step: predicts the record, then absorbs its ground-
    /// truth label into the replay buffer (taking a gradient step once
    /// the buffer holds a full batch). Returns the prediction made
    /// *before* learning from the record.
    pub fn observe(&mut self, record: &CsiRecord, label: u8) -> (u8, f64) {
        let prediction = self.predict_record(record);
        // `xrow` still holds this record's standardised features, so
        // the replay buffer fills by copy, not re-extraction.
        let d = self.features.dimension();
        if self.buffer_x.capacity() < self.buffer_x.len() + d
            || self.buffer_y.capacity() == self.buffer_y.len()
        {
            self.ws.mlp_workspace_mut().scratch_mut().note_grow();
        }
        // lint:allow(alloc, reason = "replay-buffer growth is one-time (capacity is retained across batch drains) and counted via note_grow above")
        self.buffer_x.extend_from_slice(self.xrow.row(0));
        // lint:allow(alloc, reason = "replay-buffer growth is one-time (capacity is retained across batch drains) and counted via note_grow above")
        self.buffer_y.push(label as f64);
        if self.buffer_y.len() >= self.config.batch_size {
            let n = self.buffer_y.len();
            if self.xb.ensure_shape(n, d) {
                self.ws.mlp_workspace_mut().scratch_mut().note_grow();
            }
            self.xb.as_mut_slice().copy_from_slice(&self.buffer_x);
            if self.yb.ensure_shape(n, 1) {
                self.ws.mlp_workspace_mut().scratch_mut().note_grow();
            }
            self.yb.as_mut_slice().copy_from_slice(&self.buffer_y);
            self.buffer_x.clear();
            self.buffer_y.clear();
            self.trainer.train_batch_with(
                &mut self.mlp,
                &self.xb,
                &self.yb,
                &BceWithLogits,
                &mut self.optimizer,
                &mut self.ws,
            );
            self.updates += 1;
        }
        prediction
    }
    // lint:end_no_alloc

    /// The current (continually trained) network.
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// The feature view inherited from the offline detector.
    pub fn features(&self) -> occusense_dataset::FeatureView {
        self.features
    }

    /// Freezes the current weights into a standalone detector — the
    /// hot-swap publication path of the serving runtime: the trainer
    /// thread keeps learning on `self` while workers score against
    /// immutable snapshots taken here.
    pub fn snapshot_detector(&self) -> OccupancyDetector {
        OccupancyDetector::from_parts(self.features, self.standardizer.clone(), self.mlp.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorConfig, ModelKind};
    use occusense_dataset::Dataset;
    use occusense_sim::{simulate, ScenarioConfig};

    fn quick_split(duration_s: f64, seed: u64) -> (Dataset, Dataset) {
        let ds = simulate(&ScenarioConfig::quick(duration_s, seed));
        let split = (ds.len() * 7) / 10;
        (
            ds.records()[..split].iter().copied().collect(),
            ds.records()[split..].iter().copied().collect(),
        )
    }

    fn trained_online() -> (OnlineDetector, occusense_dataset::Dataset) {
        let (train, test) = quick_split(1600.0, 91);
        let det = OccupancyDetector::train(
            &train,
            &DetectorConfig {
                model: ModelKind::Mlp,
                mlp_epochs: 3,
                ..DetectorConfig::default()
            },
        );
        (
            OnlineDetector::from_detector(&det, OnlineConfig::default()).expect("MLP"),
            test,
        )
    }

    #[test]
    fn wraps_only_mlp_detectors() {
        let (train, _) = quick_split(600.0, 92);
        let rf = OccupancyDetector::train(
            &train,
            &DetectorConfig {
                model: ModelKind::RandomForest,
                ..DetectorConfig::default()
            },
        );
        assert!(OnlineDetector::from_detector(&rf, OnlineConfig::default()).is_none());
    }

    #[test]
    fn observe_predicts_before_learning() {
        let (mut online, test) = trained_online();
        let frozen_pred = online.predict_record(&test.records()[0]);
        let observed = online.observe(&test.records()[0], test.records()[0].occupancy());
        assert_eq!(frozen_pred, observed);
    }

    #[test]
    fn gradient_steps_fire_per_batch() {
        let (mut online, test) = trained_online();
        let batch = OnlineConfig::default().batch_size;
        for r in test.records().iter().take(batch - 1) {
            online.observe(r, r.occupancy());
        }
        assert_eq!(online.updates(), 0);
        online.observe(
            &test.records()[batch - 1],
            test.records()[batch - 1].occupancy(),
        );
        assert_eq!(online.updates(), 1);
    }

    #[test]
    fn online_updates_change_the_network() {
        let (mut online, test) = trained_online();
        let before = online.mlp().clone();
        for r in test.records().iter().take(200) {
            online.observe(r, r.occupancy());
        }
        assert!(online.updates() > 0);
        assert_ne!(*online.mlp(), before);
    }

    #[test]
    fn snapshot_detector_freezes_current_weights() {
        let (mut online, test) = trained_online();
        let snap = online.snapshot_detector();
        // The snapshot agrees with the live detector at capture time…
        for r in test.records().iter().take(10) {
            assert_eq!(snap.predict_record(r), online.predict_record(r));
        }
        // …and stays frozen while the live detector keeps learning.
        for r in test.records() {
            online.observe(r, r.occupancy());
        }
        assert!(online.updates() > 0);
        let fresh = online.snapshot_detector();
        assert_ne!(snap.mlp(), fresh.mlp(), "snapshot tracked live weights");
        let drifted = test
            .records()
            .iter()
            .take(50)
            .any(|r| snap.predict_record(r).1 != online.predict_record(r).1);
        assert!(drifted, "online updates left the snapshot identical");
    }

    #[test]
    fn continual_training_is_allocation_free_after_warmup() {
        // The serve trainer thread holds one OnlineDetector for the
        // whole run: after the first couple of gradient steps have
        // sized every buffer, the predict→buffer→train-batch loop must
        // never grow one again.
        let (mut online, test) = trained_online();
        let batch = OnlineConfig::default().batch_size;
        for r in test.records().iter().take(2 * batch) {
            online.observe(r, r.occupancy());
        }
        assert_eq!(online.updates(), 2);
        let warm = online.reallocs();
        for r in test.records().iter().skip(2 * batch).take(4 * batch) {
            online.observe(r, r.occupancy());
        }
        assert_eq!(online.updates(), 6);
        assert_eq!(
            online.reallocs(),
            warm,
            "steady-state continual training grew a buffer"
        );
    }

    #[test]
    fn prequential_accuracy_stays_high_on_stream() {
        let (mut online, test) = trained_online();
        let mut correct = 0usize;
        for r in test.records() {
            let (pred, _) = online.observe(r, r.occupancy());
            correct += usize::from(pred == r.occupancy());
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.85, "prequential accuracy {acc}");
    }
}
