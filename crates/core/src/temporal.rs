//! Temporal occupancy modeling: a GRU encoder over sliding CSI windows
//! with a softmax count/presence head — the sequence-model counterpart
//! of the per-frame [`crate::counting::OccupancyCounter`].
//!
//! Per-frame models score each CSI snapshot in isolation; in a
//! multi-room office (partitions, doorways, through-wall scatter) a
//! single frame is often ambiguous. The temporal detector instead
//! carries a hidden state across frames: training runs truncated BPTT
//! over fixed-length windows (hidden state reset at each window start),
//! deployment streams record-by-record from a zero state — the same
//! stateful path the serving runtime batches across sensors.
//!
//! Determinism contracts (inherited from the GEMM kernels, see
//! `occusense_tensor::kernels`): scores are bitwise identical across
//! thread counts, across batch compositions (a sensor scored inside any
//! batch equals the same sensor scored alone) and across chunk splits
//! of a sequence.

use crate::counting::{CountingScores, OccupancyCounter, N_COUNT_CLASSES};
use occusense_dataset::{CsiRecord, Dataset, FeatureView, Standardizer};
use occusense_nn::loss::{Loss, SoftmaxCrossEntropy};
use occusense_nn::optim::{AdamW, Optimizer};
use occusense_nn::{Gru, GruWorkspace, Mlp, MlpWorkspace};
use occusense_stats::metrics::MultiConfusion;
use occusense_tensor::kernels::Parallelism;
use occusense_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Optimiser slot base for the GRU parameters (head layers use slots
/// `0..2·layers`, far below this).
const GRU_SLOT_BASE: usize = 32;

/// Hyper-parameters of the temporal detector.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalConfig {
    /// Feature subset.
    pub features: FeatureView,
    /// Master seed.
    pub seed: u64,
    /// Truncated-BPTT window length, frames.
    pub window: usize,
    /// Stride between training-window starts, frames.
    pub stride: usize,
    /// GRU hidden width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Windows per mini-batch.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Decoupled weight decay.
    pub weight_decay: f64,
    /// Cap on the number of training windows (evenly thinned when
    /// exceeded; `None` = use every window).
    pub max_train_windows: Option<usize>,
}

impl Default for TemporalConfig {
    fn default() -> Self {
        Self {
            features: FeatureView::Csi,
            seed: 0,
            window: 16,
            stride: 2,
            hidden: 24,
            epochs: 8,
            batch_size: 64,
            learning_rate: 5e-3,
            weight_decay: 1e-4,
            max_train_windows: Some(20_000),
        }
    }
}

/// Reusable buffers for stateful temporal scoring — the serve worker's
/// hot path. Holds the design matrix, the GRU step caches and the head
/// forward workspace, so a steady stream of batched timesteps scores
/// without heap allocations (assert via [`TemporalWorkspace::reallocs`]).
#[derive(Debug, Clone, Default)]
pub struct TemporalWorkspace {
    x: Matrix,
    h_next: Matrix,
    gru_ws: GruWorkspace,
    head_ws: MlpWorkspace,
}

impl TemporalWorkspace {
    /// An empty workspace running the kernels single-threaded.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty workspace with the given kernel parallelism; scores do
    /// not depend on this setting (bitwise).
    pub fn with_parallelism(parallelism: Parallelism) -> Self {
        Self {
            gru_ws: GruWorkspace::with_parallelism(parallelism),
            head_ws: MlpWorkspace::with_parallelism(parallelism),
            ..Self::default()
        }
    }

    /// Number of buffer-growth events since creation; flat across
    /// steps ⇒ steady-state scoring is allocation-free.
    pub fn reallocs(&self) -> u64 {
        self.gru_ws.reallocs() + self.head_ws.reallocs()
    }
}

/// Reusable buffers for truncated-BPTT training: the per-timestep
/// design matrices, the initial state, the one-hot targets and loss
/// gradient, plus the GRU BPTT caches and the head workspace. After
/// the first batch has sized everything, an epoch of training performs
/// **no heap allocations** (assert via
/// [`TemporalTrainWorkspace::reallocs`]) — the GRU-training analogue
/// of `occusense_nn::train::TrainWorkspace`.
#[derive(Debug, Clone, Default)]
pub struct TemporalTrainWorkspace {
    /// `xs[t]` is the batch design matrix of window timestep `t`.
    xs: Vec<Matrix>,
    h0: Matrix,
    y: Matrix,
    grad_out: Matrix,
    gru_ws: GruWorkspace,
    head_ws: MlpWorkspace,
}

impl TemporalTrainWorkspace {
    /// An empty workspace running the kernels single-threaded.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty workspace with the given kernel parallelism; the
    /// trained weights do not depend on this setting (bitwise).
    pub fn with_parallelism(parallelism: Parallelism) -> Self {
        Self {
            gru_ws: GruWorkspace::with_parallelism(parallelism),
            head_ws: MlpWorkspace::with_parallelism(parallelism),
            ..Self::default()
        }
    }

    /// Number of buffer-growth events since creation; flat across
    /// batches ⇒ the steady-state training loop is allocation-free.
    pub fn reallocs(&self) -> u64 {
        self.gru_ws.reallocs() + self.head_ws.reallocs()
    }

    /// Sizes the per-timestep spine (growth only on first use or when
    /// the window length changes).
    fn prepare(&mut self, window: usize) {
        if self.xs.capacity() < window {
            self.gru_ws.scratch_mut().note_grow();
        }
        self.xs.resize_with(window, Matrix::default);
    }
}

/// A trained temporal (GRU) occupancy/count detector.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalDetector {
    features: FeatureView,
    window: usize,
    standardizer: Standardizer,
    gru: Gru,
    head: Mlp,
}

impl TemporalDetector {
    /// Trains the detector with truncated BPTT over sliding windows
    /// (ground truth comes from each record's `occupant_count`, class
    /// label taken at the window's last frame).
    ///
    /// # Panics
    ///
    /// Panics if the training set is shorter than one window.
    pub fn train(train: &Dataset, config: &TemporalConfig) -> Self {
        Self::train_with(train, config, &mut TemporalTrainWorkspace::new())
    }

    /// [`TemporalDetector::train`] through a caller-owned workspace —
    /// identical weights, but repeated trainings (hyper-parameter
    /// sweeps, continual re-fits) reuse every buffer: once the
    /// workspace is warm an entire training run performs no heap
    /// allocations beyond the returned detector itself.
    ///
    /// # Panics
    ///
    /// Panics if the training set is shorter than one window.
    pub fn train_with(
        train: &Dataset,
        config: &TemporalConfig,
        ws: &mut TemporalTrainWorkspace,
    ) -> Self {
        assert!(
            train.len() >= config.window && config.window > 0,
            "temporal: training set shorter than one window"
        );
        let d = config.features.dimension();
        let x_raw = config.features.design_matrix(train);
        let standardizer = Standardizer::fit(&x_raw);
        let x = standardizer.transform(&x_raw);
        let labels: Vec<usize> = train
            .iter()
            .map(|r| OccupancyCounter::count_class(r.occupant_count))
            .collect();

        let mut starts: Vec<usize> = (0..=train.len() - config.window)
            .step_by(config.stride.max(1))
            .collect();
        if let Some(max) = config.max_train_windows {
            if starts.len() > max.max(1) {
                // Evenly thin the window set, keeping coverage of the
                // whole scenario.
                let keep = max.max(1);
                starts = (0..keep).map(|i| starts[i * starts.len() / keep]).collect();
            }
        }

        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7e6d_9042_u64);
        let mut gru = Gru::new(d, config.hidden, &mut rng);
        let mut head = Mlp::new(&[config.hidden, N_COUNT_CLASSES], config.seed);
        let mut optim = AdamW::new(config.learning_rate, config.weight_decay);
        let loss = SoftmaxCrossEntropy;
        ws.prepare(config.window);
        let TemporalTrainWorkspace {
            xs,
            h0,
            y,
            grad_out,
            gru_ws,
            head_ws,
        } = ws;

        // The epoch loop below is the steady-state hot path: every
        // buffer is gathered into in place, so after the first batch
        // (and the optimizer's first-use slot setup) no iteration
        // allocates.
        // lint:no_alloc
        for _ in 0..config.epochs {
            // Fisher–Yates shuffle of the window starts.
            for i in (1..starts.len()).rev() {
                starts.swap(i, rng.gen_range(0..=i));
            }
            for chunk in starts.chunks(config.batch_size.max(1)) {
                let b = chunk.len();
                for (t, xt) in xs.iter_mut().enumerate() {
                    if xt.ensure_shape(b, d) {
                        gru_ws.scratch_mut().note_grow();
                    }
                    for (r, &s) in chunk.iter().enumerate() {
                        xt.row_mut(r).copy_from_slice(x.row(s + t));
                    }
                }
                if h0.ensure_shape(b, config.hidden) {
                    gru_ws.scratch_mut().note_grow();
                }
                h0.as_mut_slice().fill(0.0);
                gru.forward_seq(xs, h0, gru_ws);

                head.forward_ws(gru_ws.h_last(), head_ws);
                if y.ensure_shape(b, N_COUNT_CLASSES) {
                    gru_ws.scratch_mut().note_grow();
                }
                y.as_mut_slice().fill(0.0);
                for (r, &s) in chunk.iter().enumerate() {
                    y[(r, labels[s + config.window - 1])] = 1.0;
                }
                if grad_out.ensure_shape(b, N_COUNT_CLASSES) {
                    gru_ws.scratch_mut().note_grow();
                }
                loss.grad_into(head_ws.output(), y, grad_out);
                head.backward_ws_input_grad(grad_out, head_ws);
                gru.backward_seq(xs, head_ws.grad_input(), gru_ws);

                for (li, layer) in head.layers_mut().iter_mut().enumerate() {
                    optim.update(
                        2 * li,
                        layer.weights.as_mut_slice(),
                        head_ws.grad_w()[li].as_slice(),
                    );
                    optim.update(2 * li + 1, &mut layer.bias, &head_ws.grad_b()[li]);
                }
                optim.update(
                    GRU_SLOT_BASE,
                    gru.w_z.as_mut_slice(),
                    gru_ws.grad_w_z().as_slice(),
                );
                optim.update(
                    GRU_SLOT_BASE + 1,
                    gru.w_r.as_mut_slice(),
                    gru_ws.grad_w_r().as_slice(),
                );
                optim.update(
                    GRU_SLOT_BASE + 2,
                    gru.w_n.as_mut_slice(),
                    gru_ws.grad_w_n().as_slice(),
                );
                optim.update(
                    GRU_SLOT_BASE + 3,
                    gru.u_z.as_mut_slice(),
                    gru_ws.grad_u_z().as_slice(),
                );
                optim.update(
                    GRU_SLOT_BASE + 4,
                    gru.u_r.as_mut_slice(),
                    gru_ws.grad_u_r().as_slice(),
                );
                optim.update(
                    GRU_SLOT_BASE + 5,
                    gru.u_n.as_mut_slice(),
                    gru_ws.grad_u_n().as_slice(),
                );
                optim.update(GRU_SLOT_BASE + 6, &mut gru.b_z, gru_ws.grad_b_z());
                optim.update(GRU_SLOT_BASE + 7, &mut gru.b_r, gru_ws.grad_b_r());
                optim.update(GRU_SLOT_BASE + 8, &mut gru.b_n, gru_ws.grad_b_n());
            }
        }
        // lint:end_no_alloc

        Self {
            features: config.features,
            window: config.window,
            standardizer,
            gru,
            head,
        }
    }

    /// Reassembles a detector from persisted parts (see
    /// [`crate::persist`]).
    ///
    /// # Panics
    ///
    /// Panics if the GRU and head dimensions do not line up.
    pub fn from_parts(
        features: FeatureView,
        window: usize,
        standardizer: Standardizer,
        gru: Gru,
        head: Mlp,
    ) -> Self {
        assert_eq!(gru.in_dim(), features.dimension(), "GRU input dimension");
        assert_eq!(gru.hidden_dim(), head.input_dim(), "head input dimension");
        Self {
            features,
            window,
            standardizer,
            gru,
            head,
        }
    }

    /// The feature view the detector was trained with.
    pub fn features(&self) -> FeatureView {
        self.features
    }

    /// The truncated-BPTT window length the detector was trained with.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The train-time standardizer (needed for persistence).
    pub fn standardizer(&self) -> &Standardizer {
        &self.standardizer
    }

    /// The GRU encoder.
    pub fn gru(&self) -> &Gru {
        &self.gru
    }

    /// The count head.
    pub fn head(&self) -> &Mlp {
        &self.head
    }

    /// GRU hidden width — the per-sensor state size the serving runtime
    /// keeps between timesteps.
    pub fn hidden_dim(&self) -> usize {
        self.gru.hidden_dim()
    }

    /// Total number of trainable parameters.
    pub fn n_parameters(&self) -> usize {
        self.gru.n_parameters() + self.head.n_parameters()
    }

    /// Whether every parameter is finite.
    pub fn is_finite(&self) -> bool {
        self.gru.is_finite()
            && self.head.layers().iter().all(|layer| {
                layer.bias.iter().all(|v| v.is_finite())
                    && layer.weights.as_slice().iter().all(|v| v.is_finite())
            })
    }

    /// A fresh zero hidden state for `rows` concurrent streams.
    pub fn zero_state(&self, rows: usize) -> Matrix {
        Matrix::zeros(rows, self.hidden_dim())
    }

    /// Advances `rows` concurrent sensor streams by one timestep:
    /// `records[i]` is the current frame of stream `i`, `h` (rows ×
    /// hidden) its carried state, updated in place. Writes each
    /// stream's presence probability (1 − P(count = 0)) into `out`.
    ///
    /// Row independence of the kernels makes this bitwise identical to
    /// stepping each stream alone — batching across sensors never
    /// changes a score.
    ///
    /// # Panics
    ///
    /// Panics if `h` has the wrong shape.
    pub fn step_batch_into(
        &self,
        records: &[CsiRecord],
        h: &mut Matrix,
        ws: &mut TemporalWorkspace,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(
            h.shape(),
            (records.len(), self.hidden_dim()),
            "temporal state shape"
        );
        if self.features.design_matrix_rows_into(records, &mut ws.x) {
            ws.gru_ws.scratch_mut().note_grow();
        }
        self.standardizer.transform_inplace(&mut ws.x);
        self.gru.step(&ws.x, h, &mut ws.h_next, &mut ws.gru_ws);
        std::mem::swap(h, &mut ws.h_next);
        self.head.forward_ws(h, &mut ws.head_ws);
        presence_probas_into(ws.head_ws.output(), out);
    }

    /// Streams a record sequence from a zero state and returns each
    /// frame's `(count_class, presence_probability)` — the deployment
    /// scoring path (and the reference the serve verifier replays
    /// against).
    pub fn score_stream(&self, records: &[CsiRecord]) -> Vec<(usize, f64)> {
        let mut h = self.zero_state(1);
        let mut ws = TemporalWorkspace::new();
        let mut probas = Vec::with_capacity(1);
        let mut out = Vec::with_capacity(records.len());
        for r in records {
            self.step_batch_into(std::slice::from_ref(r), &mut h, &mut ws, &mut probas);
            let class = argmax_row(self.head_logits_row(&ws));
            out.push((class, probas[0]));
        }
        out
    }

    /// The head logits of the most recent step (row view of the head
    /// workspace output).
    fn head_logits_row<'a>(&self, ws: &'a TemporalWorkspace) -> &'a [f64] {
        ws.head_ws.output().row(0)
    }

    /// Predicted count class per record, streaming from a zero state.
    pub fn predict(&self, dataset: &Dataset) -> Vec<usize> {
        self.score_stream(dataset.records())
            .into_iter()
            .map(|(c, _)| c)
            .collect()
    }

    /// Evaluates against the dataset's head-count ground truth, in the
    /// same [`CountingScores`] frame as the per-frame counter.
    pub fn evaluate(&self, dataset: &Dataset) -> CountingScores {
        let pred = self.predict(dataset);
        let truth: Vec<usize> = dataset
            .iter()
            .map(|r| OccupancyCounter::count_class(r.occupant_count))
            .collect();
        let confusion = MultiConfusion::from_labels(N_COUNT_CLASSES, &truth, &pred);
        let count_mae = truth
            .iter()
            .zip(&pred)
            .map(|(&t, &p)| (t as f64 - p as f64).abs())
            .sum::<f64>()
            / truth.len().max(1) as f64;
        let occ_correct = truth
            .iter()
            .zip(&pred)
            .filter(|(&t, &p)| (t > 0) == (p > 0))
            .count();
        CountingScores {
            confusion,
            count_mae,
            occupancy_accuracy: occ_correct as f64 / truth.len().max(1) as f64,
        }
    }
}

/// Writes each row's presence probability (1 − softmax(logits)[0]) into
/// `out` (cleared first).
fn presence_probas_into(logits: &Matrix, out: &mut Vec<f64>) {
    out.clear();
    for r in 0..logits.rows() {
        let row = logits.row(r);
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = row.iter().map(|v| (v - max).exp()).sum();
        let p0 = (row[0] - max).exp() / sum.max(f64::MIN_POSITIVE);
        out.push(1.0 - p0);
    }
}

/// Index of the largest element of a row.
fn argmax_row(row: &[f64]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .expect("non-empty row")
}

#[cfg(test)]
mod tests {
    use super::*;
    use occusense_sim::{simulate, ScenarioConfig};

    fn small_config() -> TemporalConfig {
        TemporalConfig {
            window: 12,
            stride: 4,
            hidden: 16,
            epochs: 4,
            ..TemporalConfig::default()
        }
    }

    fn split() -> (Dataset, Dataset) {
        let ds = simulate(&ScenarioConfig::quick(2400.0, 71));
        let split = (ds.len() * 9) / 10;
        (
            ds.records()[..split].iter().copied().collect(),
            ds.records()[split..].iter().copied().collect(),
        )
    }

    #[test]
    fn temporal_learns_the_quick_scenario() {
        let (train, test) = split();
        let det = TemporalDetector::train(&train, &small_config());
        let in_sample = det.evaluate(&train);
        assert!(
            in_sample.confusion.accuracy() > 0.7,
            "{}",
            in_sample.confusion
        );
        let scores = det.evaluate(&test);
        assert!(scores.count_mae < 1.0, "count MAE {}", scores.count_mae);
        assert!(scores.occupancy_accuracy > 0.8);
    }

    #[test]
    fn training_is_deterministic() {
        let (train, test) = split();
        let cfg = TemporalConfig {
            epochs: 1,
            ..small_config()
        };
        let a = TemporalDetector::train(&train, &cfg);
        let b = TemporalDetector::train(&train, &cfg);
        assert_eq!(a, b);
        assert_eq!(
            a.score_stream(test.records()),
            b.score_stream(test.records())
        );
    }

    #[test]
    fn batched_steps_equal_solo_streams_bitwise() {
        // The serve contract: three interleaved sensor streams stepped
        // as one batch score bitwise identically to each stream scored
        // alone.
        let (train, test) = split();
        let cfg = TemporalConfig {
            epochs: 1,
            ..small_config()
        };
        let det = TemporalDetector::train(&train, &cfg);
        let streams: Vec<Vec<_>> = (0..3)
            .map(|k| {
                test.records()
                    .iter()
                    .skip(k)
                    .step_by(3)
                    .copied()
                    .take(40)
                    .collect()
            })
            .collect();
        let solo: Vec<Vec<(usize, f64)>> = streams.iter().map(|s| det.score_stream(s)).collect();

        let mut h = det.zero_state(3);
        let mut ws = TemporalWorkspace::new();
        let mut probas = Vec::new();
        for t in 0..40 {
            let frame: Vec<_> = streams.iter().map(|s| s[t]).collect();
            det.step_batch_into(&frame, &mut h, &mut ws, &mut probas);
            for (k, solo_k) in solo.iter().enumerate() {
                assert_eq!(
                    probas[k].to_bits(),
                    solo_k[t].1.to_bits(),
                    "sensor {k} t={t}: batched != solo"
                );
            }
        }
    }

    #[test]
    fn thread_count_is_bitwise_invisible() {
        let (train, test) = split();
        let cfg = TemporalConfig {
            epochs: 1,
            ..small_config()
        };
        let det = TemporalDetector::train(&train, &cfg);
        let run = |par: Parallelism| {
            let mut h = det.zero_state(8);
            let mut ws = TemporalWorkspace::with_parallelism(par);
            let mut probas = Vec::new();
            let mut all = Vec::new();
            for chunk in test.records().chunks_exact(8).take(10) {
                det.step_batch_into(chunk, &mut h, &mut ws, &mut probas);
                all.extend(probas.iter().map(|p| p.to_bits()));
            }
            all
        };
        assert_eq!(run(Parallelism::Single), run(Parallelism::Threads(4)));
    }

    #[test]
    fn steady_state_stepping_does_not_reallocate() {
        let (train, test) = split();
        let cfg = TemporalConfig {
            epochs: 1,
            ..small_config()
        };
        let det = TemporalDetector::train(&train, &cfg);
        let mut h = det.zero_state(16);
        let mut ws = TemporalWorkspace::new();
        let mut probas = Vec::with_capacity(16);
        // Warm up.
        for chunk in test.records().chunks_exact(16).take(3) {
            det.step_batch_into(chunk, &mut h, &mut ws, &mut probas);
        }
        let warm = ws.reallocs();
        for chunk in test.records().chunks_exact(16).take(20) {
            det.step_batch_into(chunk, &mut h, &mut ws, &mut probas);
        }
        assert_eq!(ws.reallocs(), warm, "steady-state stepping grew a buffer");
    }

    #[test]
    fn steady_state_training_does_not_reallocate() {
        // A warm workspace absorbs an entire retraining run without a
        // single buffer-growth event: every epoch of BPTT batches runs
        // through pre-sized buffers.
        let (train, _) = split();
        let cfg = TemporalConfig {
            epochs: 1,
            ..small_config()
        };
        let mut ws = TemporalTrainWorkspace::new();
        let warm_det = TemporalDetector::train_with(&train, &cfg, &mut ws);
        let warm = ws.reallocs();
        let det = TemporalDetector::train_with(&train, &cfg, &mut ws);
        assert_eq!(ws.reallocs(), warm, "warm retraining grew a buffer");
        // The workspace path is also trajectory-stable: retraining from
        // the same seed reproduces the same detector.
        assert_eq!(warm_det, det);
    }

    #[test]
    fn presence_proba_is_consistent_with_class() {
        let (train, test) = split();
        let det = TemporalDetector::train(&train, &small_config());
        for (class, proba) in det.score_stream(&test.records()[..200]) {
            assert!((0.0..=1.0).contains(&proba));
            // An argmax of 0 with presence > ~0.8 (or the reverse)
            // would mean the head and the proba disagree wildly.
            if proba < 0.2 {
                assert_eq!(class, 0);
            }
            if proba > 0.8 {
                assert_ne!(class, 0);
            }
        }
    }
}
