//! Stratified subsampling of training data.
//!
//! The simulator produces one record per sampling interval over a 76-hour
//! window — far more rows than gradient or tree training needs. Models
//! train on a seeded, label-stratified subsample so both classes keep
//! their proportions; evaluation always uses the *full* test folds.

use occusense_dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Returns at most `max` record indices, stratified by the binary
/// occupancy label (class proportions preserved to ±1 sample), in
/// ascending order. If `max >= len`, all indices are returned.
///
/// # Example
///
/// ```
/// use occusense_core::sampling::stratified_indices;
/// use occusense_core::{CsiRecord, Dataset};
///
/// let ds: Dataset = (0..100)
///     .map(|i| CsiRecord::new(i as f64, [0.1; 64], 20.0, 40.0, u8::from(i % 4 == 0)))
///     .collect();
/// let idx = stratified_indices(&ds, 40, 1);
/// assert_eq!(idx.len(), 40);
/// let pos = idx.iter().filter(|&&i| ds.records()[i].occupancy() == 1).count();
/// assert!((9..=11).contains(&pos)); // 25 % of 40, ±1
/// ```
pub fn stratified_indices(dataset: &Dataset, max: usize, seed: u64) -> Vec<usize> {
    let n = dataset.len();
    if max >= n {
        return (0..n).collect();
    }
    let mut by_class: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    for (i, r) in dataset.iter().enumerate() {
        by_class[r.occupancy() as usize].push(i);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picked = Vec::with_capacity(max);
    for class in &mut by_class {
        let quota = ((class.len() as f64 / n as f64) * max as f64).round() as usize;
        class.shuffle(&mut rng);
        picked.extend(class.iter().take(quota.min(class.len())));
    }
    // Rounding may leave us one short or one over.
    picked.truncate(max);
    picked.sort_unstable();
    picked
}

/// Builds the subsampled dataset directly.
pub fn stratified_subsample(dataset: &Dataset, max: usize, seed: u64) -> Dataset {
    let idx = stratified_indices(dataset, max, seed);
    idx.into_iter().map(|i| dataset.records()[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use occusense_dataset::CsiRecord;

    fn dataset(n: usize, positive_every: usize) -> Dataset {
        (0..n)
            .map(|i| {
                CsiRecord::new(
                    i as f64,
                    [0.1; 64],
                    20.0,
                    40.0,
                    u8::from(i % positive_every == 0),
                )
            })
            .collect()
    }

    #[test]
    fn returns_all_when_max_exceeds_len() {
        let ds = dataset(10, 2);
        assert_eq!(stratified_indices(&ds, 100, 0), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn preserves_class_proportions() {
        let ds = dataset(1000, 5); // 20 % positive
        let idx = stratified_indices(&ds, 200, 3);
        assert_eq!(idx.len(), 200);
        let pos = idx
            .iter()
            .filter(|&&i| ds.records()[i].occupancy() == 1)
            .count();
        assert!((38..=42).contains(&pos), "positives {pos}");
    }

    #[test]
    fn indices_are_sorted_and_unique() {
        let ds = dataset(500, 3);
        let idx = stratified_indices(&ds, 100, 1);
        for w in idx.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = dataset(300, 4);
        assert_eq!(
            stratified_indices(&ds, 50, 7),
            stratified_indices(&ds, 50, 7)
        );
        assert_ne!(
            stratified_indices(&ds, 50, 7),
            stratified_indices(&ds, 50, 8)
        );
    }

    #[test]
    fn subsample_builds_valid_dataset() {
        let ds = dataset(100, 2);
        let sub = stratified_subsample(&ds, 30, 2);
        assert_eq!(sub.len(), 30);
        // Timestamps remain sorted (indices were sorted).
        let ts: Vec<f64> = sub.iter().map(|r| r.timestamp_s).collect();
        for w in ts.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn single_class_dataset_works() {
        let ds: Dataset = (0..50)
            .map(|i| CsiRecord::new(i as f64, [0.1; 64], 20.0, 40.0, 0))
            .collect();
        let idx = stratified_indices(&ds, 20, 0);
        assert_eq!(idx.len(), 20);
    }
}
