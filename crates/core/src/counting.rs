//! Occupant counting from CSI — a natural extension of the paper's
//! binary task, following the crowd-counting line of its references
//! \[3, 12\]. The simulator's ground truth (Table II tracks simultaneous
//! head counts) makes the task directly trainable.

use crate::sampling::stratified_indices;
use occusense_dataset::{Dataset, FeatureView, Standardizer};
use occusense_nn::loss::SoftmaxCrossEntropy;
use occusense_nn::optim::AdamW;
use occusense_nn::train::{TrainConfig, Trainer};
use occusense_nn::Mlp;
use occusense_stats::metrics::MultiConfusion;

/// Head counts at or above this value share the top class (Table II's
/// last column aggregates "four or more").
pub const MAX_COUNT_CLASS: usize = 4;

/// Number of count classes (0, 1, 2, 3, 4+).
pub const N_COUNT_CLASSES: usize = MAX_COUNT_CLASS + 1;

/// Hyper-parameters of the occupant counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CountingConfig {
    /// Feature subset.
    pub features: FeatureView,
    /// Master seed.
    pub seed: u64,
    /// Stratified cap on the training set.
    pub max_train_samples: Option<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Decoupled weight decay.
    pub weight_decay: f64,
}

impl Default for CountingConfig {
    fn default() -> Self {
        Self {
            features: FeatureView::Csi,
            seed: 0,
            max_train_samples: Some(50_000),
            epochs: 10,
            batch_size: 256,
            learning_rate: 5e-3,
            weight_decay: 1e-4,
        }
    }
}

/// Counting evaluation: classification view plus count-error view.
#[derive(Debug, Clone, PartialEq)]
pub struct CountingScores {
    /// 5-class confusion matrix (0, 1, 2, 3, 4+).
    pub confusion: MultiConfusion,
    /// Mean absolute count error (treating 4+ as 4).
    pub count_mae: f64,
    /// Accuracy of the derived binary occupancy label.
    pub occupancy_accuracy: f64,
}

/// A trained CSI → head-count classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyCounter {
    features: FeatureView,
    standardizer: Standardizer,
    mlp: Mlp,
}

impl OccupancyCounter {
    /// Class label for a raw head count.
    pub fn count_class(occupant_count: u8) -> usize {
        (occupant_count as usize).min(MAX_COUNT_CLASS)
    }

    /// Trains the counter on a dataset (ground truth comes from each
    /// record's `occupant_count`).
    ///
    /// # Panics
    ///
    /// Panics if the training set is empty.
    pub fn train(train: &Dataset, config: &CountingConfig) -> Self {
        assert!(!train.is_empty(), "counter: empty training set");
        let indices = match config.max_train_samples {
            Some(max) => stratified_indices(train, max, config.seed),
            None => (0..train.len()).collect(),
        };
        let sub: Dataset = indices.iter().map(|&i| train.records()[i]).collect();
        let labels: Vec<usize> = sub
            .iter()
            .map(|r| Self::count_class(r.occupant_count))
            .collect();

        let x_raw = config.features.design_matrix(&sub);
        let standardizer = Standardizer::fit(&x_raw);
        let x = standardizer.transform(&x_raw);
        let y = SoftmaxCrossEntropy::one_hot(&labels, N_COUNT_CLASSES);

        let mut mlp =
            Mlp::paper_regressor(config.features.dimension(), N_COUNT_CLASSES, config.seed);
        let mut optim = AdamW::new(config.learning_rate, config.weight_decay);
        Trainer::new(TrainConfig {
            epochs: config.epochs,
            batch_size: config.batch_size,
            shuffle_seed: config.seed,
            ..TrainConfig::default()
        })
        .fit(&mut mlp, &x, &y, &SoftmaxCrossEntropy, &mut optim);

        Self {
            features: config.features,
            standardizer,
            mlp,
        }
    }

    /// Predicted count class (0–4, where 4 means "4 or more") per record.
    pub fn predict(&self, dataset: &Dataset) -> Vec<usize> {
        let x = self
            .standardizer
            .transform(&self.features.design_matrix(dataset));
        SoftmaxCrossEntropy::argmax(&self.mlp.predict(&x))
    }

    /// Evaluates against the dataset's head-count ground truth.
    pub fn evaluate(&self, dataset: &Dataset) -> CountingScores {
        let pred = self.predict(dataset);
        let truth: Vec<usize> = dataset
            .iter()
            .map(|r| Self::count_class(r.occupant_count))
            .collect();
        let confusion = MultiConfusion::from_labels(N_COUNT_CLASSES, &truth, &pred);
        let count_mae = truth
            .iter()
            .zip(&pred)
            .map(|(&t, &p)| (t as f64 - p as f64).abs())
            .sum::<f64>()
            / truth.len().max(1) as f64;
        let occ_correct = truth
            .iter()
            .zip(&pred)
            .filter(|(&t, &p)| (t > 0) == (p > 0))
            .count();
        CountingScores {
            confusion,
            count_mae,
            occupancy_accuracy: occ_correct as f64 / truth.len().max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occusense_sim::{simulate, ScenarioConfig};

    fn split() -> (Dataset, Dataset) {
        // The quick scenario's second subject only enters at 75 % of the
        // window, so a 90/10 split is needed for the training fold to
        // contain every count class.
        let ds = simulate(&ScenarioConfig::quick(2400.0, 71));
        let split = (ds.len() * 9) / 10;
        (
            ds.records()[..split].iter().copied().collect(),
            ds.records()[split..].iter().copied().collect(),
        )
    }

    #[test]
    fn count_class_caps_at_four() {
        assert_eq!(OccupancyCounter::count_class(0), 0);
        assert_eq!(OccupancyCounter::count_class(3), 3);
        assert_eq!(OccupancyCounter::count_class(4), 4);
        assert_eq!(OccupancyCounter::count_class(6), 4);
    }

    #[test]
    fn counter_learns_the_quick_scenario() {
        // quick(): empty → one person → two people; counting should
        // recover all three regimes much better than chance.
        let (train, test) = split();
        let counter = OccupancyCounter::train(
            &train,
            &CountingConfig {
                epochs: 6,
                ..CountingConfig::default()
            },
        );
        // In-sample: all three regimes must be separable.
        let in_sample = counter.evaluate(&train);
        assert!(
            in_sample.confusion.accuracy() > 0.7,
            "{}",
            in_sample.confusion
        );
        // Held-out tail (two occupants): the exact count generalises.
        let scores = counter.evaluate(&test);
        assert!(scores.count_mae < 1.0, "count MAE {}", scores.count_mae);
        assert!(scores.occupancy_accuracy > 0.8);
    }

    #[test]
    fn counting_subsumes_occupancy() {
        let (train, test) = split();
        let counter = OccupancyCounter::train(
            &train,
            &CountingConfig {
                epochs: 6,
                ..CountingConfig::default()
            },
        );
        let scores = counter.evaluate(&test);
        // Occupancy accuracy is at least the exact-count accuracy.
        assert!(scores.occupancy_accuracy >= scores.confusion.accuracy() - 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let (train, test) = split();
        let cfg = CountingConfig {
            epochs: 2,
            ..CountingConfig::default()
        };
        assert_eq!(
            OccupancyCounter::train(&train, &cfg).predict(&test),
            OccupancyCounter::train(&train, &cfg).predict(&test)
        );
    }
}
