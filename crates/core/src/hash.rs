//! The workspace's single FNV-1a-64 implementation.
//!
//! Three subsystems hash with FNV-1a and must agree bit-for-bit with
//! the data already in the world: shard routing keys sensor ids
//! ([`occusense-serve`]'s `routing`), the OCW1 wire envelope checksums
//! `frame_type ++ payload` ([`occusense-wire`]'s frame codec), and the
//! checkpoint footer seals persisted models ([`crate::persist`]). Each
//! used to carry its own private copy of the loop; this module is now
//! the one definition all of them — plus the fleet controller's
//! consistent-hash ring — call into.
//!
//! The parameters are the published 64-bit FNV-1a constants, so the
//! outputs are pinned by external test vectors: changing either
//! constant (or the xor-then-multiply order) is a breaking change that
//! invalidates every existing checkpoint, OCW1 frame and shard
//! assignment. The compatibility tests below fail loudly on any drift.
//!
//! [`occusense-serve`]: https://example.com/occusense
//! [`occusense-wire`]: https://example.com/occusense

/// The FNV-1a 64-bit offset basis: the hash state before any input.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a, 64-bit, over `bytes` — tiny, stable across platforms and
/// runs, and dependency-free.
///
/// # Example
///
/// ```
/// use occusense_core::hash::fnv1a64;
///
/// // Published FNV-1a test vector.
/// assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
/// ```
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_extend(FNV_OFFSET_BASIS, bytes)
}

/// Streaming form: folds `bytes` into an existing hash `state`.
///
/// `fnv1a64_extend(FNV_OFFSET_BASIS, b)` equals [`fnv1a64`]`(b)`, and
/// hashing a concatenation equals chaining two extends — which is how
/// the wire checksum hashes the frame-type byte ahead of the payload
/// without assembling a contiguous buffer.
#[must_use]
pub fn fnv1a64_extend(state: u64, bytes: &[u8]) -> u64 {
    let mut hash = state;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn published_fnv1a_vectors_pin_the_function_for_all_time() {
        // From the FNV reference vectors: any drift here invalidates
        // every existing checkpoint footer, OCW1 frame checksum and
        // shard assignment in the wild.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn extend_from_the_offset_basis_is_the_one_shot_hash() {
        for input in [&b""[..], b"a", b"foobar", b"tenant-a/sensor-0"] {
            assert_eq!(fnv1a64_extend(FNV_OFFSET_BASIS, input), fnv1a64(input));
        }
    }

    /// The pre-dedup private copy, verbatim — the bitwise-compatibility
    /// witness for checkpoints and frames written before the shared
    /// function existed.
    fn legacy_fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    proptest! {
        #[test]
        fn bitwise_compatible_with_the_legacy_private_copies(
            bytes in prop::collection::vec(0u8..=u8::MAX, 0..256),
        ) {
            prop_assert_eq!(fnv1a64(&bytes), legacy_fnv1a(&bytes));
        }

        #[test]
        fn hashing_a_concatenation_equals_chaining_extends(
            a in prop::collection::vec(0u8..=u8::MAX, 0..64),
            b in prop::collection::vec(0u8..=u8::MAX, 0..64),
        ) {
            let mut joined = a.clone();
            joined.extend_from_slice(&b);
            prop_assert_eq!(
                fnv1a64(&joined),
                fnv1a64_extend(fnv1a64(&a), &b)
            );
        }

        #[test]
        fn single_byte_perturbations_change_the_hash(
            bytes in prop::collection::vec(0u8..=u8::MAX, 1..64),
            at in 0usize..64,
            flip in 1u8..=u8::MAX,
        ) {
            let mut mutated = bytes.clone();
            let i = at % mutated.len();
            mutated[i] ^= flip;
            prop_assert_ne!(fnv1a64(&mutated), fnv1a64(&bytes));
        }
    }
}
