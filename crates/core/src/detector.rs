//! The occupancy detector: the paper's §IV-B model plus its baselines,
//! behind one train/predict/evaluate interface.

use crate::sampling::stratified_subsample;
use occusense_baselines::forest::{ForestConfig, RandomForest};
use occusense_baselines::logreg::{LogRegConfig, LogisticRegression};
use occusense_dataset::{CsiRecord, Dataset, FeatureView, Standardizer};
use occusense_nn::loss::BceWithLogits;
use occusense_nn::optim::AdamW;
use occusense_nn::train::{TrainConfig, Trainer};
use occusense_nn::{Mlp, MlpWorkspace};
use occusense_stats::metrics::ConfusionMatrix;
use occusense_tensor::kernels::Parallelism;
use occusense_tensor::Matrix;

/// Which model family the detector trains (the three columns groups of
/// Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelKind {
    /// The paper's lightweight MLP (§IV-B).
    #[default]
    Mlp,
    /// Linear baseline.
    LogisticRegression,
    /// Non-linear ensemble baseline.
    RandomForest,
}

impl ModelKind {
    /// Table-header name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::LogisticRegression => "Logistic Regressor",
            ModelKind::RandomForest => "Random Forest",
            ModelKind::Mlp => "MLP",
        }
    }

    /// All models of Table IV, in paper column order.
    pub const TABLE4: [ModelKind; 3] = [
        ModelKind::LogisticRegression,
        ModelKind::RandomForest,
        ModelKind::Mlp,
    ];
}

/// Detector hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Model family.
    pub model: ModelKind,
    /// Feature subset the model sees.
    pub features: FeatureView,
    /// Master seed (weight init, shuffling, bootstrap).
    pub seed: u64,
    /// Stratified cap on the training set (`None` = use everything).
    /// See EXPERIMENTS.md: the paper trains on 3.7 M rows on a GPU; this
    /// reproduction trains on a stratified subsample.
    pub max_train_samples: Option<usize>,
    /// MLP: epochs (paper: 10).
    pub mlp_epochs: usize,
    /// MLP: mini-batch size.
    pub mlp_batch_size: usize,
    /// MLP: learning rate (paper: 5e-3).
    pub mlp_learning_rate: f64,
    /// MLP: decoupled weight decay (the paper's \[23\] strategy).
    pub mlp_weight_decay: f64,
    /// Logistic-regression hyper-parameters.
    pub logreg: LogRegConfig,
    /// Random-forest hyper-parameters.
    pub forest: ForestConfig,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::Mlp,
            features: FeatureView::Csi,
            seed: 0,
            max_train_samples: Some(50_000),
            mlp_epochs: 10,
            mlp_batch_size: 256,
            mlp_learning_rate: 5e-3,
            mlp_weight_decay: 1e-4,
            logreg: LogRegConfig::default(),
            forest: ForestConfig::default(),
        }
    }
}

/// The fitted model behind a detector.
#[derive(Debug, Clone, PartialEq)]
enum FittedModel {
    Mlp(Mlp),
    LogReg(LogisticRegression),
    Forest(RandomForest),
}

/// A trained occupancy detector, never retrained across folds (§V-B).
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyDetector {
    features: FeatureView,
    standardizer: Standardizer,
    model: FittedModel,
}

/// Reusable buffers for repeated batch scoring — the serve worker's hot
/// path. Holds the design matrix and the MLP forward workspace so a
/// steady stream of batches is scored without heap allocations (assert
/// via [`ScoreWorkspace::reallocs`]).
#[derive(Debug, Clone, Default)]
pub struct ScoreWorkspace {
    x: Matrix,
    mlp_ws: MlpWorkspace,
}

impl ScoreWorkspace {
    /// An empty workspace running the kernels single-threaded.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty workspace with the given kernel parallelism. The
    /// parallel kernels are bitwise-identical to single-threaded ones,
    /// so scores do not depend on this setting.
    pub fn with_parallelism(parallelism: Parallelism) -> Self {
        Self {
            mlp_ws: MlpWorkspace::with_parallelism(parallelism),
            ..Self::default()
        }
    }

    /// Number of buffer-growth events since creation; flat across
    /// batches ⇒ steady-state scoring is allocation-free.
    pub fn reallocs(&self) -> u64 {
        self.mlp_ws.reallocs()
    }
}

thread_local! {
    /// Per-thread workspace (plus a score buffer) behind the
    /// convenience scoring APIs [`OccupancyDetector::predict_proba`]
    /// and [`OccupancyDetector::predict_record`], so callers that
    /// don't manage a [`ScoreWorkspace`] themselves still score
    /// allocation-free in the steady state.
    static LOCAL_SCORE_WS: std::cell::RefCell<(ScoreWorkspace, Vec<f64>)> =
        std::cell::RefCell::new((ScoreWorkspace::new(), Vec::new()));
}

impl OccupancyDetector {
    /// Trains a detector on the training dataset.
    ///
    /// Features are extracted per `config.features`, standardised with
    /// training statistics (applied unchanged at test time) and the model
    /// is fit on a stratified subsample of at most
    /// `config.max_train_samples` records.
    ///
    /// # Panics
    ///
    /// Panics if the training dataset is empty.
    pub fn train(train: &Dataset, config: &DetectorConfig) -> Self {
        assert!(!train.is_empty(), "detector: empty training set");
        let sub = match config.max_train_samples {
            Some(max) => stratified_subsample(train, max, config.seed),
            None => train.clone(),
        };
        let x_raw = config.features.design_matrix(&sub);
        let standardizer = Standardizer::fit(&x_raw);
        let x = standardizer.transform(&x_raw);
        let labels = sub.labels();

        let model = match config.model {
            ModelKind::LogisticRegression => {
                let cfg = LogRegConfig {
                    seed: config.seed,
                    ..config.logreg
                };
                FittedModel::LogReg(LogisticRegression::fit(&x, &labels, &cfg))
            }
            ModelKind::RandomForest => {
                let cfg = ForestConfig {
                    seed: config.seed,
                    ..config.forest
                };
                let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
                FittedModel::Forest(RandomForest::fit(&x, &y, &cfg))
            }
            ModelKind::Mlp => {
                let mut mlp = Mlp::paper_classifier(config.features.dimension(), config.seed);
                let mut optim = AdamW::new(config.mlp_learning_rate, config.mlp_weight_decay);
                let trainer = Trainer::new(TrainConfig {
                    epochs: config.mlp_epochs,
                    batch_size: config.mlp_batch_size,
                    shuffle_seed: config.seed,
                    ..TrainConfig::default()
                });
                let y = Matrix::col_vector(&labels.iter().map(|&l| l as f64).collect::<Vec<_>>());
                trainer.fit(&mut mlp, &x, &y, &BceWithLogits, &mut optim);
                FittedModel::Mlp(mlp)
            }
        };

        Self {
            features: config.features,
            standardizer,
            model,
        }
    }

    /// Reassembles an MLP-backed detector from persisted parts (see
    /// [`crate::persist`]).
    pub fn from_parts(features: FeatureView, standardizer: Standardizer, mlp: Mlp) -> Self {
        Self {
            features,
            standardizer,
            model: FittedModel::Mlp(mlp),
        }
    }

    /// The feature view the detector was trained with.
    pub fn features(&self) -> FeatureView {
        self.features
    }

    /// The train-time standardizer (needed for persistence).
    pub fn standardizer(&self) -> &Standardizer {
        &self.standardizer
    }

    /// The trained MLP, if this detector is MLP-backed (used by Grad-CAM).
    pub fn mlp(&self) -> Option<&Mlp> {
        match &self.model {
            FittedModel::Mlp(m) => Some(m),
            _ => None,
        }
    }

    /// Standardised design matrix of a dataset under this detector's
    /// feature view (exposed for the explainability pipeline).
    pub fn features_of(&self, dataset: &Dataset) -> Matrix {
        self.standardizer
            .transform(&self.features.design_matrix(dataset))
    }

    /// Positive-class probabilities for every record of a dataset.
    ///
    /// Runs on a thread-local [`ScoreWorkspace`], so repeated calls on
    /// the same thread are allocation-free in the steady state apart
    /// from the returned vector.
    pub fn predict_proba(&self, dataset: &Dataset) -> Vec<f64> {
        let mut out = Vec::with_capacity(dataset.len());
        LOCAL_SCORE_WS.with(|ws| {
            let (ws, _) = &mut *ws.borrow_mut();
            self.predict_proba_slice_into(dataset.records(), ws, &mut out);
        });
        out
    }

    /// Positive-class probabilities for a slice of records, written
    /// into `out` through a caller-owned [`ScoreWorkspace`] — the
    /// allocation-free batch-scoring path the serve workers run on.
    ///
    /// Probabilities are bitwise identical to
    /// [`predict_proba`](Self::predict_proba) over a dataset of the
    /// same records, and (element for element) to
    /// [`predict_record`](Self::predict_record) — batching and
    /// parallelism never change a score.
    // lint:no_alloc
    pub fn predict_proba_slice_into(
        &self,
        records: &[CsiRecord],
        ws: &mut ScoreWorkspace,
        out: &mut Vec<f64>,
    ) {
        if self.features.design_matrix_rows_into(records, &mut ws.x) {
            ws.mlp_ws.scratch_mut().note_grow();
        }
        self.standardizer.transform_inplace(&mut ws.x);
        match &self.model {
            FittedModel::Mlp(m) => m.predict_proba_into(&ws.x, &mut ws.mlp_ws, out),
            FittedModel::LogReg(m) => {
                out.clear();
                // lint:allow(alloc, reason = "baseline model path: LogReg scoring is not the serve hot path and returns a fresh Vec internally anyway")
                out.extend(m.predict_proba(&ws.x));
            }
            FittedModel::Forest(m) => {
                out.clear();
                // lint:allow(alloc, reason = "baseline model path: random-forest scoring is not the serve hot path and returns a fresh Vec internally anyway")
                out.extend(m.predict(&ws.x));
            }
        }
    }
    // lint:end_no_alloc

    /// Binary occupancy predictions for every record.
    pub fn predict(&self, dataset: &Dataset) -> Vec<u8> {
        self.predict_proba(dataset)
            .into_iter()
            .map(|p| u8::from(p > 0.5))
            .collect()
    }

    /// Online single-record prediction `(label, confidence)` — the
    /// real-time deployment path the paper targets (Nucleo-class
    /// devices). Scores through the thread-local [`ScoreWorkspace`]
    /// (allocation-free in the steady state); by the kernels' batch
    /// invariance the confidence is bitwise identical to the same
    /// record scored inside any batch.
    pub fn predict_record(&self, record: &CsiRecord) -> (u8, f64) {
        LOCAL_SCORE_WS.with(|ws| {
            let (ws, out) = &mut *ws.borrow_mut();
            self.predict_proba_slice_into(std::slice::from_ref(record), ws, out);
            let p = out[0];
            (u8::from(p > 0.5), p)
        })
    }

    /// Confusion matrix of the detector over a labelled dataset.
    pub fn evaluate(&self, dataset: &Dataset) -> ConfusionMatrix {
        ConfusionMatrix::from_labels(&dataset.labels(), &self.predict(dataset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occusense_sim::{simulate, ScenarioConfig};

    fn quick_split() -> (Dataset, Dataset) {
        let ds = simulate(&ScenarioConfig::quick(1600.0, 21));
        let split = (ds.len() * 7) / 10;
        (
            ds.records()[..split].iter().copied().collect(),
            ds.records()[split..].iter().copied().collect(),
        )
    }

    #[test]
    fn all_three_models_beat_chance_on_csi() {
        let (train, test) = quick_split();
        for model in ModelKind::TABLE4 {
            let cfg = DetectorConfig {
                model,
                features: FeatureView::Csi,
                mlp_epochs: 5,
                // The quick scenario is ~100× smaller than the full
                // campaign, so SGD gets far fewer updates per epoch;
                // give logreg a proportionally longer schedule.
                logreg: LogRegConfig {
                    epochs: 300,
                    learning_rate: 1.0,
                    ..LogRegConfig::default()
                },
                forest: ForestConfig {
                    n_trees: 10,
                    ..ForestConfig::default()
                },
                ..DetectorConfig::default()
            };
            let det = OccupancyDetector::train(&train, &cfg);
            let acc = det.evaluate(&test).accuracy();
            assert!(acc > 0.6, "{model:?}: accuracy {acc}");
        }
    }

    #[test]
    fn predict_record_matches_batch_path() {
        let (train, test) = quick_split();
        let det = OccupancyDetector::train(
            &train,
            &DetectorConfig {
                model: ModelKind::LogisticRegression,
                ..DetectorConfig::default()
            },
        );
        let batch = det.predict_proba(&test);
        for (r, &pb) in test.iter().zip(&batch).take(20) {
            let (_, p) = det.predict_record(r);
            assert!((p - pb).abs() < 1e-12);
        }
    }

    #[test]
    fn mlp_accessor_only_for_mlp() {
        let (train, _) = quick_split();
        let mlp_det = OccupancyDetector::train(
            &train,
            &DetectorConfig {
                mlp_epochs: 1,
                ..DetectorConfig::default()
            },
        );
        assert!(mlp_det.mlp().is_some());
        let lr_det = OccupancyDetector::train(
            &train,
            &DetectorConfig {
                model: ModelKind::LogisticRegression,
                ..DetectorConfig::default()
            },
        );
        assert!(lr_det.mlp().is_none());
    }

    #[test]
    fn training_is_deterministic() {
        let (train, test) = quick_split();
        let cfg = DetectorConfig {
            model: ModelKind::Mlp,
            mlp_epochs: 2,
            ..DetectorConfig::default()
        };
        let a = OccupancyDetector::train(&train, &cfg);
        let b = OccupancyDetector::train(&train, &cfg);
        assert_eq!(a.predict_proba(&test), b.predict_proba(&test));
    }

    #[test]
    fn feature_views_produce_correct_dimensions() {
        let (train, _) = quick_split();
        for view in [FeatureView::Csi, FeatureView::Env, FeatureView::CsiEnv] {
            let det = OccupancyDetector::train(
                &train,
                &DetectorConfig {
                    model: ModelKind::LogisticRegression,
                    features: view,
                    ..DetectorConfig::default()
                },
            );
            assert_eq!(det.features_of(&train).cols(), view.dimension());
        }
    }

    #[test]
    fn slice_scoring_matches_dataset_path_and_is_allocation_free() {
        let (train, test) = quick_split();
        let det = OccupancyDetector::train(
            &train,
            &DetectorConfig {
                model: ModelKind::Mlp,
                mlp_epochs: 1,
                ..DetectorConfig::default()
            },
        );
        let want = det.predict_proba(&test);
        let mut ws = ScoreWorkspace::new();
        let mut got = Vec::new();
        det.predict_proba_slice_into(test.records(), &mut ws, &mut got);
        assert_eq!(got, want, "slice path diverged from dataset path");
        // Steady state: re-scoring batches no larger than the warm-up
        // batch never grows a buffer — the serve worker's hot loop.
        let warm = ws.reallocs();
        for chunk in test.records().chunks(64).take(10) {
            det.predict_proba_slice_into(chunk, &mut ws, &mut got);
        }
        det.predict_proba_slice_into(test.records(), &mut ws, &mut got);
        assert_eq!(got, want);
        assert_eq!(ws.reallocs(), warm, "steady-state scoring grew a buffer");
    }

    #[test]
    fn model_names_match_paper() {
        assert_eq!(ModelKind::Mlp.name(), "MLP");
        assert_eq!(ModelKind::RandomForest.name(), "Random Forest");
        assert_eq!(ModelKind::LogisticRegression.name(), "Logistic Regressor");
    }
}
