//! The occupancy detector: the paper's §IV-B model plus its baselines,
//! behind one train/predict/evaluate interface.

use crate::sampling::stratified_subsample;
use occusense_baselines::forest::{ForestConfig, RandomForest};
use occusense_baselines::logreg::{LogRegConfig, LogisticRegression};
use occusense_dataset::{CsiRecord, Dataset, FeatureView, Standardizer};
use occusense_nn::loss::BceWithLogits;
use occusense_nn::optim::AdamW;
use occusense_nn::train::{TrainConfig, Trainer};
use occusense_nn::Mlp;
use occusense_stats::metrics::ConfusionMatrix;
use occusense_tensor::Matrix;

/// Which model family the detector trains (the three columns groups of
/// Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelKind {
    /// The paper's lightweight MLP (§IV-B).
    #[default]
    Mlp,
    /// Linear baseline.
    LogisticRegression,
    /// Non-linear ensemble baseline.
    RandomForest,
}

impl ModelKind {
    /// Table-header name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::LogisticRegression => "Logistic Regressor",
            ModelKind::RandomForest => "Random Forest",
            ModelKind::Mlp => "MLP",
        }
    }

    /// All models of Table IV, in paper column order.
    pub const TABLE4: [ModelKind; 3] = [
        ModelKind::LogisticRegression,
        ModelKind::RandomForest,
        ModelKind::Mlp,
    ];
}

/// Detector hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Model family.
    pub model: ModelKind,
    /// Feature subset the model sees.
    pub features: FeatureView,
    /// Master seed (weight init, shuffling, bootstrap).
    pub seed: u64,
    /// Stratified cap on the training set (`None` = use everything).
    /// See EXPERIMENTS.md: the paper trains on 3.7 M rows on a GPU; this
    /// reproduction trains on a stratified subsample.
    pub max_train_samples: Option<usize>,
    /// MLP: epochs (paper: 10).
    pub mlp_epochs: usize,
    /// MLP: mini-batch size.
    pub mlp_batch_size: usize,
    /// MLP: learning rate (paper: 5e-3).
    pub mlp_learning_rate: f64,
    /// MLP: decoupled weight decay (the paper's \[23\] strategy).
    pub mlp_weight_decay: f64,
    /// Logistic-regression hyper-parameters.
    pub logreg: LogRegConfig,
    /// Random-forest hyper-parameters.
    pub forest: ForestConfig,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::Mlp,
            features: FeatureView::Csi,
            seed: 0,
            max_train_samples: Some(50_000),
            mlp_epochs: 10,
            mlp_batch_size: 256,
            mlp_learning_rate: 5e-3,
            mlp_weight_decay: 1e-4,
            logreg: LogRegConfig::default(),
            forest: ForestConfig::default(),
        }
    }
}

/// The fitted model behind a detector.
#[derive(Debug, Clone, PartialEq)]
enum FittedModel {
    Mlp(Mlp),
    LogReg(LogisticRegression),
    Forest(RandomForest),
}

/// A trained occupancy detector, never retrained across folds (§V-B).
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyDetector {
    features: FeatureView,
    standardizer: Standardizer,
    model: FittedModel,
}

impl OccupancyDetector {
    /// Trains a detector on the training dataset.
    ///
    /// Features are extracted per `config.features`, standardised with
    /// training statistics (applied unchanged at test time) and the model
    /// is fit on a stratified subsample of at most
    /// `config.max_train_samples` records.
    ///
    /// # Panics
    ///
    /// Panics if the training dataset is empty.
    pub fn train(train: &Dataset, config: &DetectorConfig) -> Self {
        assert!(!train.is_empty(), "detector: empty training set");
        let sub = match config.max_train_samples {
            Some(max) => stratified_subsample(train, max, config.seed),
            None => train.clone(),
        };
        let x_raw = config.features.design_matrix(&sub);
        let standardizer = Standardizer::fit(&x_raw);
        let x = standardizer.transform(&x_raw);
        let labels = sub.labels();

        let model = match config.model {
            ModelKind::LogisticRegression => {
                let cfg = LogRegConfig {
                    seed: config.seed,
                    ..config.logreg
                };
                FittedModel::LogReg(LogisticRegression::fit(&x, &labels, &cfg))
            }
            ModelKind::RandomForest => {
                let cfg = ForestConfig {
                    seed: config.seed,
                    ..config.forest
                };
                let y: Vec<f64> = labels.iter().map(|&l| l as f64).collect();
                FittedModel::Forest(RandomForest::fit(&x, &y, &cfg))
            }
            ModelKind::Mlp => {
                let mut mlp = Mlp::paper_classifier(config.features.dimension(), config.seed);
                let mut optim = AdamW::new(config.mlp_learning_rate, config.mlp_weight_decay);
                let trainer = Trainer::new(TrainConfig {
                    epochs: config.mlp_epochs,
                    batch_size: config.mlp_batch_size,
                    shuffle_seed: config.seed,
                });
                let y = Matrix::col_vector(&labels.iter().map(|&l| l as f64).collect::<Vec<_>>());
                trainer.fit(&mut mlp, &x, &y, &BceWithLogits, &mut optim);
                FittedModel::Mlp(mlp)
            }
        };

        Self {
            features: config.features,
            standardizer,
            model,
        }
    }

    /// Reassembles an MLP-backed detector from persisted parts (see
    /// [`crate::persist`]).
    pub fn from_parts(features: FeatureView, standardizer: Standardizer, mlp: Mlp) -> Self {
        Self {
            features,
            standardizer,
            model: FittedModel::Mlp(mlp),
        }
    }

    /// The feature view the detector was trained with.
    pub fn features(&self) -> FeatureView {
        self.features
    }

    /// The train-time standardizer (needed for persistence).
    pub fn standardizer(&self) -> &Standardizer {
        &self.standardizer
    }

    /// The trained MLP, if this detector is MLP-backed (used by Grad-CAM).
    pub fn mlp(&self) -> Option<&Mlp> {
        match &self.model {
            FittedModel::Mlp(m) => Some(m),
            _ => None,
        }
    }

    /// Standardised design matrix of a dataset under this detector's
    /// feature view (exposed for the explainability pipeline).
    pub fn features_of(&self, dataset: &Dataset) -> Matrix {
        self.standardizer
            .transform(&self.features.design_matrix(dataset))
    }

    /// Positive-class probabilities for every record of a dataset.
    pub fn predict_proba(&self, dataset: &Dataset) -> Vec<f64> {
        let x = self.features_of(dataset);
        match &self.model {
            FittedModel::Mlp(m) => m.predict_proba(&x),
            FittedModel::LogReg(m) => m.predict_proba(&x),
            FittedModel::Forest(m) => m.predict(&x),
        }
    }

    /// Binary occupancy predictions for every record.
    pub fn predict(&self, dataset: &Dataset) -> Vec<u8> {
        self.predict_proba(dataset)
            .into_iter()
            .map(|p| u8::from(p > 0.5))
            .collect()
    }

    /// Online single-record prediction `(label, confidence)` — the
    /// real-time deployment path the paper targets (Nucleo-class
    /// devices).
    pub fn predict_record(&self, record: &CsiRecord) -> (u8, f64) {
        let raw = self.features.extract(record);
        let z = self.standardizer.transform_row(&raw);
        let x = Matrix::row_vector(&z);
        let p = match &self.model {
            FittedModel::Mlp(m) => m.predict_proba(&x)[0],
            FittedModel::LogReg(m) => m.predict_proba(&x)[0],
            FittedModel::Forest(m) => m.predict(&x)[0],
        };
        (u8::from(p > 0.5), p)
    }

    /// Confusion matrix of the detector over a labelled dataset.
    pub fn evaluate(&self, dataset: &Dataset) -> ConfusionMatrix {
        ConfusionMatrix::from_labels(&dataset.labels(), &self.predict(dataset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occusense_sim::{simulate, ScenarioConfig};

    fn quick_split() -> (Dataset, Dataset) {
        let ds = simulate(&ScenarioConfig::quick(1600.0, 21));
        let split = (ds.len() * 7) / 10;
        (
            ds.records()[..split].iter().copied().collect(),
            ds.records()[split..].iter().copied().collect(),
        )
    }

    #[test]
    fn all_three_models_beat_chance_on_csi() {
        let (train, test) = quick_split();
        for model in ModelKind::TABLE4 {
            let cfg = DetectorConfig {
                model,
                features: FeatureView::Csi,
                mlp_epochs: 5,
                // The quick scenario is ~100× smaller than the full
                // campaign, so SGD gets far fewer updates per epoch;
                // give logreg a proportionally longer schedule.
                logreg: LogRegConfig {
                    epochs: 300,
                    learning_rate: 1.0,
                    ..LogRegConfig::default()
                },
                forest: ForestConfig {
                    n_trees: 10,
                    ..ForestConfig::default()
                },
                ..DetectorConfig::default()
            };
            let det = OccupancyDetector::train(&train, &cfg);
            let acc = det.evaluate(&test).accuracy();
            assert!(acc > 0.6, "{model:?}: accuracy {acc}");
        }
    }

    #[test]
    fn predict_record_matches_batch_path() {
        let (train, test) = quick_split();
        let det = OccupancyDetector::train(
            &train,
            &DetectorConfig {
                model: ModelKind::LogisticRegression,
                ..DetectorConfig::default()
            },
        );
        let batch = det.predict_proba(&test);
        for (r, &pb) in test.iter().zip(&batch).take(20) {
            let (_, p) = det.predict_record(r);
            assert!((p - pb).abs() < 1e-12);
        }
    }

    #[test]
    fn mlp_accessor_only_for_mlp() {
        let (train, _) = quick_split();
        let mlp_det = OccupancyDetector::train(
            &train,
            &DetectorConfig {
                mlp_epochs: 1,
                ..DetectorConfig::default()
            },
        );
        assert!(mlp_det.mlp().is_some());
        let lr_det = OccupancyDetector::train(
            &train,
            &DetectorConfig {
                model: ModelKind::LogisticRegression,
                ..DetectorConfig::default()
            },
        );
        assert!(lr_det.mlp().is_none());
    }

    #[test]
    fn training_is_deterministic() {
        let (train, test) = quick_split();
        let cfg = DetectorConfig {
            model: ModelKind::Mlp,
            mlp_epochs: 2,
            ..DetectorConfig::default()
        };
        let a = OccupancyDetector::train(&train, &cfg);
        let b = OccupancyDetector::train(&train, &cfg);
        assert_eq!(a.predict_proba(&test), b.predict_proba(&test));
    }

    #[test]
    fn feature_views_produce_correct_dimensions() {
        let (train, _) = quick_split();
        for view in [FeatureView::Csi, FeatureView::Env, FeatureView::CsiEnv] {
            let det = OccupancyDetector::train(
                &train,
                &DetectorConfig {
                    model: ModelKind::LogisticRegression,
                    features: view,
                    ..DetectorConfig::default()
                },
            );
            assert_eq!(det.features_of(&train).cols(), view.dimension());
        }
    }

    #[test]
    fn model_names_match_paper() {
        assert_eq!(ModelKind::Mlp.name(), "MLP");
        assert_eq!(ModelKind::RandomForest.name(), "Random Forest");
        assert_eq!(ModelKind::LogisticRegression.name(), "Logistic Regressor");
    }
}
