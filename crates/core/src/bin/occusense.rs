//! `occusense` — command-line interface to the WiFi-CSI occupancy
//! pipeline: simulate a campaign, train a detector, evaluate it, explain
//! it — each step persisted to plain files so the stages compose.
//!
//! ```text
//! occusense simulate --out data.csv --quick 2400 --seed 42
//! occusense train    --data data.csv --out model.txt --features csi
//! occusense evaluate --data data.csv --model model.txt
//! occusense explain  --data data.csv --model model.txt --top 10
//! ```

use occusense_core::dataset::csv;
use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_core::explain::Explanation;
use occusense_core::persist;
use occusense_core::sim::{simulate, ScenarioConfig};
use occusense_core::{Dataset, FeatureView};
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

const USAGE: &str = "\
occusense — WiFi CSI occupancy detection (DATE 2023 reproduction)

USAGE:
  occusense simulate --out <file.csv> [--quick <secs> | --campaign] [--rate <hz>] [--seed <u64>]
  occusense train    --data <file.csv> --out <model.txt> [--features csi|env|c+e] [--epochs <n>] [--seed <u64>] [--split <0..1>]
  occusense evaluate --data <file.csv> --model <model.txt> [--split <0..1>]
  occusense explain  --data <file.csv> --model <model.txt> [--top <n>]

simulate writes a Table-I-format CSV; train fits the paper's MLP on the
first --split fraction (default 0.7) and saves it; evaluate reports the
confusion matrix on the remaining fraction; explain prints Grad-CAM
feature importance.";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("missing subcommand")?;
    let flags = parse_flags(args)?;
    match command.as_str() {
        "simulate" => cmd_simulate(&flags),
        "train" => cmd_train(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "explain" => cmd_explain(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn parse_flags(args: impl Iterator<Item = String>) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got '{flag}'"))?;
        // --campaign is a boolean flag; everything else takes a value.
        if name == "campaign" {
            flags.insert(name.to_owned(), "true".to_owned());
            continue;
        }
        let value = args
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags.insert(name.to_owned(), value);
    }
    Ok(flags)
}

fn get<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("bad --{name} '{v}': {e}")),
    }
}

fn load_dataset(path: &str) -> Result<Dataset, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    csv::read_csv(BufReader::new(file)).map_err(|e| e.to_string())
}

fn split_dataset(ds: &Dataset, fraction: f64) -> (Dataset, Dataset) {
    let split = ((ds.len() as f64) * fraction).round() as usize;
    let split = split.clamp(1, ds.len().saturating_sub(1).max(1));
    (
        ds.records()[..split].iter().copied().collect(),
        ds.records()[split..].iter().copied().collect(),
    )
}

fn feature_view(flags: &HashMap<String, String>) -> Result<FeatureView, String> {
    match flags.get("features").map(String::as_str) {
        None | Some("csi") => Ok(FeatureView::Csi),
        Some("env") => Ok(FeatureView::Env),
        Some("c+e") | Some("csi-env") => Ok(FeatureView::CsiEnv),
        Some(other) => Err(format!("unknown --features '{other}' (csi|env|c+e)")),
    }
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = get(flags, "out")?;
    let seed = parse(flags, "seed", 0u64)?;
    let rate = parse(flags, "rate", 2.0f64)?;
    let config = if flags.contains_key("campaign") {
        let mut cfg = ScenarioConfig::turetta2022(seed);
        cfg.sample_rate_hz = rate;
        cfg
    } else {
        let secs = parse(flags, "quick", 2400.0f64)?;
        let mut cfg = ScenarioConfig::quick(secs, seed);
        cfg.sample_rate_hz = rate;
        cfg
    };
    eprintln!("simulating {} samples at {} Hz…", config.n_samples(), rate);
    let ds = simulate(&config);
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    csv::write_csv(BufWriter::new(file), &ds).map_err(|e| e.to_string())?;
    println!("wrote {} records to {out}", ds.len());
    Ok(())
}

fn cmd_train(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = load_dataset(get(flags, "data")?)?;
    let out = get(flags, "out")?;
    let fraction = parse(flags, "split", 0.7f64)?;
    let (train, holdout) = split_dataset(&ds, fraction);
    let config = DetectorConfig {
        model: ModelKind::Mlp,
        features: feature_view(flags)?,
        seed: parse(flags, "seed", 0u64)?,
        mlp_epochs: parse(flags, "epochs", 10usize)?,
        ..DetectorConfig::default()
    };
    eprintln!(
        "training MLP on {} records ({} features)…",
        train.len(),
        config.features.dimension()
    );
    let detector = OccupancyDetector::train(&train, &config);
    let file = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    persist::save_detector(BufWriter::new(file), &detector).map_err(|e| e.to_string())?;
    let cm = detector.evaluate(&holdout);
    println!("saved detector to {out}");
    println!("holdout ({} records): {cm}", holdout.len());
    Ok(())
}

fn cmd_evaluate(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = load_dataset(get(flags, "data")?)?;
    let model_path = get(flags, "model")?;
    let file = File::open(model_path).map_err(|e| format!("open {model_path}: {e}"))?;
    let detector = persist::load_detector(BufReader::new(file)).map_err(|e| e.to_string())?;
    let fraction = parse(flags, "split", 0.7f64)?;
    let (_, holdout) = split_dataset(&ds, fraction);
    let cm = detector.evaluate(&holdout);
    println!("evaluated {} records: {cm}", holdout.len());
    println!(
        "precision {:.3}  recall {:.3}  F1 {:.3}",
        cm.precision(),
        cm.recall(),
        cm.f1()
    );
    Ok(())
}

fn cmd_explain(flags: &HashMap<String, String>) -> Result<(), String> {
    let ds = load_dataset(get(flags, "data")?)?;
    let model_path = get(flags, "model")?;
    let file = File::open(model_path).map_err(|e| format!("open {model_path}: {e}"))?;
    let detector = persist::load_detector(BufReader::new(file)).map_err(|e| e.to_string())?;
    let top = parse(flags, "top", 10usize)?;
    let explanation =
        Explanation::of(&detector, &ds).ok_or("detector is not explainable (not an MLP)")?;
    println!("top {top} features by |Grad-CAM importance|:");
    for idx in explanation.top_features(top) {
        println!(
            "  {:>4}  {:+.5}",
            explanation.feature_names[idx], explanation.importance[idx]
        );
    }
    Ok(())
}
