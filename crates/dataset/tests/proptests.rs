//! Property-based tests for the dataset crate.

use occusense_dataset::csv;
use occusense_dataset::profile::OccupancyProfile;
use occusense_dataset::{CsiRecord, Dataset, FeatureView, Standardizer};
use occusense_tensor::Matrix;
use proptest::prelude::*;

prop_compose! {
    fn record_strategy()(
        t in 0.0f64..1e6,
        amp in 0.0f64..1.0,
        temp in -5.0f64..45.0,
        hum in 0.0f64..100.0,
        occ in 0u8..7,
    ) -> CsiRecord {
        let mut csi = [0.0; 64];
        for (i, a) in csi.iter_mut().enumerate() {
            *a = (amp + i as f64 * 0.001).min(1.0);
        }
        CsiRecord::new(t, csi, temp, hum.round(), occ)
    }
}

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(record_strategy(), 0..40).prop_map(|mut records| {
        records.sort_by(|a, b| a.timestamp_s.partial_cmp(&b.timestamp_s).unwrap());
        Dataset::from_records(records)
    })
}

proptest! {
    #[test]
    fn slice_time_is_subset_and_ordered(ds in dataset_strategy(), a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let sliced = ds.slice_time(lo, hi);
        prop_assert!(sliced.len() <= ds.len());
        for r in &sliced {
            prop_assert!(r.timestamp_s >= lo && r.timestamp_s < hi);
        }
        for w in sliced.records().windows(2) {
            prop_assert!(w[0].timestamp_s <= w[1].timestamp_s);
        }
    }

    #[test]
    fn full_slice_is_identity(ds in dataset_strategy()) {
        let all = ds.slice_time(f64::NEG_INFINITY, f64::INFINITY);
        prop_assert_eq!(all, ds);
    }

    #[test]
    fn profile_conserves_totals(ds in dataset_strategy()) {
        let p = OccupancyProfile::of(&ds, 4);
        prop_assert_eq!(p.total(), ds.len());
        prop_assert_eq!(p.empty_total() + p.occupied_total(), ds.len());
        let label_occupied = ds.labels().iter().filter(|&&l| l == 1).count();
        prop_assert_eq!(p.occupied_total(), label_occupied);
    }

    #[test]
    fn csv_round_trip(ds in dataset_strategy()) {
        let mut buf = Vec::new();
        csv::write_csv(&mut buf, &ds).unwrap();
        let back = csv::read_csv(&buf[..]).unwrap();
        prop_assert_eq!(back.len(), ds.len());
        for (a, b) in back.iter().zip(&ds) {
            prop_assert!((a.timestamp_s - b.timestamp_s).abs() < 1e-12);
            prop_assert!((a.temperature_c - b.temperature_c).abs() < 1e-12);
            prop_assert_eq!(a.occupant_count, b.occupant_count);
        }
    }

    #[test]
    fn feature_views_have_declared_dimensions(r in record_strategy()) {
        for view in [FeatureView::Csi, FeatureView::Env, FeatureView::CsiEnv, FeatureView::TimeOnly] {
            prop_assert_eq!(view.extract(&r).len(), view.dimension());
        }
    }

    #[test]
    fn standardizer_output_is_zero_mean_unit_var(
        data in prop::collection::vec(-100.0f64..100.0, 8..60),
    ) {
        let rows = data.len() / 2;
        let x = Matrix::from_vec(rows, 2, data[..rows * 2].to_vec());
        let s = Standardizer::fit(&x);
        let z = s.transform(&x);
        for c in 0..2 {
            let col = z.col(c);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-8, "col {c} mean {mean}");
            let var: f64 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            // Either unit variance or an exactly-constant column.
            prop_assert!((var - 1.0).abs() < 1e-6 || var.abs() < 1e-12, "col {c} var {var}");
        }
    }

    #[test]
    fn standardizer_row_matches_matrix(data in prop::collection::vec(-50.0f64..50.0, 6..40)) {
        let rows = data.len() / 3;
        let x = Matrix::from_vec(rows, 3, data[..rows * 3].to_vec());
        let s = Standardizer::fit(&x);
        let z = s.transform(&x);
        for r in 0..rows {
            let row = s.transform_row(x.row(r));
            for (a, b) in row.iter().zip(z.row(r)) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dedup_keeps_dataset_sorted_and_unique(ds in dataset_strategy()) {
        let mut copy = ds.clone();
        copy.dedup_and_clean();
        for w in copy.records().windows(2) {
            prop_assert!(w[0].timestamp_s < w[1].timestamp_s);
        }
    }
}
