//! Table II-style occupancy-distribution profiling.

use crate::dataset::Dataset;

/// Distribution of simultaneous occupant counts over a dataset, mirroring
/// Table II of the paper ("simultaneous subject's presence distribution in
/// terms of data samples").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OccupancyProfile {
    /// `counts[k]` = number of samples with exactly `k` occupants;
    /// the last bucket aggregates `max_tracked` **or more**.
    counts: Vec<usize>,
}

impl OccupancyProfile {
    /// Profiles a dataset, tracking occupant counts `0..=max_tracked`
    /// (the paper's Table II tracks 0..=4).
    ///
    /// # Panics
    ///
    /// Panics if `max_tracked == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_dataset::{CsiRecord, Dataset};
    /// use occusense_dataset::profile::OccupancyProfile;
    ///
    /// let ds: Dataset = (0..4)
    ///     .map(|i| CsiRecord::new(i as f64, [0.1; 64], 20.0, 40.0, i as u8))
    ///     .collect();
    /// let p = OccupancyProfile::of(&ds, 4);
    /// assert_eq!(p.count(0), 1);
    /// assert_eq!(p.occupied_total(), 3);
    /// ```
    pub fn of(dataset: &Dataset, max_tracked: usize) -> Self {
        assert!(max_tracked > 0, "max_tracked must be positive");
        let mut counts = vec![0usize; max_tracked + 1];
        for r in dataset {
            let k = (r.occupant_count as usize).min(max_tracked);
            counts[k] += 1;
        }
        Self { counts }
    }

    /// Number of samples with exactly `k` occupants (the last tracked
    /// bucket aggregates higher counts).
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the tracked range.
    pub fn count(&self, k: usize) -> usize {
        self.counts[k]
    }

    /// Samples with zero occupants (the paper's "Empty = 0" column).
    pub fn empty_total(&self) -> usize {
        self.counts[0]
    }

    /// Samples with at least one occupant ("Occupied = 1").
    pub fn occupied_total(&self) -> usize {
        self.counts[1..].iter().sum()
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Percentage of samples with exactly `k` occupants.
    pub fn percentage(&self, k: usize) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * self.count(k) as f64 / self.total() as f64
        }
    }

    /// Per-bucket counts, index = occupant count.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CsiRecord;

    fn ds_with_counts(counts: &[u8]) -> Dataset {
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| CsiRecord::new(i as f64, [0.1; 64], 20.0, 40.0, c))
            .collect()
    }

    #[test]
    fn profile_buckets_and_totals() {
        let ds = ds_with_counts(&[0, 0, 0, 1, 1, 2, 3, 4]);
        let p = OccupancyProfile::of(&ds, 4);
        assert_eq!(p.count(0), 3);
        assert_eq!(p.count(1), 2);
        assert_eq!(p.count(2), 1);
        assert_eq!(p.count(3), 1);
        assert_eq!(p.count(4), 1);
        assert_eq!(p.empty_total(), 3);
        assert_eq!(p.occupied_total(), 5);
        assert_eq!(p.total(), 8);
        assert!((p.percentage(0) - 37.5).abs() < 1e-12);
    }

    #[test]
    fn overflow_bucket_aggregates() {
        let ds = ds_with_counts(&[5, 6, 4]);
        let p = OccupancyProfile::of(&ds, 4);
        assert_eq!(p.count(4), 3);
    }

    #[test]
    fn empty_dataset_profile() {
        let p = OccupancyProfile::of(&Dataset::new(), 4);
        assert_eq!(p.total(), 0);
        assert_eq!(p.percentage(0), 0.0);
        assert_eq!(p.counts(), &[0, 0, 0, 0, 0]);
    }
}
