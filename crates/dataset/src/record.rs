//! The Table I record schema.

/// Number of CSI subcarriers of the sensed 20 MHz channel
/// (`d_H = 3.2 · bandwidth`, §II-A).
pub const N_SUBCARRIERS: usize = 64;

/// One row of the collected dataset, mirroring Table I of the paper:
/// timestamp, CSI amplitude of the 64 subcarriers, temperature (°C),
/// humidity (%) and the occupancy label — plus the simultaneous occupant
/// head count, which the paper's annotators recorded to build Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsiRecord {
    /// Seconds since the start of the collection window.
    pub timestamp_s: f64,
    /// CSI amplitudes `a0..a63`.
    pub csi: [f64; N_SUBCARRIERS],
    /// Temperature in °C as reported by the environment sensor.
    pub temperature_c: f64,
    /// Relative humidity in % as reported by the environment sensor
    /// (integer-valued in the paper's Table I; we keep `f64` and let the
    /// sensor model quantise).
    pub humidity_pct: f64,
    /// Number of people in the room at this instant (ground truth).
    pub occupant_count: u8,
}

impl CsiRecord {
    /// Creates a record.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_dataset::record::CsiRecord;
    /// let r = CsiRecord::new(12.5, [0.03; 64], 21.97, 43.0, 2);
    /// assert_eq!(r.occupancy(), 1);
    /// ```
    pub fn new(
        timestamp_s: f64,
        csi: [f64; N_SUBCARRIERS],
        temperature_c: f64,
        humidity_pct: f64,
        occupant_count: u8,
    ) -> Self {
        Self {
            timestamp_s,
            csi,
            temperature_c,
            humidity_pct,
            occupant_count,
        }
    }

    /// The binary occupancy label of the paper: `0` if the environment is
    /// empty, `1` if at least one person is present.
    pub fn occupancy(&self) -> u8 {
        u8::from(self.occupant_count > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_label_thresholds_head_count() {
        let mut r = CsiRecord::new(0.0, [0.0; 64], 20.0, 40.0, 0);
        assert_eq!(r.occupancy(), 0);
        r.occupant_count = 1;
        assert_eq!(r.occupancy(), 1);
        r.occupant_count = 4;
        assert_eq!(r.occupancy(), 1);
    }

    #[test]
    fn record_is_copy_and_comparable() {
        let r = CsiRecord::new(1.0, [0.5; 64], 21.0, 35.0, 2);
        let s = r;
        assert_eq!(r, s);
    }
}
