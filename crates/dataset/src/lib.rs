//! # occusense-dataset
//!
//! Dataset containers and pipeline utilities for the `occusense` workspace:
//! the in-memory representation of the paper's Table I records, the fold
//! split of Table III, the occupancy profiling of Table II, feature-subset
//! extraction (CSI / Env / CSI+Env, §V-B), train-set standardisation and a
//! hand-rolled CSV reader/writer.
//!
//! * [`record`] — [`CsiRecord`]: one timestamped row of 64 CSI amplitudes,
//!   temperature, humidity, occupancy label and ground-truth head count.
//! * [`dataset`] — [`Dataset`]: an ordered collection of records with
//!   time-range queries.
//! * [`features`] — [`FeatureView`]: which columns a model sees.
//! * [`folds`] — [`FoldSpec`] and the paper's Table III timeline.
//! * [`profile`] — Table II-style occupancy distribution profiling.
//! * [`standardize`] — z-score [`Standardizer`] fit on training data only.
//! * [`csv`] — plain-text persistence in the Table I column layout.
//!
//! # Example
//!
//! ```
//! use occusense_dataset::record::CsiRecord;
//! use occusense_dataset::dataset::Dataset;
//! use occusense_dataset::features::FeatureView;
//!
//! let mut ds = Dataset::new();
//! ds.push(CsiRecord::new(0.0, [0.1; 64], 21.5, 40.0, 1));
//! let x = FeatureView::CsiEnv.design_matrix(&ds);
//! assert_eq!(x.shape(), (1, 66));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod csv;
pub mod dataset;
pub mod features;
pub mod folds;
pub mod profile;
pub mod record;
pub mod standardize;
pub mod windowed;

pub use dataset::Dataset;
pub use features::FeatureView;
pub use folds::FoldSpec;
pub use record::{CsiRecord, N_SUBCARRIERS};
pub use standardize::Standardizer;
