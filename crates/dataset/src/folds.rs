//! The temporal train/test split of Table III.
//!
//! The paper splits the 74-hour collection window temporally: the first
//! 70 % (fold 0) is the training set; the remaining 30 % is divided into
//! five contiguous test folds. Models are trained once on fold 0 and
//! **never retrained**; each test fold probes generalisation to a
//! different, temporally distant scenario (night folds 1–3 are empty,
//! fold 4 is the hard mixed morning, fold 5 a fully occupied afternoon).

use crate::dataset::Dataset;

/// One fold of the Table III timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldSpec {
    /// Fold index (0 = train, 1–5 = test).
    pub index: usize,
    /// Start of the fold, seconds since collection start.
    pub start_s: f64,
    /// End of the fold (exclusive), seconds since collection start.
    pub end_s: f64,
    /// Human-readable start label as printed in Table III.
    pub start_label: &'static str,
    /// Human-readable end label as printed in Table III.
    pub end_label: &'static str,
}

impl FoldSpec {
    /// Fold duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }

    /// Extracts this fold's records from a full-window dataset.
    pub fn slice<'a>(&self, dataset: &'a Dataset) -> Dataset
    where
        'a: 'a,
    {
        dataset.slice_time(self.start_s, self.end_s)
    }
}

/// Reference values Table III reports for each fold of the paper's
/// (real-hardware) dataset, used by the repro harness to print
/// paper-vs-measured rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperFoldStats {
    /// Empty-labelled samples.
    pub empty: u64,
    /// Occupied-labelled samples.
    pub occupied: u64,
    /// Temperature range (min, max) in °C.
    pub temperature: (f64, f64),
    /// Humidity range (min, max) in %.
    pub humidity: (f64, f64),
}

/// The six folds of Table III. Offsets are seconds since the collection
/// start on Jan 04 2022, 15:08:40 (§V-A).
///
/// # Example
///
/// ```
/// use occusense_dataset::folds::turetta_folds;
/// let folds = turetta_folds();
/// assert_eq!(folds.len(), 6);
/// assert_eq!(folds[0].start_s, 0.0);
/// // Folds tile the window without gaps.
/// for w in folds.windows(2) {
///     assert_eq!(w[0].end_s, w[1].start_s);
/// }
/// ```
pub fn turetta_folds() -> Vec<FoldSpec> {
    // 04/01 15:08:40 -> 06/01 19:16:00 = 2 d + 4 h 07 m 20 s.
    const TRAIN_END: f64 = 2.0 * 86_400.0 + 4.0 * 3_600.0 + 7.0 * 60.0 + 20.0;
    const F1_END: f64 = TRAIN_END + 4.0 * 3_600.0 + 28.0 * 60.0; // 06/01 23:44
    const F2_END: f64 = F1_END + 4.0 * 3_600.0 + 28.0 * 60.0; // 07/01 04:12
    const F3_END: f64 = F2_END + 4.0 * 3_600.0 + 29.0 * 60.0; // 07/01 08:41
    const F4_END: f64 = F3_END + 4.0 * 3_600.0 + 28.0 * 60.0; // 07/01 13:09
    const F5_END: f64 = F4_END + 6.0 * 3_600.0 + 7.0 * 60.0; // 07/01 19:16
    vec![
        FoldSpec {
            index: 0,
            start_s: 0.0,
            end_s: TRAIN_END,
            start_label: "04/01 15:08",
            end_label: "06/01 19:16",
        },
        FoldSpec {
            index: 1,
            start_s: TRAIN_END,
            end_s: F1_END,
            start_label: "06/01 19:16",
            end_label: "06/01 23:44",
        },
        FoldSpec {
            index: 2,
            start_s: F1_END,
            end_s: F2_END,
            start_label: "06/01 23:44",
            end_label: "07/01 04:12",
        },
        FoldSpec {
            index: 3,
            start_s: F2_END,
            end_s: F3_END,
            start_label: "07/01 04:12",
            end_label: "07/01 08:41",
        },
        FoldSpec {
            index: 4,
            start_s: F3_END,
            end_s: F4_END,
            start_label: "07/01 08:41",
            end_label: "07/01 13:09",
        },
        FoldSpec {
            index: 5,
            start_s: F4_END,
            end_s: F5_END,
            start_label: "07/01 13:09",
            end_label: "07/01 19:16",
        },
    ]
}

/// Table III's reported per-fold statistics from the paper, indexed 0–5.
pub fn paper_fold_stats() -> [PaperFoldStats; 6] {
    [
        PaperFoldStats {
            empty: 2_348_151,
            occupied: 1_405_500,
            temperature: (18.72, 40.09),
            humidity: (16.0, 49.0),
        },
        PaperFoldStats {
            empty: 321_742,
            occupied: 0,
            temperature: (20.36, 23.90),
            humidity: (20.0, 45.0),
        },
        PaperFoldStats {
            empty: 321_742,
            occupied: 0,
            temperature: (18.86, 21.80),
            humidity: (25.0, 42.0),
        },
        PaperFoldStats {
            empty: 321_742,
            occupied: 0,
            temperature: (18.68, 20.80),
            humidity: (25.0, 43.0),
        },
        PaperFoldStats {
            empty: 56_223,
            occupied: 265_519,
            temperature: (18.38, 22.10),
            humidity: (22.0, 43.0),
        },
        PaperFoldStats {
            empty: 0,
            occupied: 321_741,
            temperature: (20.19, 31.60),
            humidity: (20.0, 38.0),
        },
    ]
}

/// Splits a full-window dataset into `(train, [test folds 1..=5])`.
pub fn split_by_folds(dataset: &Dataset) -> (Dataset, Vec<Dataset>) {
    let folds = turetta_folds();
    let train = folds[0].slice(dataset);
    let tests = folds[1..].iter().map(|f| f.slice(dataset)).collect();
    (train, tests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CsiRecord;

    #[test]
    fn folds_tile_the_window() {
        let folds = turetta_folds();
        assert_eq!(folds.len(), 6);
        for (i, f) in folds.iter().enumerate() {
            assert_eq!(f.index, i);
            assert!(f.duration_s() > 0.0);
        }
        for w in folds.windows(2) {
            assert_eq!(w[0].end_s, w[1].start_s);
        }
    }

    #[test]
    fn train_fold_is_roughly_70_percent() {
        let folds = turetta_folds();
        let total = folds.last().unwrap().end_s;
        let frac = folds[0].duration_s() / total;
        assert!((0.65..0.72).contains(&frac), "train fraction {frac}");
    }

    #[test]
    fn test_folds_1_to_4_are_about_4_5_hours() {
        let folds = turetta_folds();
        for f in &folds[1..5] {
            let h = f.duration_s() / 3600.0;
            assert!((4.4..4.6).contains(&h), "fold {} is {h} h", f.index);
        }
        // Fold 5 is the longer afternoon block.
        let h5 = folds[5].duration_s() / 3600.0;
        assert!((6.0..6.2).contains(&h5), "fold 5 is {h5} h");
    }

    #[test]
    fn total_window_is_about_76_hours() {
        // Table III's own boundaries give 76.1 h; §V-A says 74 h — the
        // paper is internally inconsistent and we follow Table III.
        let folds = turetta_folds();
        let h = folds.last().unwrap().end_s / 3600.0;
        assert!((75.9..76.3).contains(&h), "window {h} h");
    }

    #[test]
    fn split_by_folds_partitions_records() {
        let total_s = turetta_folds().last().unwrap().end_s;
        let n = 1000;
        let ds: Dataset = (0..n)
            .map(|i| CsiRecord::new(i as f64 * total_s / n as f64, [0.1; 64], 20.0, 40.0, 0))
            .collect();
        let (train, tests) = split_by_folds(&ds);
        let total: usize = train.len() + tests.iter().map(Dataset::len).sum::<usize>();
        assert_eq!(total, n);
        assert_eq!(tests.len(), 5);
        assert!(train.len() > tests.iter().map(Dataset::len).sum::<usize>());
    }

    #[test]
    fn paper_stats_match_table2_totals() {
        let stats = paper_fold_stats();
        // Table II: 5,362,340 samples total across the full window... the
        // fold table sums to a slightly different figure; both are the
        // paper's own numbers. Check internal consistency of what we store.
        let sum: u64 = stats.iter().map(|s| s.empty + s.occupied).sum();
        assert_eq!(
            sum,
            2_348_151 + 1_405_500 + 3 * 321_742 + 56_223 + 265_519 + 321_741
        );
        // Fold 1-3 are entirely empty; fold 5 entirely occupied.
        assert_eq!(stats[1].occupied, 0);
        assert_eq!(stats[2].occupied, 0);
        assert_eq!(stats[3].occupied, 0);
        assert_eq!(stats[5].empty, 0);
    }
}
