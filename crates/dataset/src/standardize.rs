//! Z-score standardisation fit on training data only.
//!
//! Gradient-trained models (the MLP and the logistic-regression baseline)
//! need commensurate feature scales — raw CSI amplitudes are ~0.01–1 while
//! temperature is ~20 and humidity ~40. The standardiser is always fit on
//! the training fold and then applied unchanged to every test fold,
//! mirroring the paper's never-retrain protocol.

use occusense_tensor::Matrix;

/// Per-column z-score transform `x ↦ (x − μ) / σ`.
///
/// Constant columns (σ = 0) are mapped to zero rather than dividing by
/// zero.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits column means and standard deviations on `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has no rows.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_dataset::Standardizer;
    /// use occusense_tensor::Matrix;
    ///
    /// let x = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 10.0]]);
    /// let s = Standardizer::fit(&x);
    /// let z = s.transform(&x);
    /// assert_eq!(z.row(0), &[-1.0, 0.0]); // constant column -> 0
    /// assert_eq!(z.row(1), &[1.0, 0.0]);
    /// ```
    pub fn fit(x: &Matrix) -> Self {
        assert!(x.rows() > 0, "cannot fit a standardizer on an empty matrix");
        let n = x.rows() as f64;
        let means = x.col_means();
        let mut stds = vec![0.0; x.cols()];
        for row in x.rows_iter() {
            for ((s, &v), &m) in stds.iter_mut().zip(row).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
        }
        Self { means, stds }
    }

    /// Reassembles a standardizer from stored statistics (used when
    /// loading persisted models).
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Self {
        assert_eq!(means.len(), stds.len(), "means/stds length mismatch");
        Self { means, stds }
    }

    /// Column means learned at fit time.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Column standard deviations learned at fit time.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Applies the transform to a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.cols(),
            self.means.len(),
            "standardizer fitted on {} columns, got {}",
            self.means.len(),
            x.cols()
        );
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v = if s > 0.0 { (*v - m) / s } else { 0.0 };
            }
        }
        out
    }

    /// Applies the transform to a matrix in place — the allocation-free
    /// analogue of [`Standardizer::transform`], identical arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn transform_inplace(&self, x: &mut Matrix) {
        assert_eq!(
            x.cols(),
            self.means.len(),
            "standardizer fitted on {} columns, got {}",
            self.means.len(),
            x.cols()
        );
        for r in 0..x.rows() {
            self.transform_row_inplace(x.row_mut(r));
        }
    }

    /// Applies the transform to a single feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the fitted data.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "dimension mismatch");
        row.iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((&v, &m), &s)| if s > 0.0 { (v - m) / s } else { 0.0 })
            .collect()
    }

    /// Applies the transform to a feature vector in place.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the fitted data.
    pub fn transform_row_inplace(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.means.len(), "dimension mismatch");
        for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = if s > 0.0 { (*v - m) / s } else { 0.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_zero_mean_unit_variance() {
        let x = Matrix::from_rows(&[&[1.0, 4.0], &[2.0, 8.0], &[3.0, 12.0], &[4.0, 16.0]]);
        let s = Standardizer::fit(&x);
        let z = s.transform(&x);
        for c in 0..2 {
            let col = z.col(c);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 =
                col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let x = Matrix::from_rows(&[&[7.0], &[7.0], &[7.0]]);
        let s = Standardizer::fit(&x);
        let z = s.transform(&x);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn transform_uses_training_statistics_on_new_data() {
        let train = Matrix::from_rows(&[&[0.0], &[10.0]]);
        let s = Standardizer::fit(&train);
        // Test data far outside the training range keeps the same affine map.
        let test = Matrix::from_rows(&[&[20.0]]);
        let z = s.transform(&test);
        assert!((z[(0, 0)] - 3.0).abs() < 1e-12); // (20-5)/5
    }

    #[test]
    fn transform_row_matches_matrix_transform() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 6.0]]);
        let s = Standardizer::fit(&x);
        let z = s.transform(&x);
        assert_eq!(s.transform_row(&[1.0, 2.0]), z.row(0).to_vec());
    }

    #[test]
    fn accessors_expose_fit_state() {
        let x = Matrix::from_rows(&[&[2.0], &[4.0]]);
        let s = Standardizer::fit(&x);
        assert_eq!(s.means(), &[3.0]);
        assert_eq!(s.stds(), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn fit_rejects_empty() {
        Standardizer::fit(&Matrix::zeros(0, 3));
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn transform_rejects_dimension_mismatch() {
        let s = Standardizer::fit(&Matrix::ones(2, 2));
        s.transform(&Matrix::ones(2, 3));
    }
}
