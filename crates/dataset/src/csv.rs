//! Plain-text persistence in the Table I column layout.
//!
//! The format is one header line followed by one record per line:
//!
//! ```text
//! timestamp_s,a0,...,a63,temperature,humidity,occupant_count
//! ```
//!
//! A fixed schema with 68 numeric columns does not warrant a CSV-crate
//! dependency (see DESIGN.md §6).

use crate::dataset::Dataset;
use crate::record::{CsiRecord, N_SUBCARRIERS};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Error returned when parsing a CSV dataset fails.
#[derive(Debug)]
pub enum ReadCsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for ReadCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadCsvError::Io(e) => write!(f, "csv read: {e}"),
            ReadCsvError::Parse { line, reason } => {
                write!(f, "csv parse error at line {line}: {reason}")
            }
        }
    }
}

impl Error for ReadCsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadCsvError::Io(e) => Some(e),
            ReadCsvError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for ReadCsvError {
    fn from(e: io::Error) -> Self {
        ReadCsvError::Io(e)
    }
}

/// Writes `dataset` in the Table I layout. A `&mut` writer can be passed
/// as well as an owned one.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Example
///
/// ```
/// use occusense_dataset::{csv, CsiRecord, Dataset};
///
/// let mut ds = Dataset::new();
/// ds.push(CsiRecord::new(0.0, [0.027; 64], 21.97, 43.0, 1));
/// let mut buf = Vec::new();
/// csv::write_csv(&mut buf, &ds)?;
/// let round_trip = csv::read_csv(&buf[..])?;
/// assert_eq!(round_trip.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_csv<W: Write>(mut w: W, dataset: &Dataset) -> io::Result<()> {
    write!(w, "timestamp_s")?;
    for i in 0..N_SUBCARRIERS {
        write!(w, ",a{i}")?;
    }
    writeln!(w, ",temperature,humidity,occupant_count")?;
    for r in dataset {
        write!(w, "{}", r.timestamp_s)?;
        for a in &r.csi {
            write!(w, ",{a}")?;
        }
        writeln!(
            w,
            ",{},{},{}",
            r.temperature_c, r.humidity_pct, r.occupant_count
        )?;
    }
    Ok(())
}

/// Reads a dataset written by [`write_csv`]. A `&mut` reader can be
/// passed as well as an owned one.
///
/// # Errors
///
/// Returns [`ReadCsvError`] on I/O failure, a bad header, a wrong column
/// count or an unparsable field.
pub fn read_csv<R: Read>(r: R) -> Result<Dataset, ReadCsvError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| ReadCsvError::Parse {
        line: 1,
        reason: "empty input".into(),
    })??;
    let expected_cols = 1 + N_SUBCARRIERS + 3;
    if header.split(',').count() != expected_cols {
        return Err(ReadCsvError::Parse {
            line: 1,
            reason: format!(
                "expected {expected_cols} header columns, got {}",
                header.split(',').count()
            ),
        });
    }

    let mut ds = Dataset::new();
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != expected_cols {
            return Err(ReadCsvError::Parse {
                line: line_no,
                reason: format!("expected {expected_cols} columns, got {}", fields.len()),
            });
        }
        let parse_f64 = |s: &str, what: &str| -> Result<f64, ReadCsvError> {
            s.parse::<f64>().map_err(|e| ReadCsvError::Parse {
                line: line_no,
                reason: format!("bad {what} '{s}': {e}"),
            })
        };
        let timestamp_s = parse_f64(fields[0], "timestamp")?;
        let mut csi = [0.0; N_SUBCARRIERS];
        for (i, a) in csi.iter_mut().enumerate() {
            *a = parse_f64(fields[1 + i], "csi amplitude")?;
        }
        let temperature_c = parse_f64(fields[1 + N_SUBCARRIERS], "temperature")?;
        let humidity_pct = parse_f64(fields[2 + N_SUBCARRIERS], "humidity")?;
        let occupant_count: u8 =
            fields[3 + N_SUBCARRIERS]
                .parse()
                .map_err(|e| ReadCsvError::Parse {
                    line: line_no,
                    reason: format!("bad occupant count: {e}"),
                })?;
        ds.push(CsiRecord::new(
            timestamp_s,
            csi,
            temperature_c,
            humidity_pct,
            occupant_count,
        ));
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let mut ds = Dataset::new();
        let mut csi = [0.0; 64];
        for (i, a) in csi.iter_mut().enumerate() {
            *a = 0.01 * i as f64;
        }
        ds.push(CsiRecord::new(0.05, csi, 21.97, 43.0, 1));
        ds.push(CsiRecord::new(0.10, csi, 21.82, 43.0, 0));
        ds
    }

    #[test]
    fn round_trip_preserves_records() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_csv(&mut buf, &ds).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn header_matches_table1_layout() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &Dataset::new()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let header = text.lines().next().unwrap();
        assert!(header.starts_with("timestamp_s,a0,a1,"));
        assert!(header.ends_with("a63,temperature,humidity,occupant_count"));
        assert_eq!(header.split(',').count(), 68);
    }

    #[test]
    fn read_rejects_empty_input() {
        let err = read_csv(&b""[..]).unwrap_err();
        assert!(err.to_string().contains("empty input"));
    }

    #[test]
    fn read_rejects_bad_header() {
        let err = read_csv(&b"a,b,c\n"[..]).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn read_rejects_short_row() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &Dataset::new()).unwrap();
        buf.extend_from_slice(b"1.0,2.0\n");
        let err = read_csv(&buf[..]).unwrap_err();
        match err {
            ReadCsvError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn read_rejects_non_numeric_field() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &sample_dataset()).unwrap();
        let text = String::from_utf8(buf).unwrap().replace("21.97", "oops");
        let err = read_csv(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("oops"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &sample_dataset()).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
    }
}
