//! Trailing-window CSI features — an extension beyond the paper.
//!
//! The paper classifies each 50 ms sample from its *instantaneous* CSI
//! amplitudes. Classic CSI sensing instead aggregates short windows,
//! because motion shows up as temporal variance. This module provides
//! the windowed view used by the `repro_ablation_window` experiment: per
//! subcarrier, the current amplitude plus the standard deviation over the
//! trailing window (128 features for the 64-subcarrier channel).

use crate::dataset::Dataset;
use crate::record::N_SUBCARRIERS;
use occusense_tensor::Matrix;

/// Trailing-window feature extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowedView {
    /// Window length in samples (including the current one).
    pub window: usize,
}

impl WindowedView {
    /// Creates the view.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self { window }
    }

    /// Number of feature columns (`2 × 64`: amplitude + windowed std per
    /// subcarrier).
    pub fn dimension(&self) -> usize {
        2 * N_SUBCARRIERS
    }

    /// Feature vector for record `i` of the dataset (earlier records use
    /// the shorter available prefix as their window).
    ///
    /// # Panics
    ///
    /// Panics if `i >= dataset.len()`.
    pub fn extract_at(&self, dataset: &Dataset, i: usize) -> Vec<f64> {
        let records = dataset.records();
        assert!(i < records.len(), "record index {i} out of range");
        let lo = (i + 1).saturating_sub(self.window);
        let slice = &records[lo..=i];
        let n = slice.len() as f64;
        let mut out = Vec::with_capacity(self.dimension());
        out.extend_from_slice(&records[i].csi);
        for k in 0..N_SUBCARRIERS {
            let mean: f64 = slice.iter().map(|r| r.csi[k]).sum::<f64>() / n;
            let var: f64 = slice
                .iter()
                .map(|r| (r.csi[k] - mean) * (r.csi[k] - mean))
                .sum::<f64>()
                / n;
            out.push(var.sqrt());
        }
        out
    }

    /// Builds the `n × 128` design matrix over the whole dataset with an
    /// O(n · 64) sliding-window pass.
    pub fn design_matrix(&self, dataset: &Dataset) -> Matrix {
        let n = dataset.len();
        let d = self.dimension();
        let mut out = Matrix::zeros(n, d);
        // Sliding sums per subcarrier.
        let mut sum = [0.0f64; N_SUBCARRIERS];
        let mut sumsq = [0.0f64; N_SUBCARRIERS];
        let records = dataset.records();
        for i in 0..n {
            for k in 0..N_SUBCARRIERS {
                let a = records[i].csi[k];
                sum[k] += a;
                sumsq[k] += a * a;
            }
            if i >= self.window {
                for k in 0..N_SUBCARRIERS {
                    let a = records[i - self.window].csi[k];
                    sum[k] -= a;
                    sumsq[k] -= a * a;
                }
            }
            let count = (i + 1).min(self.window) as f64;
            let row = out.row_mut(i);
            row[..N_SUBCARRIERS].copy_from_slice(&records[i].csi);
            for k in 0..N_SUBCARRIERS {
                let mean = sum[k] / count;
                // Guard tiny negative values from floating cancellation.
                let var = (sumsq[k] / count - mean * mean).max(0.0);
                row[N_SUBCARRIERS + k] = var.sqrt();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CsiRecord;

    fn dataset_with_wave(n: usize) -> Dataset {
        (0..n)
            .map(|i| {
                let mut csi = [0.2; 64];
                csi[0] = 0.2 + 0.1 * (i as f64 * 0.9).sin();
                CsiRecord::new(i as f64, csi, 20.0, 40.0, 0)
            })
            .collect()
    }

    #[test]
    fn dimension_is_128() {
        assert_eq!(WindowedView::new(8).dimension(), 128);
    }

    #[test]
    fn constant_subcarriers_have_zero_std() {
        let ds = dataset_with_wave(20);
        let v = WindowedView::new(8);
        let x = v.design_matrix(&ds);
        // Subcarrier 1 is constant: std ≈ 0 for all rows (up to sliding-
        // sum cancellation error).
        for r in 0..20 {
            assert!(x[(r, 64 + 1)] < 1e-7, "row {r}: {}", x[(r, 64 + 1)]);
        }
        // Subcarrier 0 varies: positive std once the window fills.
        assert!(x[(10, 64)] > 0.01);
    }

    #[test]
    fn design_matrix_agrees_with_extract_at() {
        let ds = dataset_with_wave(30);
        let v = WindowedView::new(5);
        let x = v.design_matrix(&ds);
        for i in [0, 1, 4, 5, 17, 29] {
            let row = v.extract_at(&ds, i);
            for (a, b) in row.iter().zip(x.row(i)) {
                assert!((a - b).abs() < 1e-9, "row {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn prefix_windows_use_available_history() {
        let ds = dataset_with_wave(10);
        let v = WindowedView::new(100);
        // First record: window of one sample, std exactly zero.
        let first = v.extract_at(&ds, 0);
        assert!(first[64..].iter().all(|&s| s == 0.0));
        // Later records use all history so far.
        let later = v.extract_at(&ds, 9);
        assert!(later[64] > 0.0);
    }

    #[test]
    fn current_amplitudes_pass_through() {
        let ds = dataset_with_wave(12);
        let v = WindowedView::new(4);
        let x = v.design_matrix(&ds);
        for i in 0..12 {
            for k in 0..64 {
                assert_eq!(x[(i, k)], ds.records()[i].csi[k]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        WindowedView::new(0);
    }
}
