//! The in-memory dataset container.

use crate::record::CsiRecord;

/// An ordered (by timestamp) collection of [`CsiRecord`]s.
///
/// # Example
///
/// ```
/// use occusense_dataset::{CsiRecord, Dataset};
///
/// let mut ds = Dataset::new();
/// ds.push(CsiRecord::new(0.0, [0.1; 64], 20.0, 40.0, 0));
/// ds.push(CsiRecord::new(1.0, [0.1; 64], 20.0, 40.0, 2));
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.labels(), vec![0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    records: Vec<CsiRecord>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dataset from records, verifying timestamp order.
    ///
    /// # Panics
    ///
    /// Panics if the records are not sorted by timestamp.
    pub fn from_records(records: Vec<CsiRecord>) -> Self {
        for w in records.windows(2) {
            assert!(
                w[0].timestamp_s <= w[1].timestamp_s,
                "records must be sorted by timestamp"
            );
        }
        Self { records }
    }

    /// Appends a record.
    ///
    /// # Panics
    ///
    /// Panics if the record's timestamp precedes the last record's.
    pub fn push(&mut self, record: CsiRecord) {
        if let Some(last) = self.records.last() {
            assert!(
                record.timestamp_s >= last.timestamp_s,
                "records must be pushed in timestamp order ({} < {})",
                record.timestamp_s,
                last.timestamp_s
            );
        }
        self.records.push(record);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Borrow the records.
    pub fn records(&self) -> &[CsiRecord] {
        &self.records
    }

    /// Iterator over records.
    pub fn iter(&self) -> std::slice::Iter<'_, CsiRecord> {
        self.records.iter()
    }

    /// Binary occupancy labels in record order.
    pub fn labels(&self) -> Vec<u8> {
        self.records.iter().map(|r| r.occupancy()).collect()
    }

    /// Temperature series in record order.
    pub fn temperatures(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.temperature_c).collect()
    }

    /// Humidity series in record order.
    pub fn humidities(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.humidity_pct).collect()
    }

    /// Time series of a single CSI subcarrier — the paper's `S(x, t)`.
    ///
    /// # Panics
    ///
    /// Panics if `subcarrier >= 64`.
    pub fn subcarrier_series(&self, subcarrier: usize) -> Vec<f64> {
        assert!(
            subcarrier < crate::record::N_SUBCARRIERS,
            "subcarrier {subcarrier} out of range"
        );
        self.records.iter().map(|r| r.csi[subcarrier]).collect()
    }

    /// `(first, last)` timestamps, or `None` when empty.
    pub fn time_range(&self) -> Option<(f64, f64)> {
        Some((
            self.records.first()?.timestamp_s,
            self.records.last()?.timestamp_s,
        ))
    }

    /// The contiguous sub-dataset with `start_s <= t < end_s` (copying).
    pub fn slice_time(&self, start_s: f64, end_s: f64) -> Dataset {
        let lo = self.records.partition_point(|r| r.timestamp_s < start_s);
        let hi = self.records.partition_point(|r| r.timestamp_s < end_s);
        Dataset {
            records: self.records[lo..hi].to_vec(),
        }
    }

    /// Drops duplicate-timestamp records (keeping the first of each run)
    /// and records containing non-finite values — the paper's first
    /// profiling step ("we control for null values or duplicates present
    /// at the same t"). Returns the number of records removed.
    pub fn dedup_and_clean(&mut self) -> usize {
        let before = self.records.len();
        let mut last_t = f64::NEG_INFINITY;
        self.records.retain(|r| {
            let finite = r.timestamp_s.is_finite()
                && r.temperature_c.is_finite()
                && r.humidity_pct.is_finite()
                && r.csi.iter().all(|a| a.is_finite());
            if !finite {
                return false;
            }
            if r.timestamp_s == last_t {
                return false;
            }
            last_t = r.timestamp_s;
            true
        });
        before - self.records.len()
    }
}

impl FromIterator<CsiRecord> for Dataset {
    fn from_iter<T: IntoIterator<Item = CsiRecord>>(iter: T) -> Self {
        Self::from_records(iter.into_iter().collect())
    }
}

impl Extend<CsiRecord> for Dataset {
    fn extend<T: IntoIterator<Item = CsiRecord>>(&mut self, iter: T) {
        for r in iter {
            self.push(r);
        }
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a CsiRecord;
    type IntoIter = std::slice::Iter<'a, CsiRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: f64, occ: u8) -> CsiRecord {
        CsiRecord::new(t, [0.1; 64], 20.0 + t, 40.0, occ)
    }

    #[test]
    fn push_and_accessors() {
        let mut ds = Dataset::new();
        ds.push(rec(0.0, 0));
        ds.push(rec(1.0, 2));
        ds.push(rec(2.0, 0));
        assert_eq!(ds.len(), 3);
        assert!(!ds.is_empty());
        assert_eq!(ds.labels(), vec![0, 1, 0]);
        assert_eq!(ds.temperatures(), vec![20.0, 21.0, 22.0]);
        assert_eq!(ds.time_range(), Some((0.0, 2.0)));
        assert_eq!(ds.iter().count(), 3);
        assert_eq!((&ds).into_iter().count(), 3);
    }

    #[test]
    #[should_panic(expected = "timestamp order")]
    fn push_rejects_out_of_order() {
        let mut ds = Dataset::new();
        ds.push(rec(5.0, 0));
        ds.push(rec(1.0, 0));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn from_records_rejects_unsorted() {
        Dataset::from_records(vec![rec(5.0, 0), rec(1.0, 0)]);
    }

    #[test]
    fn slice_time_half_open() {
        let ds: Dataset = (0..10).map(|i| rec(i as f64, 0)).collect();
        let mid = ds.slice_time(3.0, 7.0);
        assert_eq!(mid.len(), 4);
        assert_eq!(mid.time_range(), Some((3.0, 6.0)));
        assert!(ds.slice_time(100.0, 200.0).is_empty());
        assert_eq!(ds.slice_time(f64::NEG_INFINITY, f64::INFINITY).len(), 10);
    }

    #[test]
    fn subcarrier_series_extracts_column() {
        let mut r0 = rec(0.0, 0);
        r0.csi[5] = 0.7;
        let mut r1 = rec(1.0, 0);
        r1.csi[5] = 0.9;
        let ds = Dataset::from_records(vec![r0, r1]);
        assert_eq!(ds.subcarrier_series(5), vec![0.7, 0.9]);
        assert_eq!(ds.subcarrier_series(0), vec![0.1, 0.1]);
    }

    #[test]
    fn dedup_and_clean_removes_bad_rows() {
        let mut ds = Dataset::new();
        ds.push(rec(0.0, 0));
        ds.push(rec(0.0, 1)); // duplicate timestamp
        ds.push(rec(1.0, 0));
        let mut bad = rec(2.0, 0);
        bad.temperature_c = f64::NAN;
        ds.push(bad);
        let removed = ds.dedup_and_clean();
        assert_eq!(removed, 2);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.time_range(), Some((0.0, 1.0)));
    }

    #[test]
    fn extend_appends_in_order() {
        let mut ds: Dataset = (0..3).map(|i| rec(i as f64, 0)).collect();
        ds.extend((3..5).map(|i| rec(i as f64, 1)));
        assert_eq!(ds.len(), 5);
    }
}
