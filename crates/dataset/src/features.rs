//! Feature-subset extraction: which columns a model sees.
//!
//! §V-B of the paper trains every model on three subsets of the collected
//! data: *i)* only CSI, *ii)* only environment (humidity and temperature),
//! *iii)* CSI + environment. A fourth, time-of-day-only view backs the
//! paper's side note that time alone reaches only 89.3 % accuracy.

use crate::dataset::Dataset;
use crate::record::{CsiRecord, N_SUBCARRIERS};
use occusense_tensor::Matrix;

/// Seconds per day, used by the time-of-day feature.
const SECONDS_PER_DAY: f64 = 86_400.0;

/// Which feature columns a model is given.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FeatureView {
    /// The 64 CSI subcarrier amplitudes — the paper's headline setting.
    #[default]
    Csi,
    /// Temperature and humidity only.
    Env,
    /// CSI plus temperature and humidity (66 features).
    CsiEnv,
    /// Time of day encoded as `(sin, cos)` of the daily phase — the
    /// paper's "only time as a feature" ablation.
    TimeOnly,
}

impl FeatureView {
    /// Number of feature columns this view produces.
    pub fn dimension(&self) -> usize {
        match self {
            FeatureView::Csi => N_SUBCARRIERS,
            FeatureView::Env => 2,
            FeatureView::CsiEnv => N_SUBCARRIERS + 2,
            FeatureView::TimeOnly => 2,
        }
    }

    /// Human-readable name matching the paper's table headers.
    pub fn name(&self) -> &'static str {
        match self {
            FeatureView::Csi => "CSI",
            FeatureView::Env => "Env",
            FeatureView::CsiEnv => "C+E",
            FeatureView::TimeOnly => "Time",
        }
    }

    /// Extracts this view's feature vector from one record.
    ///
    /// # Example
    ///
    /// ```
    /// use occusense_dataset::{CsiRecord, FeatureView};
    /// let r = CsiRecord::new(0.0, [0.2; 64], 21.0, 45.0, 1);
    /// assert_eq!(FeatureView::Env.extract(&r), vec![21.0, 45.0]);
    /// assert_eq!(FeatureView::CsiEnv.extract(&r).len(), 66);
    /// ```
    pub fn extract(&self, record: &CsiRecord) -> Vec<f64> {
        match self {
            FeatureView::Csi => record.csi.to_vec(),
            FeatureView::Env => vec![record.temperature_c, record.humidity_pct],
            FeatureView::CsiEnv => {
                let mut v = record.csi.to_vec();
                v.push(record.temperature_c);
                v.push(record.humidity_pct);
                v
            }
            FeatureView::TimeOnly => {
                let phase = std::f64::consts::TAU * (record.timestamp_s % SECONDS_PER_DAY)
                    / SECONDS_PER_DAY;
                vec![phase.sin(), phase.cos()]
            }
        }
    }

    /// Writes this view's feature vector into a caller-owned slice of
    /// length [`FeatureView::dimension`] — the allocation-free analogue
    /// of [`FeatureView::extract`], used by the serving hot path.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.dimension()`.
    pub fn extract_into(&self, record: &CsiRecord, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.dimension(),
            "extract_into: output length {} vs dimension {}",
            out.len(),
            self.dimension()
        );
        match self {
            FeatureView::Csi => out.copy_from_slice(&record.csi),
            FeatureView::Env => {
                out[0] = record.temperature_c;
                out[1] = record.humidity_pct;
            }
            FeatureView::CsiEnv => {
                out[..N_SUBCARRIERS].copy_from_slice(&record.csi);
                out[N_SUBCARRIERS] = record.temperature_c;
                out[N_SUBCARRIERS + 1] = record.humidity_pct;
            }
            FeatureView::TimeOnly => {
                let phase = std::f64::consts::TAU * (record.timestamp_s % SECONDS_PER_DAY)
                    / SECONDS_PER_DAY;
                out[0] = phase.sin();
                out[1] = phase.cos();
            }
        }
    }

    /// Builds the `n × d` design matrix of this view over a dataset.
    pub fn design_matrix(&self, dataset: &Dataset) -> Matrix {
        let d = self.dimension();
        let mut data = Vec::with_capacity(dataset.len() * d);
        for r in dataset {
            data.extend(self.extract(r));
        }
        Matrix::from_vec(dataset.len(), d, data)
    }

    /// Writes the design matrix of a record slice into `out` (reshaped
    /// as needed; allocation-free once `out` has capacity). Returns
    /// `true` if `out` had to grow. Row values are identical to
    /// [`FeatureView::design_matrix`] over the same records.
    pub fn design_matrix_rows_into(&self, records: &[CsiRecord], out: &mut Matrix) -> bool {
        let d = self.dimension();
        let grew = out.ensure_shape(records.len(), d);
        for (r, record) in records.iter().enumerate() {
            self.extract_into(record, out.row_mut(r));
        }
        grew
    }

    /// All views evaluated in Table IV, in paper order.
    pub const TABLE4: [FeatureView; 3] = [FeatureView::Csi, FeatureView::Env, FeatureView::CsiEnv];
}

/// Names of the `CsiEnv` feature columns, for the Grad-CAM plot of Fig. 3:
/// `a0..a63`, then `e` (temperature) and `h` (humidity), following the
/// figure's axis labels.
pub fn csi_env_feature_names() -> Vec<String> {
    let mut names: Vec<String> = (0..N_SUBCARRIERS).map(|i| format!("a{i}")).collect();
    names.push("e".to_owned());
    names.push("h".to_owned());
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: f64) -> CsiRecord {
        let mut csi = [0.0; 64];
        for (i, a) in csi.iter_mut().enumerate() {
            *a = i as f64 * 0.01;
        }
        CsiRecord::new(t, csi, 22.5, 38.0, 3)
    }

    #[test]
    fn dimensions_match_extraction() {
        let r = rec(0.0);
        for view in [
            FeatureView::Csi,
            FeatureView::Env,
            FeatureView::CsiEnv,
            FeatureView::TimeOnly,
        ] {
            assert_eq!(view.extract(&r).len(), view.dimension(), "{view:?}");
        }
    }

    #[test]
    fn csi_view_is_subcarriers_in_order() {
        let v = FeatureView::Csi.extract(&rec(0.0));
        assert_eq!(v[0], 0.0);
        assert_eq!(v[63], 0.63);
    }

    #[test]
    fn csienv_appends_env_in_table1_order() {
        let v = FeatureView::CsiEnv.extract(&rec(0.0));
        assert_eq!(v[64], 22.5); // temperature
        assert_eq!(v[65], 38.0); // humidity
    }

    #[test]
    fn time_view_is_periodic_and_unit_norm() {
        let morning = FeatureView::TimeOnly.extract(&rec(8.0 * 3600.0));
        let next_day = FeatureView::TimeOnly.extract(&rec(8.0 * 3600.0 + SECONDS_PER_DAY));
        assert!((morning[0] - next_day[0]).abs() < 1e-9);
        assert!((morning[1] - next_day[1]).abs() < 1e-9);
        let norm = (morning[0].powi(2) + morning[1].powi(2)).sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
        // Different times of day get different encodings.
        let evening = FeatureView::TimeOnly.extract(&rec(20.0 * 3600.0));
        assert!((morning[0] - evening[0]).abs() > 0.1);
    }

    #[test]
    fn design_matrix_shape_and_content() {
        let ds = Dataset::from_records(vec![rec(0.0), rec(1.0), rec(2.0)]);
        let x = FeatureView::Env.design_matrix(&ds);
        assert_eq!(x.shape(), (3, 2));
        assert_eq!(x.row(1), &[22.5, 38.0]);
        let x = FeatureView::CsiEnv.design_matrix(&ds);
        assert_eq!(x.shape(), (3, 66));
    }

    #[test]
    fn feature_names_match_fig3_axis() {
        let names = csi_env_feature_names();
        assert_eq!(names.len(), 66);
        assert_eq!(names[0], "a0");
        assert_eq!(names[63], "a63");
        assert_eq!(names[64], "e");
        assert_eq!(names[65], "h");
    }

    #[test]
    fn view_names_match_paper_headers() {
        assert_eq!(FeatureView::Csi.name(), "CSI");
        assert_eq!(FeatureView::Env.name(), "Env");
        assert_eq!(FeatureView::CsiEnv.name(), "C+E");
        assert_eq!(FeatureView::TABLE4.len(), 3);
    }
}
