//! # occusense-criterion
//!
//! A minimal, dependency-free stand-in for the subset of the
//! `criterion` benchmarking API this workspace uses. The build
//! environment has no crates.io access, so the workspace maps the
//! dependency name `criterion` onto this crate.
//!
//! Semantics:
//!
//! * Under `cargo bench`, each benchmark warms up, then runs timed
//!   batches until a fixed wall budget and reports the median
//!   iteration time to stdout.
//! * Under `cargo test` (cargo passes `--test` to `harness = false`
//!   bench targets), each benchmark body runs exactly once so the
//!   target doubles as a smoke test.
//!
//! There are no statistical comparisons against saved baselines — the
//! numbers are for reading, not for regression gating.
//!
//! When the environment variable `OCCUSENSE_BENCH_JSON` names a file,
//! measurement runs additionally write every result there as a JSON
//! document (`{"results": [{"name": …, "ns_per_iter": …,
//! "p99_ns_per_iter": …}, …]}`), rewritten after each benchmark so a
//! partial run still leaves a valid file. This is how the
//! `BENCH_*.json` baselines are produced; `ns_per_iter` is the median
//! sample, `p99_ns_per_iter` the 99th-percentile sample (tail
//! latency).

#![deny(missing_docs)]
#![deny(unsafe_code)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Results accumulated for the optional JSON sink, process-wide (one
/// bench binary may run several `criterion_group!`s, each with its own
/// [`Criterion`]).
static JSON_RESULTS: Mutex<Vec<(String, u64, u64)>> = Mutex::new(Vec::new());

/// Appends one measurement to the JSON sink (when enabled) and
/// rewrites the whole document, so the file is complete and valid
/// after every benchmark.
fn record_json(name: &str, ns: u64, p99: u64) {
    let Ok(path) = std::env::var("OCCUSENSE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut results = JSON_RESULTS.lock().expect("bench json results poisoned");
    results.push((name.to_string(), ns, p99));
    let mut doc = String::from("{\n  \"results\": [\n");
    for (i, (n, v, p)) in results.iter().enumerate() {
        let escaped: String = n
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c => vec![c],
            })
            .collect();
        doc.push_str(&format!(
            "    {{\"name\": \"{escaped}\", \"ns_per_iter\": {v}, \"p99_ns_per_iter\": {p}}}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    doc.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("criterion-shim: cannot write {path}: {e}");
    }
}

/// Wall-clock budget per benchmark in measurement mode.
const MEASURE_BUDGET: Duration = Duration::from_millis(600);

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Builds a driver from the process arguments (`--test` → run each
    /// bench once; a bare string argument filters benches by
    /// substring, as cargo's `cargo bench <filter>` does).
    pub fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Harness flags cargo/libtest may pass; ignore them.
                "--bench" | "--nocapture" | "-q" | "--quiet" | "--verbose" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Self { test_mode, filter }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&name.to_string(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one<F>(&self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {name} ... ok");
        } else if let (Some(ns), Some(p99)) =
            (bencher.percentile_ns(0.50), bencher.percentile_ns(0.99))
        {
            println!(
                "{name:<50} {:>14} ns/iter (p99 {})",
                format_thousands(ns),
                format_thousands(p99)
            );
            record_json(name, ns, p99);
        }
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim sizes runs by wall
    /// budget, not by sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times a closure over repeated iterations.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, discarding its output (wrap inputs and outputs in
    /// `std::hint::black_box` in the closure as usual).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            let _ = f();
            return;
        }
        // Warm-up + batch-size calibration: grow the batch until one
        // batch takes ≥ ~1 ms so timer overhead stays negligible.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                let _ = f();
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
                break;
            }
            batch *= 2;
        }
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            let t = Instant::now();
            for _ in 0..batch {
                let _ = f();
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// The `q`-quantile (nearest-rank) of the recorded samples, in
    /// nanoseconds per iteration. Note the samples are per-batch means,
    /// so this is the tail across timed batches, not across raw
    /// iterations.
    fn percentile_ns(&self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        let rank = ((s.len() as f64 * q) as usize).min(s.len() - 1);
        Some(s[rank] as u64)
    }
}

fn format_thousands(mut n: u64) -> String {
    let mut parts = Vec::new();
    while n >= 1000 {
        parts.push(format!("{:03}", n % 1000));
        n /= 1000;
    }
    parts.push(n.to_string());
    parts.reverse();
    parts.join(",")
}

/// Declares a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_thousands_groups_digits() {
        assert_eq!(format_thousands(0), "0");
        assert_eq!(format_thousands(999), "999");
        assert_eq!(format_thousands(12_345_678), "12,345,678");
    }

    #[test]
    fn test_mode_runs_each_bench_once() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut runs = 0;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_non_matching_benches() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("match_me".into()),
        };
        let mut runs = 0;
        c.benchmark_group("group")
            .bench_function("other", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
    }
}
