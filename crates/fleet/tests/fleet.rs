//! End-to-end fleet tests over the real `fleet_worker` binary
//! (located via `CARGO_BIN_EXE_fleet_worker`, so `cargo test` always
//! exercises the freshly built worker).

use occusense_core::detector::OccupancyDetector;
use occusense_dataset::{CsiRecord, FeatureView};
use occusense_fleet::{
    bootstrap_detector, FleetConfig, FleetController, PlaceError, SloBudget, TenantRegistry,
    TenantSpec, WorkerHandle,
};
use occusense_sim::fleet_stream;
use occusense_wire::{connect_tenant, tcp_connect, ClientEvent, TcpConfig};
use std::path::PathBuf;
use std::time::Duration;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_fleet_worker"))
}

fn stream(seed: u64, sensor: u64, n: usize) -> Vec<CsiRecord> {
    // Over-provision the simulated duration; `take` trims exactly.
    fleet_stream(n as f64 / 10.0 + 5.0, seed, sensor).take(n).collect()
}

/// Scores `records` through a live worker gateway at `addr`, returning
/// `(occupied, proba bits)` per record in order.
fn score_over_wire(addr: &str, tenant: &str, records: &[CsiRecord]) -> Vec<(u8, u64)> {
    let conn = tcp_connect(addr, TcpConfig::default()).expect("dial worker");
    let (mut tx, mut rx) =
        connect_tenant(conn, tenant, "itest", Duration::from_secs(10)).expect("handshake");
    for r in records {
        tx.send(*r, None).expect("send");
    }
    tx.finish().expect("goodbye");
    let mut preds: Vec<(u64, u8, u64)> = Vec::new();
    loop {
        match rx.recv().expect("recv") {
            ClientEvent::Prediction(p) => preds.push((p.seq, p.occupied, p.proba.to_bits())),
            ClientEvent::Nack(n) => panic!("unexpected NACK: {:?}", n.reason),
            ClientEvent::Goodbye(_) | ClientEvent::Closed => break,
            ClientEvent::TimedOut => {}
        }
    }
    preds.sort_unstable_by_key(|&(seq, _, _)| seq);
    assert_eq!(preds.len(), records.len(), "every record must be scored");
    preds.into_iter().map(|(_, o, p)| (o, p)).collect()
}

/// The full worker lifecycle over real pipes and a real socket:
/// spawn → READY → traffic → stop → per-tenant report, with the
/// report's accounting identity closed and predictions bitwise equal
/// to in-process scoring by the same bootstrap recipe.
#[test]
fn worker_round_trip_serves_and_reports() {
    let args: Vec<String> = [
        "--hb-ms", "50", "--shards", "2", "--tenant", "acme", "--features", "csi", "--seed",
        "5", "--policy", "block", "--capacity", "64",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let worker = WorkerHandle::spawn("worker-0", &worker_bin(), &args).expect("spawn worker");
    let ports = worker
        .await_ready(Duration::from_secs(120))
        .expect("worker READY");
    let addr = ports.get("acme").expect("acme gateway advertised").clone();

    let records = stream(5, 0, 40);
    let over_wire = score_over_wire(&addr, "acme", &records);
    let local: OccupancyDetector = bootstrap_detector(5, FeatureView::Csi);
    for (i, (record, &(occupied, proba_bits))) in records.iter().zip(&over_wire).enumerate() {
        let (want_occupied, want_proba) = local.predict_record(record);
        assert_eq!(occupied, want_occupied, "record {i}: occupancy differs");
        assert_eq!(proba_bits, want_proba.to_bits(), "record {i}: proba differs");
    }

    let stopped = worker.stop(Duration::from_secs(60));
    assert!(stopped.clean, "worker must BYE and exit zero");
    assert_eq!(stopped.truncated_reports, 0);
    assert_eq!(stopped.reports.len(), 1, "one report per tenant");
    let report = &stopped.reports[0];
    assert_eq!(report.tenant, "acme");
    assert_eq!(report.records_served, records.len() as u64);
    assert_eq!(report.unaccounted_records(), 0, "accounting must close");
}

/// A killed worker leaves the ring, the survivor inherits its sensors,
/// and the shutdown roll-up records exactly one lost process — with
/// the fleet residue still closed (a SIGKILLed worker files no report,
/// but files no counters either).
#[test]
fn controller_reroutes_after_kill_and_rolls_up() {
    let mut registry = TenantRegistry::new();
    registry
        .register(TenantSpec::new("acme", FeatureView::Csi, 5))
        .expect("register");
    let config = FleetConfig {
        worker_bin: worker_bin(),
        procs: 2,
        hb_ms: 50,
        ..FleetConfig::default()
    };
    let mut ctrl = FleetController::launch(config, registry).expect("launch fleet");
    assert_eq!(ctrl.live_workers(), 2);

    let first = ctrl.place("acme", "s0").expect("place s0");
    // Placement is idempotent while the worker lives.
    assert_eq!(ctrl.place("acme", "s0").expect("re-place"), first);

    let victim: usize = first
        .worker
        .strip_prefix("worker-")
        .and_then(|n| n.parse().ok())
        .expect("worker names are worker-<index>");
    assert!(ctrl.kill_worker(victim), "victim must be live");
    assert_eq!(ctrl.live_workers(), 1);

    let second = ctrl.place("acme", "s0").expect("re-place after kill");
    assert_ne!(second.worker, first.worker, "sensor must leave the dead worker");
    assert_ne!(second.addr, first.addr);

    // The survivor actually serves the re-routed sensor.
    let records = stream(5, 3, 10);
    let over_wire = score_over_wire(&second.addr, "acme", &records);
    assert_eq!(over_wire.len(), records.len());

    let report = ctrl.shutdown();
    assert_eq!(report.workers_spawned, 2);
    assert_eq!(report.workers_lost, 1);
    assert_eq!(report.workers_stopped_clean, 1);
    assert_eq!(report.unaccounted_records(), 0, "fleet residue must close");
    let acme = report.tenants.get("acme").expect("acme rolled up");
    assert_eq!(acme.records_served(), records.len() as u64);
}

/// Admission control enforces the tenant's sensor budget on concurrent
/// placements and frees the slot on release.
#[test]
fn admission_cap_refuses_then_recovers_on_release() {
    let mut registry = TenantRegistry::new();
    let mut spec = TenantSpec::new("tiny", FeatureView::Csi, 5);
    spec.slo = SloBudget {
        max_sensors: 1,
        ..SloBudget::default()
    };
    registry.register(spec).expect("register");
    let config = FleetConfig {
        worker_bin: worker_bin(),
        procs: 1,
        hb_ms: 50,
        ..FleetConfig::default()
    };
    let mut ctrl = FleetController::launch(config, registry).expect("launch fleet");

    ctrl.place("tiny", "s0").expect("first sensor fits");
    match ctrl.place("tiny", "s1") {
        Err(PlaceError::Saturated { active, cap }) => {
            assert_eq!((active, cap), (1, 1));
        }
        other => panic!("expected Saturated, got {other:?}"),
    }
    assert!(matches!(
        ctrl.place("ghost", "s0"),
        Err(PlaceError::UnknownTenant { .. })
    ));
    ctrl.release("tiny", "s0");
    ctrl.place("tiny", "s1").expect("slot freed by release");

    let report = ctrl.shutdown();
    assert_eq!(report.placements_shed, 1);
    assert_eq!(report.workers_stopped_clean, 1);
}
