//! The fleet controller: N worker processes, one consistent-hash ring,
//! per-tenant admission control, and the end-of-run roll-up.
//!
//! The controller is a pure *control plane*: sensors ask it where to
//! connect ([`FleetController::place`]), then speak the wire protocol
//! directly to the worker's per-tenant gateway — no record ever flows
//! through the controller. Placement is consistent-hash routing over
//! the live workers keyed by `tenant/sensor`, gated by the tenant's
//! admission budget; a dead worker ([`FleetController::poll`]) leaves
//! the ring, its placements are forgotten (the sensor re-places onto a
//! survivor), and its in-flight records are the driver's to re-book as
//! shed — the roll-up's `rebooked_shed` lane.

use crate::registry::{TenantRegistry, TenantSpec};
use crate::report::FleetReport;
use crate::ring::HashRing;
use crate::supervisor::{WorkerError, WorkerHandle};
use crate::protocol::CMD_DRAIN;
use occusense_serve::BackpressurePolicy;
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::time::Duration;

/// Controller tuning knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Path to the `fleet_worker` binary.
    pub worker_bin: PathBuf,
    /// Worker processes to spawn.
    pub procs: usize,
    /// Virtual nodes per worker on the routing ring.
    pub vnodes: usize,
    /// Worker shards per tenant runtime (passed to every worker).
    pub shards: usize,
    /// Worker heartbeat period, milliseconds.
    pub hb_ms: u64,
    /// How stale a heartbeat may get before the worker counts as dead.
    pub hb_timeout: Duration,
    /// How long each worker gets to print `READY`.
    pub ready_timeout: Duration,
    /// How long each worker gets to stop and report at shutdown.
    pub stop_timeout: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            worker_bin: PathBuf::from("fleet_worker"),
            procs: 2,
            vnodes: 64,
            shards: 2,
            hb_ms: 100,
            hb_timeout: Duration::from_secs(5),
            ready_timeout: Duration::from_secs(120),
            stop_timeout: Duration::from_secs(60),
        }
    }
}

/// Where a placed sensor should connect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// The worker that owns the sensor.
    pub worker: String,
    /// The `host:port` of that worker's gateway for the tenant.
    pub addr: String,
}

/// Why a placement was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// No spec registered under the tenant id.
    UnknownTenant {
        /// The unregistered id.
        tenant: String,
    },
    /// Admission control: the tenant is at its `max_sensors` budget.
    /// Counted in the roll-up's `placements_shed`.
    Saturated {
        /// Active placements.
        active: usize,
        /// The budget they exhausted.
        cap: usize,
    },
    /// Every worker is dead.
    NoWorkers,
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::UnknownTenant { tenant } => write!(f, "unknown tenant {tenant:?}"),
            PlaceError::Saturated { active, cap } => {
                write!(f, "tenant saturated: {active} of {cap} sensor placements in use")
            }
            PlaceError::NoWorkers => write!(f, "no live workers"),
        }
    }
}

impl Error for PlaceError {}

/// Why the fleet failed to launch.
#[derive(Debug)]
pub enum FleetError {
    /// Spawning a worker failed.
    Spawn(io::Error),
    /// A worker never became ready.
    Worker(WorkerError),
    /// The registry is empty or `procs` is zero.
    EmptyFleet,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Spawn(e) => write!(f, "fleet spawn: {e}"),
            FleetError::Worker(e) => write!(f, "fleet worker: {e}"),
            FleetError::EmptyFleet => write!(f, "fleet needs at least one tenant and one worker"),
        }
    }
}

impl Error for FleetError {}

/// One worker slot: the process handle plus its routing addresses.
struct WorkerSlot {
    handle: Option<WorkerHandle>,
    ports: BTreeMap<String, String>,
}

/// The fleet control plane. See the module docs for the data flow.
pub struct FleetController {
    config: FleetConfig,
    registry: TenantRegistry,
    workers: Vec<WorkerSlot>,
    ring: HashRing,
    /// `tenant → sensors currently placed` (admission bookkeeping).
    placements: BTreeMap<String, BTreeSet<String>>,
    /// `tenant/sensor → worker index`, so a worker's death releases
    /// exactly its own placements.
    owners: BTreeMap<String, usize>,
    report: FleetReport,
}

/// The kebab-case CLI spelling of a backpressure policy — shared with
/// `fleet_worker`'s argv so specs survive the process boundary.
pub fn policy_name(policy: BackpressurePolicy) -> &'static str {
    match policy {
        BackpressurePolicy::Block => "block",
        BackpressurePolicy::DropOldest => "drop-oldest",
        BackpressurePolicy::RejectNewest => "reject-newest",
    }
}

/// Builds the `fleet_worker` argv for one worker serving `specs`.
pub fn worker_args(config: &FleetConfig, specs: &[&TenantSpec]) -> Vec<String> {
    let mut args = vec![
        "--hb-ms".to_string(),
        config.hb_ms.to_string(),
        "--shards".to_string(),
        config.shards.to_string(),
    ];
    for spec in specs {
        args.push("--tenant".to_string());
        args.push(spec.tenant.clone());
        args.push("--features".to_string());
        args.push(crate::registry::feature_name(spec.features).to_string());
        args.push("--seed".to_string());
        args.push(spec.seed.to_string());
        args.push("--policy".to_string());
        args.push(policy_name(spec.slo.policy).to_string());
        args.push("--capacity".to_string());
        args.push(spec.slo.queue_capacity.to_string());
        if let Some(dir) = &spec.lineage {
            args.push("--lineage".to_string());
            args.push(dir.display().to_string());
        }
    }
    args
}

impl FleetController {
    /// Spawns `config.procs` workers, each hosting one gateway per
    /// registered tenant, waits for every `READY`, and seeds the ring.
    ///
    /// # Errors
    ///
    /// [`FleetError`] if the registry or fleet is empty, a spawn
    /// fails, or a worker never reports ready (already-spawned workers
    /// are reaped before returning).
    pub fn launch(config: FleetConfig, registry: TenantRegistry) -> Result<Self, FleetError> {
        if registry.is_empty() || config.procs == 0 {
            return Err(FleetError::EmptyFleet);
        }
        let specs: Vec<&TenantSpec> = registry.specs().collect();
        let args = worker_args(&config, &specs);
        let mut workers = Vec::with_capacity(config.procs);
        let mut ring = HashRing::new(config.vnodes);
        for i in 0..config.procs {
            let name = format!("worker-{i}");
            let handle = WorkerHandle::spawn(&name, &config.worker_bin, &args)
                .map_err(FleetError::Spawn)?;
            workers.push(WorkerSlot {
                handle: Some(handle),
                ports: BTreeMap::new(),
            });
        }
        for (i, slot) in workers.iter_mut().enumerate() {
            let handle = slot.handle.as_ref().expect("just spawned");
            slot.ports = handle
                .await_ready(config.ready_timeout)
                .map_err(FleetError::Worker)?;
            ring.insert(&format!("worker-{i}"));
        }
        let report = FleetReport {
            workers_spawned: config.procs as u64,
            ..FleetReport::default()
        };
        Ok(Self {
            config,
            registry,
            workers,
            ring,
            placements: BTreeMap::new(),
            owners: BTreeMap::new(),
            report,
        })
    }

    /// The registered tenant specs.
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// Live worker count.
    pub fn live_workers(&self) -> usize {
        self.ring.len()
    }

    fn worker_index(name: &str) -> Option<usize> {
        name.strip_prefix("worker-")?.parse().ok()
    }

    /// Routes `tenant/sensor` to a live worker, enforcing the tenant's
    /// admission budget. Re-placing an already-placed sensor is
    /// idempotent (reconnection after a worker death re-routes it).
    ///
    /// # Errors
    ///
    /// [`PlaceError`]; `Saturated` refusals are counted in the
    /// roll-up's `placements_shed`.
    pub fn place(&mut self, tenant: &str, sensor: &str) -> Result<Placement, PlaceError> {
        let spec = self
            .registry
            .get(tenant)
            .ok_or_else(|| PlaceError::UnknownTenant {
                tenant: tenant.to_string(),
            })?;
        let placed = self.placements.entry(tenant.to_string()).or_default();
        if !placed.contains(sensor) && placed.len() >= spec.slo.max_sensors {
            self.report.placements_shed += 1;
            return Err(PlaceError::Saturated {
                active: placed.len(),
                cap: spec.slo.max_sensors,
            });
        }
        let key = format!("{tenant}/{sensor}");
        let worker = self
            .ring
            .route(&key)
            .ok_or(PlaceError::NoWorkers)?
            .to_string();
        let index = Self::worker_index(&worker).expect("ring holds worker-N names");
        let addr = self.workers[index]
            .ports
            .get(tenant)
            .expect("every worker serves every registered tenant")
            .clone();
        placed.insert(sensor.to_string());
        self.owners.insert(key, index);
        Ok(Placement { worker, addr })
    }

    /// Releases a placement (sensor finished cleanly).
    pub fn release(&mut self, tenant: &str, sensor: &str) {
        if let Some(placed) = self.placements.get_mut(tenant) {
            placed.remove(sensor);
        }
        self.owners.remove(&format!("{tenant}/{sensor}"));
    }

    /// Health sweep: workers that exited, lost their stdout, or went
    /// heartbeat-silent leave the ring and forget their placements
    /// (the affected sensors re-place onto survivors). Returns the
    /// names of newly dead workers.
    pub fn poll(&mut self) -> Vec<String> {
        let mut dead = Vec::new();
        for i in 0..self.workers.len() {
            let name = format!("worker-{i}");
            let Some(handle) = self.workers[i].handle.as_mut() else {
                continue;
            };
            let stale = handle
                .heartbeat_age()
                .is_some_and(|age| age > self.config.hb_timeout);
            if handle.is_alive() && !stale {
                continue;
            }
            // Reap and absorb whatever the worker managed to say.
            let stopped = self.workers[i]
                .handle
                .take()
                .expect("checked Some above")
                .kill();
            self.absorb_stopped(stopped, false);
            self.ring.remove(&name);
            self.forget_placements(i);
            dead.push(name);
        }
        dead
    }

    /// Kills worker `index` outright (the chaos lever). Returns
    /// whether there was a live worker to kill.
    pub fn kill_worker(&mut self, index: usize) -> bool {
        let Some(slot) = self.workers.get_mut(index) else {
            return false;
        };
        let Some(handle) = slot.handle.take() else {
            return false;
        };
        let stopped = handle.kill();
        self.absorb_stopped(stopped, false);
        self.ring.remove(&format!("worker-{index}"));
        self.forget_placements(index);
        true
    }

    /// Asks worker `index` to drain: its gateways refuse new
    /// handshakes (retryable `Shutdown` NACK) while live connections
    /// keep serving. Routing is *not* changed — drain is the graceful
    /// first half of a hand-off; callers typically re-place sensors
    /// and then stop the worker.
    ///
    /// # Errors
    ///
    /// Pipe errors (a dead worker cannot drain).
    pub fn drain_worker(&mut self, index: usize) -> io::Result<()> {
        let handle = self
            .workers
            .get_mut(index)
            .and_then(|s| s.handle.as_mut())
            .ok_or_else(|| io::Error::other("no live worker at that index"))?;
        handle.send(CMD_DRAIN)
    }

    /// Sensors currently placed for `tenant`.
    pub fn active_placements(&self, tenant: &str) -> usize {
        self.placements.get(tenant).map_or(0, BTreeSet::len)
    }

    fn forget_placements(&mut self, index: usize) {
        let orphaned: Vec<String> = self
            .owners
            .iter()
            .filter(|&(_, &i)| i == index)
            .map(|(key, _)| key.clone())
            .collect();
        for key in orphaned {
            self.owners.remove(&key);
            if let Some((tenant, sensor)) = key.split_once('/') {
                if let Some(placed) = self.placements.get_mut(tenant) {
                    placed.remove(sensor);
                }
            }
        }
    }

    fn absorb_stopped(&mut self, stopped: crate::supervisor::StoppedWorker, expected: bool) {
        self.report.heartbeats += stopped.heartbeats;
        self.report.truncated_reports += stopped.truncated_reports;
        if stopped.clean && expected {
            self.report.workers_stopped_clean += 1;
        } else {
            self.report.workers_lost += 1;
        }
        for report in stopped.reports {
            self.report.absorb(report);
        }
    }

    /// Stops every live worker, collects and rolls up their reports,
    /// and returns the fleet summary. Client-side bookkeeping
    /// (`rebooked_shed`, `unresolved_records`) is the caller's to fill
    /// in on the returned report before judging it.
    pub fn shutdown(mut self) -> FleetReport {
        let stop_timeout = self.config.stop_timeout;
        for i in 0..self.workers.len() {
            let Some(handle) = self.workers[i].handle.take() else {
                continue;
            };
            let stopped = handle.stop(stop_timeout);
            self.absorb_stopped(stopped, true);
        }
        self.report
    }
}
