//! The worker's stdio control protocol.
//!
//! A `fleet_worker` process talks to its supervisor over plain pipes:
//! commands arrive as single lines on stdin, status leaves as single
//! lines on stdout — except the final per-tenant [`ServeReport`]s,
//! which reuse the versioned line codec of
//! [`occusense_serve::report`] verbatim (its `end` terminator frames
//! the block, and its typed `Truncated` refusal is exactly what a
//! worker killed mid-write should produce on the supervisor side).
//!
//! ```text
//!   worker stdout                      supervisor stdin (commands)
//!   READY t0=127.0.0.1:4421 t1=…      drain
//!   HB 0                              stop
//!   HB 1
//!   DRAINING t0 3
//!   REPORT t0
//!   servereport v1
//!   …
//!   end
//!   BYE
//! ```
//!
//! Unknown stdout lines are surfaced as [`WorkerEvent::Unrecognized`]
//! rather than dropped, so a worker drifting off-protocol is visible
//! in the supervisor's diagnostics instead of silently ignored.
//!
//! [`ServeReport`]: occusense_serve::ServeReport

use crate::registry::valid_tenant_id;
use occusense_serve::{ReportParseError, ServeReport};
use std::collections::BTreeMap;

/// Command line asking the worker to refuse new handshakes while
/// serving live connections (the gateway drain from `occusense-wire`).
pub const CMD_DRAIN: &str = "drain";
/// Command line asking the worker to shut down, emit one `REPORT`
/// block per tenant, say `BYE` and exit.
pub const CMD_STOP: &str = "stop";

/// One event decoded from the worker's stdout stream.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerEvent {
    /// All gateways are listening: `tenant → address`.
    Ready(BTreeMap<String, String>),
    /// Liveness beat with a monotone sequence number.
    Heartbeat(u64),
    /// A tenant's gateway entered drain with this many live sensors.
    Draining {
        /// The drained tenant.
        tenant: String,
        /// Registered sensors still being served.
        live: u64,
    },
    /// A complete, parsed per-tenant shutdown report.
    Report {
        /// The tenant the report rolls up under.
        tenant: String,
        /// The worker-side accounting.
        report: Box<ServeReport>,
    },
    /// A `REPORT` block that would not parse — a torn write from a
    /// killed worker surfaces here as [`ReportParseError::Truncated`].
    BadReport {
        /// The tenant whose report was unusable.
        tenant: String,
        /// The typed refusal.
        error: ReportParseError,
    },
    /// Clean shutdown acknowledgement; stdout ends after this.
    Bye,
    /// A line outside the protocol, kept for diagnostics.
    Unrecognized(String),
}

/// Formats the `READY` line for `ports` (worker side).
pub fn ready_line(ports: &BTreeMap<String, String>) -> String {
    let mut line = String::from("READY");
    for (tenant, addr) in ports {
        line.push(' ');
        line.push_str(tenant);
        line.push('=');
        line.push_str(addr);
    }
    line
}

/// Incremental decoder for the worker's stdout stream. Feed it one
/// line at a time (without the newline); `REPORT` blocks span many
/// lines, so not every line yields an event.
#[derive(Debug, Default)]
pub struct EventParser {
    /// `Some((tenant, collected lines))` while inside a `REPORT` block.
    pending: Option<(String, String)>,
}

impl EventParser {
    /// A parser at the start of the stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one stdout line.
    pub fn feed(&mut self, line: &str) -> Option<WorkerEvent> {
        if let Some((_, body)) = self.pending.as_mut() {
            body.push_str(line);
            body.push('\n');
            if line != "end" {
                return None;
            }
            let (tenant, body) = self.pending.take().expect("checked Some above");
            return Some(match ServeReport::decode_wire(&body) {
                Ok(report) => WorkerEvent::Report {
                    tenant,
                    report: Box::new(report),
                },
                Err(error) => WorkerEvent::BadReport { tenant, error },
            });
        }
        if let Some(rest) = line.strip_prefix("READY") {
            let mut ports = BTreeMap::new();
            for pair in rest.split_whitespace() {
                let Some((tenant, addr)) = pair.split_once('=') else {
                    return Some(WorkerEvent::Unrecognized(line.to_string()));
                };
                if !valid_tenant_id(tenant) || addr.is_empty() {
                    return Some(WorkerEvent::Unrecognized(line.to_string()));
                }
                ports.insert(tenant.to_string(), addr.to_string());
            }
            return Some(WorkerEvent::Ready(ports));
        }
        if let Some(rest) = line.strip_prefix("HB ") {
            return Some(match rest.parse() {
                Ok(seq) => WorkerEvent::Heartbeat(seq),
                Err(_) => WorkerEvent::Unrecognized(line.to_string()),
            });
        }
        if let Some(rest) = line.strip_prefix("DRAINING ") {
            if let Some((tenant, live)) = rest.split_once(' ') {
                if let (true, Ok(live)) = (valid_tenant_id(tenant), live.parse()) {
                    return Some(WorkerEvent::Draining {
                        tenant: tenant.to_string(),
                        live,
                    });
                }
            }
            return Some(WorkerEvent::Unrecognized(line.to_string()));
        }
        if let Some(tenant) = line.strip_prefix("REPORT ") {
            if valid_tenant_id(tenant) {
                self.pending = Some((tenant.to_string(), String::new()));
                return None;
            }
            return Some(WorkerEvent::Unrecognized(line.to_string()));
        }
        if line == "BYE" {
            return Some(WorkerEvent::Bye);
        }
        Some(WorkerEvent::Unrecognized(line.to_string()))
    }

    /// Flushes stream end: a `REPORT` block cut off mid-body (the
    /// worker died before its `end` line) becomes a typed
    /// [`WorkerEvent::BadReport`] with [`ReportParseError::Truncated`].
    pub fn finish(&mut self) -> Option<WorkerEvent> {
        let (tenant, body) = self.pending.take()?;
        Some(match ServeReport::decode_wire(&body) {
            Ok(report) => WorkerEvent::Report {
                tenant,
                report: Box::new(report),
            },
            Err(error) => WorkerEvent::BadReport { tenant, error },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_all(parser: &mut EventParser, text: &str) -> Vec<WorkerEvent> {
        let mut events: Vec<WorkerEvent> = text.lines().filter_map(|l| parser.feed(l)).collect();
        events.extend(parser.finish());
        events
    }

    #[test]
    fn control_lines_parse() {
        let mut p = EventParser::new();
        let mut ports = BTreeMap::new();
        ports.insert("t0".to_string(), "127.0.0.1:4421".to_string());
        ports.insert("t1".to_string(), "127.0.0.1:4422".to_string());
        assert_eq!(
            p.feed(&ready_line(&ports)),
            Some(WorkerEvent::Ready(ports))
        );
        assert_eq!(p.feed("HB 17"), Some(WorkerEvent::Heartbeat(17)));
        assert_eq!(
            p.feed("DRAINING t0 3"),
            Some(WorkerEvent::Draining {
                tenant: "t0".into(),
                live: 3
            })
        );
        assert_eq!(p.feed("BYE"), Some(WorkerEvent::Bye));
        assert_eq!(
            p.feed("stray noise"),
            Some(WorkerEvent::Unrecognized("stray noise".into()))
        );
        assert_eq!(
            p.feed("HB not-a-number"),
            Some(WorkerEvent::Unrecognized("HB not-a-number".into()))
        );
    }

    #[test]
    fn report_blocks_round_trip_through_the_stream() {
        let report = ServeReport {
            tenant: "acme".into(),
            ..ServeReport::default()
        };
        let text = format!("HB 0\nREPORT acme\n{}BYE\n", report.encode_wire());
        let mut p = EventParser::new();
        let events = feed_all(&mut p, &text);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0], WorkerEvent::Heartbeat(0));
        match &events[1] {
            WorkerEvent::Report { tenant, report } => {
                assert_eq!(tenant, "acme");
                assert_eq!(report.tenant, "acme");
                assert_eq!(report.unaccounted_records(), 0);
            }
            other => panic!("expected a report, got {other:?}"),
        }
        assert_eq!(events[2], WorkerEvent::Bye);
    }

    #[test]
    fn a_torn_report_is_a_typed_truncation_never_a_half_summed_report() {
        let report = ServeReport {
            tenant: "acme".into(),
            ..ServeReport::default()
        };
        let encoded = report.encode_wire();
        let lines: Vec<&str> = encoded.lines().collect();
        // The worker was killed after emitting only half its report.
        let torn = lines[..lines.len() / 2].join("\n");
        let text = format!("REPORT acme\n{torn}\n");
        let mut p = EventParser::new();
        let events = feed_all(&mut p, &text);
        assert_eq!(events.len(), 1);
        // Exactly *which* parse refusal depends on where the kill cut
        // the stream; the contract is that a torn block is a typed
        // BadReport, never a half-summed Report.
        assert!(
            matches!(&events[0], WorkerEvent::BadReport { tenant, .. } if tenant == "acme"),
            "expected a BadReport, got {:?}",
            events[0]
        );
        // A block missing only its `end` terminator is the canonical
        // truncation.
        let body = lines[..lines.len() - 1].join("\n");
        let mut p = EventParser::new();
        let events = feed_all(&mut p, &format!("REPORT acme\n{body}\n"));
        assert_eq!(
            events,
            vec![WorkerEvent::BadReport {
                tenant: "acme".into(),
                error: ReportParseError::Truncated,
            }]
        );
    }
}
