//! Tenant registry: each tenant maps to a model architecture, a
//! checkpoint lineage directory and an SLO budget.
//!
//! A [`TenantSpec`] is the control-plane unit the fleet controller
//! distributes to every worker process: the worker boots one gateway
//! per spec, labels its serving runtime with the tenant (so the wire
//! handshake's tenant gate and the [`ServeReport`] roll-up both key on
//! it), and recovers the tenant's model from the lineage directory via
//! [`occusense_core::persist::load_latest_compatible`] — the
//! architecture predicate keeps another tenant's weights out even when
//! a bad deploy pollutes the directory.
//!
//! Tenant ids are restricted to `[a-z0-9-]`, 1..=64 bytes: the id
//! travels in the wire `Hello` (bounded at
//! [`occusense_wire::MAX_TENANT_ID_BYTES`]), in worker argv, and as a
//! token in the worker's stdout protocol, so a charset that can never
//! collide with any of those framings is enforced at registration.
//!
//! [`ServeReport`]: occusense_serve::ServeReport

use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_dataset::FeatureView;
use occusense_serve::BackpressurePolicy;
use occusense_sim::{simulate, ScenarioConfig};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// Longest tenant id the registry accepts — same bound the wire codec
/// enforces on the `Hello` tenant field.
pub const MAX_TENANT_LEN: usize = occusense_wire::MAX_TENANT_ID_BYTES;

/// Per-tenant serving budget: admission, shedding and latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloBudget {
    /// Most sensors the controller will place for this tenant at once;
    /// placements past the cap are refused (admission-control shed).
    pub max_sensors: usize,
    /// Per-shard ingress queue capacity of the tenant's runtimes.
    pub queue_capacity: usize,
    /// Full-queue behaviour: `RejectNewest` sheds overload back to the
    /// sensor as a NACK (exactly-once resolution), `Block` is lossless.
    pub policy: BackpressurePolicy,
    /// End-to-end p99 latency budget the roll-up judges against.
    pub p99_budget: Duration,
}

impl Default for SloBudget {
    fn default() -> Self {
        Self {
            max_sensors: 64,
            queue_capacity: 1024,
            policy: BackpressurePolicy::Block,
            p99_budget: Duration::from_millis(250),
        }
    }
}

/// One tenant's control-plane record.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant id (`[a-z0-9-]`, 1..=64 bytes).
    pub tenant: String,
    /// Feature view of the tenant's model — the architecture predicate
    /// checkpoint recovery enforces against polluted lineage.
    pub features: FeatureView,
    /// Training seed of the tenant's bootstrap model; with the fixed
    /// [`bootstrap_detector`] recipe this pins the weights bitwise, so
    /// a driver holding the same spec can verify wire predictions.
    pub seed: u64,
    /// Checkpoint lineage directory; `None` trains from scratch.
    pub lineage: Option<PathBuf>,
    /// Admission / shedding / latency budget.
    pub slo: SloBudget,
}

impl TenantSpec {
    /// A spec with the default SLO budget and no lineage.
    pub fn new(tenant: &str, features: FeatureView, seed: u64) -> Self {
        Self {
            tenant: tenant.to_string(),
            features,
            seed,
            lineage: None,
            slo: SloBudget::default(),
        }
    }
}

/// Why a spec was refused at registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// Empty id, id over [`MAX_TENANT_LEN`] bytes, or a byte outside
    /// `[a-z0-9-]`.
    BadTenantId {
        /// The offending id, verbatim.
        tenant: String,
    },
    /// The registry already holds a spec under this id.
    Duplicate {
        /// The already-registered id.
        tenant: String,
    },
    /// `max_sensors` or `queue_capacity` of zero can never serve.
    ZeroBudget {
        /// The id whose budget was zero.
        tenant: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadTenantId { tenant } => write!(
                f,
                "tenant id {tenant:?} is not 1..={MAX_TENANT_LEN} bytes of [a-z0-9-]"
            ),
            SpecError::Duplicate { tenant } => {
                write!(f, "tenant {tenant:?} is already registered")
            }
            SpecError::ZeroBudget { tenant } => write!(
                f,
                "tenant {tenant:?} has a zero max_sensors or queue_capacity budget"
            ),
        }
    }
}

impl Error for SpecError {}

/// Whether `id` is a well-formed tenant id.
pub fn valid_tenant_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_TENANT_LEN
        && id
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
}

/// The fleet's tenant table, ordered by id.
#[derive(Debug, Clone, Default)]
pub struct TenantRegistry {
    specs: BTreeMap<String, TenantSpec>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `spec`.
    ///
    /// # Errors
    ///
    /// [`SpecError`] on a malformed id, duplicate id, or zero budget;
    /// the registry is untouched on error.
    pub fn register(&mut self, spec: TenantSpec) -> Result<(), SpecError> {
        if !valid_tenant_id(&spec.tenant) {
            return Err(SpecError::BadTenantId {
                tenant: spec.tenant,
            });
        }
        if spec.slo.max_sensors == 0 || spec.slo.queue_capacity == 0 {
            return Err(SpecError::ZeroBudget {
                tenant: spec.tenant,
            });
        }
        if self.specs.contains_key(&spec.tenant) {
            return Err(SpecError::Duplicate {
                tenant: spec.tenant,
            });
        }
        self.specs.insert(spec.tenant.clone(), spec);
        Ok(())
    }

    /// The spec registered under `tenant`.
    pub fn get(&self, tenant: &str) -> Option<&TenantSpec> {
        self.specs.get(tenant)
    }

    /// All specs in id order.
    pub fn specs(&self) -> impl Iterator<Item = &TenantSpec> {
        self.specs.values()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// The kebab-case CLI spelling of a feature view, used in worker argv.
pub fn feature_name(features: FeatureView) -> &'static str {
    match features {
        FeatureView::Csi => "csi",
        FeatureView::Env => "env",
        FeatureView::CsiEnv => "csi-env",
        FeatureView::TimeOnly => "time",
    }
}

/// Parses [`feature_name`]'s spelling back.
pub fn parse_features(raw: &str) -> Option<FeatureView> {
    match raw {
        "csi" => Some(FeatureView::Csi),
        "env" => Some(FeatureView::Env),
        "csi-env" => Some(FeatureView::CsiEnv),
        "time" => Some(FeatureView::TimeOnly),
        _ => None,
    }
}

/// The fixed bootstrap recipe shared by `fleet_worker` (fallback when
/// a lineage directory holds no loadable checkpoint) and `fleet_storm`
/// (the bitwise verification reference): training is deterministic, so
/// any two processes calling this with the same `(seed, features)` get
/// bitwise-identical weights.
pub fn bootstrap_detector(seed: u64, features: FeatureView) -> OccupancyDetector {
    let train = simulate(&ScenarioConfig::quick(600.0, seed));
    OccupancyDetector::train(
        &train,
        &DetectorConfig {
            model: ModelKind::Mlp,
            features,
            mlp_epochs: 2,
            seed,
            ..DetectorConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_validates_ids_budgets_and_duplicates() {
        let mut reg = TenantRegistry::new();
        reg.register(TenantSpec::new("acme-labs", FeatureView::Csi, 7))
            .unwrap();
        assert_eq!(
            reg.register(TenantSpec::new("acme-labs", FeatureView::Env, 8)),
            Err(SpecError::Duplicate {
                tenant: "acme-labs".into()
            })
        );
        for bad in ["", "Has-Upper", "spa ce", "uní-code", &"x".repeat(65)] {
            assert_eq!(
                reg.register(TenantSpec::new(bad, FeatureView::Csi, 0)),
                Err(SpecError::BadTenantId { tenant: bad.into() }),
                "{bad:?} must be refused"
            );
        }
        let mut zero = TenantSpec::new("zero", FeatureView::Csi, 0);
        zero.slo.queue_capacity = 0;
        assert_eq!(
            reg.register(zero),
            Err(SpecError::ZeroBudget {
                tenant: "zero".into()
            })
        );
        assert_eq!(reg.len(), 1);
        assert!(reg.get("acme-labs").is_some());
    }

    #[test]
    fn feature_names_round_trip() {
        for f in [
            FeatureView::Csi,
            FeatureView::Env,
            FeatureView::CsiEnv,
            FeatureView::TimeOnly,
        ] {
            assert_eq!(parse_features(feature_name(f)), Some(f));
        }
        assert_eq!(parse_features("bogus"), None);
    }
}
