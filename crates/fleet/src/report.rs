//! Fleet-level accounting roll-up.
//!
//! Every worker process that stops cleanly hands back one
//! [`ServeReport`] per tenant; the roll-up sums them under the tenant
//! label, and [`FleetReport::unaccounted_records`] extends the
//! per-process identity across the whole fleet *including* processes
//! that never got to report:
//!
//! ```text
//!   fleet residue = Σ worker-report residues     (surviving processes)
//!                 + unresolved_records           (client-side bookings
//!                                                 that never resolved)
//! ```
//!
//! A record in flight to a killed worker cannot appear in any worker
//! report, so the driver's client bookkeeping re-books it as
//! `rebooked_shed` — shed by the fleet, resolved exactly once — and
//! only a record that is neither predicted, NACKed, *nor* re-booked
//! lands in `unresolved_records` and keeps the residue open. Chaos
//! (`fleet_storm --kill-one`) asserts the residue closes anyway.

use occusense_serve::ServeReport;
use std::collections::BTreeMap;
use std::fmt;

/// One tenant's aggregated accounting across every reporting worker.
#[derive(Debug, Clone, Default)]
pub struct TenantRollup {
    /// The per-worker reports collected for this tenant.
    pub reports: Vec<ServeReport>,
}

impl TenantRollup {
    /// Records scored, summed across workers.
    pub fn records_served(&self) -> u64 {
        self.reports.iter().map(|r| r.records_served).sum()
    }

    /// Predictions that left a gateway, summed across workers.
    pub fn predictions_sent(&self) -> u64 {
        self.reports.iter().map(|r| r.wire.predictions_sent).sum()
    }

    /// Wire-level sheds (runtime shutdown races, panic containment),
    /// summed across workers.
    pub fn records_shed(&self) -> u64 {
        self.reports.iter().map(|r| r.wire.records_shed).sum()
    }

    /// `RejectNewest` refusals NACKed back to sensors — the load-shed
    /// counter of a saturated tenant.
    pub fn records_rejected(&self) -> u64 {
        self.reports.iter().map(|r| r.wire.records_rejected).sum()
    }

    /// Worst p99 latency any worker reported for this tenant, ns.
    pub fn latency_p99_ns(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.latency_p99_ns)
            .max()
            .unwrap_or(0)
    }

    /// Summed accounting residue of the collected reports.
    pub fn unaccounted_records(&self) -> i64 {
        self.reports.iter().map(ServeReport::unaccounted_records).sum()
    }
}

/// The fleet's end-of-run summary.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Per-tenant roll-ups, keyed by tenant id.
    pub tenants: BTreeMap<String, TenantRollup>,
    /// Worker processes the controller launched.
    pub workers_spawned: u64,
    /// Workers that stopped on command and said `BYE`.
    pub workers_stopped_clean: u64,
    /// Workers that died (or were killed) without a clean stop.
    pub workers_lost: u64,
    /// `REPORT` blocks refused by the codec (torn writes included).
    pub truncated_reports: u64,
    /// Heartbeats observed across all workers.
    pub heartbeats: u64,
    /// Sensor placements refused by per-tenant admission control.
    pub placements_shed: u64,
    /// In-flight records re-booked as shed by client bookkeeping when
    /// their worker died before resolving them.
    pub rebooked_shed: u64,
    /// Client-booked records that never resolved at all — predictions,
    /// NACKs and re-bookings all missing. Non-zero means the fleet
    /// *lost* records.
    pub unresolved_records: u64,
}

impl FleetReport {
    /// Files `report` under its tenant label (the roll-up key is the
    /// report's own `tenant` field, so a worker cannot misfile another
    /// tenant's accounting by lying on the protocol line).
    pub fn absorb(&mut self, report: ServeReport) {
        self.tenants
            .entry(report.tenant.clone())
            .or_default()
            .reports
            .push(report);
    }

    /// The fleet-wide accounting residue: worker-report residues plus
    /// client-side bookings that never resolved. Zero means every
    /// record the fleet accepted is explained — scored, NACKed, shed,
    /// or re-booked as shed when its process died.
    pub fn unaccounted_records(&self) -> i64 {
        let worker_residue: i64 = self
            .tenants
            .values()
            .map(TenantRollup::unaccounted_records)
            .sum();
        worker_residue + self.unresolved_records as i64
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} workers spawned, {} stopped clean, {} lost, {} heartbeats",
            self.workers_spawned, self.workers_stopped_clean, self.workers_lost, self.heartbeats
        )?;
        for (tenant, roll) in &self.tenants {
            writeln!(
                f,
                "tenant {tenant}: {} reports, {} served, {} predictions, {} rejected, {} shed, p99 {:.2} ms",
                roll.reports.len(),
                roll.records_served(),
                roll.predictions_sent(),
                roll.records_rejected(),
                roll.records_shed(),
                roll.latency_p99_ns() as f64 / 1e6,
            )?;
        }
        writeln!(
            f,
            "admission shed {} placements · rebooked as shed {} · unresolved {} · truncated reports {}",
            self.placements_shed, self.rebooked_shed, self.unresolved_records, self.truncated_reports
        )?;
        writeln!(f, "fleet unaccounted records: {}", self.unaccounted_records())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A balanced report: every record pushed was popped and served,
    /// so its own accounting residue is zero.
    fn report(tenant: &str, served: u64) -> ServeReport {
        let mut r = ServeReport {
            tenant: tenant.into(),
            records_served: served,
            ..ServeReport::default()
        };
        r.shard_queues.push(occusense_serve::QueueCounters {
            pushed: served,
            popped: served,
            dropped: 0,
            rejected: 0,
            depth: 0,
            high_watermark: served,
        });
        r
    }

    #[test]
    fn absorb_files_reports_under_their_own_tenant_label() {
        let mut fleet = FleetReport::default();
        fleet.absorb(report("acme", 100));
        fleet.absorb(report("acme", 50));
        fleet.absorb(report("globex", 7));
        assert_eq!(fleet.tenants.len(), 2);
        assert_eq!(fleet.tenants["acme"].records_served(), 150);
        assert_eq!(fleet.tenants["acme"].reports.len(), 2);
        assert_eq!(fleet.tenants["globex"].records_served(), 7);
        assert_eq!(fleet.unaccounted_records(), 0);
    }

    #[test]
    fn residue_sums_worker_reports_and_client_bookkeeping() {
        let mut fleet = FleetReport::default();
        let mut leaky = report("acme", 10);
        // A queue that accepted 13 while only 10 were scored: residue 3.
        leaky.shard_queues.push(occusense_serve::QueueCounters {
            pushed: 13,
            popped: 10,
            dropped: 0,
            rejected: 0,
            depth: 0,
            high_watermark: 10,
        });
        let leak = leaky.unaccounted_records();
        assert!(leak > 0, "fixture must actually leak");
        fleet.absorb(leaky);
        fleet.unresolved_records = 2;
        assert_eq!(fleet.unaccounted_records(), leak + 2);
        // Re-booked sheds are *resolved* — they never add residue.
        fleet.rebooked_shed = 40;
        assert_eq!(fleet.unaccounted_records(), leak + 2);
    }

    #[test]
    fn p99_rollup_takes_the_worst_worker() {
        let mut roll = TenantRollup::default();
        for p99 in [10_000, 90_000, 40_000] {
            let mut r = report("t", 1);
            r.latency_p99_ns = p99;
            roll.reports.push(r);
        }
        assert_eq!(roll.latency_p99_ns(), 90_000);
    }
}
