//! One supervised worker *process*: spawn, stdout protocol decoding,
//! heartbeat tracking, command delivery, stop/kill.
//!
//! The supervisor owns the only pipes to the child: commands go down
//! stdin ([`CMD_DRAIN`]/[`CMD_STOP`]), status comes up stdout through
//! [`EventParser`] on a dedicated reader thread, stderr is inherited
//! (worker diagnostics land on the fleet's own stderr). Death is
//! observable three ways — `try_wait` (the OS reaped it), stdout EOF
//! (the pipe collapsed), or a stale heartbeat — and the controller
//! treats any of them as fatal for routing purposes; there is no
//! in-place restart, a dead worker's keys re-route to survivors.
//!
//! The reader thread is deliberately the *only* writer of the shared
//! [`WorkerState`], and the state mutex is held only for field
//! updates — never across a pipe read — so a wedged child can stall
//! its reader thread but never a supervisor querying liveness.

use crate::protocol::{EventParser, WorkerEvent, CMD_STOP};
use occusense_serve::ServeReport;
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What the reader thread has learned from the worker's stdout.
#[derive(Debug, Default)]
struct WorkerState {
    ready: Option<BTreeMap<String, String>>,
    heartbeats: u64,
    last_heartbeat: Option<Instant>,
    reports: Vec<ServeReport>,
    truncated_reports: u64,
    draining: Vec<(String, u64)>,
    unrecognized: Vec<String>,
    bye: bool,
    eof: bool,
}

/// Why a worker interaction failed.
#[derive(Debug)]
pub enum WorkerError {
    /// Spawning or talking to the child failed at the OS level.
    Io(io::Error),
    /// The worker exited or closed stdout before the awaited event.
    Died,
    /// The awaited event did not arrive within the deadline.
    TimedOut,
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Io(e) => write!(f, "worker i/o: {e}"),
            WorkerError::Died => write!(f, "worker died before becoming ready"),
            WorkerError::TimedOut => write!(f, "worker deadline expired"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<io::Error> for WorkerError {
    fn from(e: io::Error) -> Self {
        WorkerError::Io(e)
    }
}

/// Everything a stopped (or killed) worker left behind.
#[derive(Debug)]
pub struct StoppedWorker {
    /// The worker's fleet name.
    pub name: String,
    /// Parsed per-tenant reports (empty for a killed worker).
    pub reports: Vec<ServeReport>,
    /// `REPORT` blocks that failed to parse — a kill mid-write counts
    /// here, never as a half-summed report.
    pub truncated_reports: u64,
    /// Whether the worker said `BYE` and exited zero.
    pub clean: bool,
    /// Heartbeats observed over the worker's life.
    pub heartbeats: u64,
}

/// A live supervised worker process.
pub struct WorkerHandle {
    name: String,
    child: Child,
    stdin: Option<ChildStdin>,
    state: Arc<Mutex<WorkerState>>,
    reader: Option<JoinHandle<()>>,
}

/// Locks the shared state, recovering from a poisoned mutex: the state
/// is plain data updated field-at-a-time, so the worst a panicked
/// reader can leave behind is a stale snapshot — same failure mode as
/// a wedged child, which every caller already tolerates.
fn lock_state(state: &Mutex<WorkerState>) -> std::sync::MutexGuard<'_, WorkerState> {
    state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl WorkerHandle {
    /// Spawns `bin args…` with piped stdin/stdout and starts the
    /// stdout reader thread.
    ///
    /// # Errors
    ///
    /// Any OS-level spawn failure.
    pub fn spawn(name: &str, bin: &Path, args: &[String]) -> io::Result<Self> {
        let mut child = Command::new(bin)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdin = child.stdin.take();
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| io::Error::other("child stdout was not piped"))?;
        let state = Arc::new(Mutex::new(WorkerState::default()));
        let reader = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("fleet-reader-{name}"))
                .spawn(move || read_stdout(stdout, &state))?
        };
        Ok(Self {
            name: name.to_string(),
            child,
            stdin,
            state,
            reader: Some(reader),
        })
    }

    /// The worker's fleet name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Blocks until the worker prints `READY`, returning its
    /// per-tenant listen addresses.
    ///
    /// # Errors
    ///
    /// [`WorkerError::Died`] if stdout closes first,
    /// [`WorkerError::TimedOut`] past the deadline.
    pub fn await_ready(&self, timeout: Duration) -> Result<BTreeMap<String, String>, WorkerError> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let state = lock_state(&self.state);
                if let Some(ports) = &state.ready {
                    return Ok(ports.clone());
                }
                if state.eof {
                    return Err(WorkerError::Died);
                }
            }
            if Instant::now() >= deadline {
                return Err(WorkerError::TimedOut);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Sends one command line down the worker's stdin.
    ///
    /// # Errors
    ///
    /// Pipe write failures (a dead worker's pipe is an error, which is
    /// the signal the caller wants).
    pub fn send(&mut self, command: &str) -> io::Result<()> {
        let stdin = self
            .stdin
            .as_mut()
            .ok_or_else(|| io::Error::other("worker stdin already closed"))?;
        writeln!(stdin, "{command}")?;
        stdin.flush()
    }

    /// Time since the last heartbeat (or spawn, before the first).
    pub fn heartbeat_age(&self) -> Option<Duration> {
        lock_state(&self.state).last_heartbeat.map(|t| t.elapsed())
    }

    /// Whether the process is still running and its stdout is open.
    pub fn is_alive(&mut self) -> bool {
        if lock_state(&self.state).eof {
            return false;
        }
        match self.child.try_wait() {
            Ok(None) => true,
            Ok(Some(_)) | Err(_) => false,
        }
    }

    /// Tenants the worker has reported as draining so far.
    pub fn draining(&self) -> Vec<(String, u64)> {
        lock_state(&self.state).draining.clone()
    }

    /// Asks the worker to stop, waits for exit, and collects its
    /// reports. A worker that ignores the deadline is killed; whatever
    /// its stdout carried by then is still returned.
    pub fn stop(mut self, timeout: Duration) -> StoppedWorker {
        // A dead pipe just means the worker is already gone; the wait
        // loop below settles it either way.
        let _ = self.send(CMD_STOP);
        // Closing stdin is the belt-and-braces stop: the worker treats
        // EOF as `stop`, so a worker that missed the line still exits.
        drop(self.stdin.take());
        let deadline = Instant::now() + timeout;
        let mut exited = false;
        while Instant::now() < deadline {
            match self.child.try_wait() {
                Ok(Some(_)) => {
                    exited = true;
                    break;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                Err(_) => break,
            }
        }
        if !exited {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
        self.collect(exited)
    }

    /// Kills the process immediately (the chaos path — no stop, no
    /// drain, a torn report if the kill lands mid-write).
    pub fn kill(mut self) -> StoppedWorker {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.collect(false)
    }

    fn collect(&mut self, exited_in_time: bool) -> StoppedWorker {
        if let Some(reader) = self.reader.take() {
            // The child is reaped, so its stdout pipe hits EOF and the
            // reader finishes; a join failure means the reader
            // panicked, which `lock_state` already tolerates.
            let _ = reader.join();
        }
        let mut state = lock_state(&self.state);
        StoppedWorker {
            name: self.name.clone(),
            reports: std::mem::take(&mut state.reports),
            truncated_reports: state.truncated_reports,
            clean: exited_in_time && state.bye,
            heartbeats: state.heartbeats,
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        // A handle dropped without stop()/kill() must not leak the
        // process; reaping here keeps chaos tests from orphaning
        // children on assertion failures.
        if self.reader.is_some() {
            let _ = self.child.kill();
            let _ = self.child.wait();
            if let Some(reader) = self.reader.take() {
                let _ = reader.join();
            }
        }
    }
}

/// The reader thread: decodes stdout lines into [`WorkerState`].
fn read_stdout(stdout: std::process::ChildStdout, state: &Mutex<WorkerState>) {
    let mut parser = EventParser::new();
    let reader = BufReader::new(stdout);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let Some(event) = parser.feed(&line) else {
            continue;
        };
        apply(state, event);
    }
    if let Some(event) = parser.finish() {
        apply(state, event);
    }
    lock_state(state).eof = true;
}

fn apply(state: &Mutex<WorkerState>, event: WorkerEvent) {
    let mut s = lock_state(state);
    match event {
        WorkerEvent::Ready(ports) => s.ready = Some(ports),
        WorkerEvent::Heartbeat(_) => {
            s.heartbeats += 1;
            s.last_heartbeat = Some(Instant::now());
        }
        WorkerEvent::Draining { tenant, live } => s.draining.push((tenant, live)),
        WorkerEvent::Report { report, .. } => s.reports.push(*report),
        WorkerEvent::BadReport { .. } => s.truncated_reports += 1,
        WorkerEvent::Bye => s.bye = true,
        WorkerEvent::Unrecognized(line) => {
            if s.unrecognized.len() < 32 {
                s.unrecognized.push(line);
            }
        }
    }
}
