//! # occusense-fleet — multi-tenant, multi-process sharded serving
//!
//! The deployment layer above `occusense-wire`: one machine (or rack)
//! running N worker *processes*, each hosting one tenant-labelled
//! gateway + serving runtime per registered tenant, with a controller
//! that routes sensors, supervises health, and proves the accounting
//! identity closes across process restarts.
//!
//! ```text
//!  FleetController ──spawn/stdin──▶ fleet_worker (proc 0) ── tenant-a gateway :p0
//!        │  ▲                            │                └─ tenant-b gateway :p1
//!        │  └──stdout READY/HB/REPORT────┘
//!        │        …                      fleet_worker (proc N-1) …
//!        │
//!   place(tenant, sensor) ─▶ consistent-hash ring ─▶ worker addr
//!                             (FNV-1a virtual nodes)
//!  sensors ──────────── wire protocol, Hello carries tenant ──▶ workers
//! ```
//!
//! * [`ring`] — consistent-hash routing (`tenant/sensor → process`)
//!   over shared-FNV virtual nodes; a dead worker remaps only its own
//!   keys.
//! * [`registry`] — [`TenantSpec`]s: model architecture, checkpoint
//!   lineage directory (recovered through
//!   `persist::load_latest_compatible`'s quarantine gate), SLO budget.
//! * [`protocol`] — the worker stdio protocol; final reports cross the
//!   process boundary through `occusense_serve::report`'s versioned
//!   codec, so a kill mid-write is a typed truncation.
//! * [`supervisor`] — one supervised child process: spawn, heartbeat
//!   tracking, stop/kill, report collection.
//! * [`controller`] — the fleet control plane: placement with
//!   per-tenant admission control, health sweeps, ring rebalancing,
//!   drain-and-handoff, shutdown roll-up.
//! * [`report`] — [`FleetReport`]: per-tenant roll-up whose
//!   `unaccounted_records()` stays zero even when a worker is killed
//!   mid-storm (in-flight records re-book as shed).
//!
//! The `fleet_worker` binary is the supervised process; `fleet_storm`
//! is the chaos driver — multi-tenant load with one saturated tenant,
//! a mid-storm worker kill, and a verifier that demands exactly-once
//! resolution of every sequenced record, bitwise-correct per-tenant
//! predictions, a closed fleet residue, and non-saturated p99 within
//! budget of an unloaded baseline.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod controller;
pub mod protocol;
pub mod registry;
pub mod report;
pub mod ring;
pub mod supervisor;

pub use controller::{
    policy_name, worker_args, FleetConfig, FleetController, FleetError, PlaceError, Placement,
};
pub use protocol::{ready_line, EventParser, WorkerEvent, CMD_DRAIN, CMD_STOP};
pub use registry::{
    bootstrap_detector, feature_name, parse_features, valid_tenant_id, SloBudget, SpecError,
    TenantRegistry, TenantSpec, MAX_TENANT_LEN,
};
pub use report::{FleetReport, TenantRollup};
pub use ring::HashRing;
pub use supervisor::{StoppedWorker, WorkerError, WorkerHandle};
