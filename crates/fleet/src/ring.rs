//! Consistent-hash ring: `sensor → worker process` routing that stays
//! mostly stable when the worker set changes.
//!
//! Every worker contributes `vnodes` points on a `u64` ring, each point
//! the shared FNV-1a-64 ([`occusense_core::hash`]) of the worker name
//! extended with the virtual-node index. A key routes to the owner of
//! the first point at or clockwise-after its own hash. Removing a
//! worker removes only that worker's points, so exactly the keys it
//! owned remap (to the next surviving point clockwise) and every other
//! key keeps its assignment — the property the fleet controller leans
//! on when a process dies mid-storm: surviving sensors stay pinned to
//! their stateful gateways while the dead worker's sensors re-route.
//!
//! Both the controller (routing) and `fleet_storm`'s verifier (replay)
//! hash with the same shared function, so placement is a pure function
//! of `(worker names, vnodes, key)` and reproducible across processes.

use occusense_core::hash::{fnv1a64, fnv1a64_extend};

/// A consistent-hash ring over named nodes with virtual points.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(point, node index)` pairs — the ring itself.
    points: Vec<(u64, usize)>,
    /// Node names; indices are stable for the life of the ring (a
    /// removed node leaves a hole so surviving indices never shift).
    nodes: Vec<Option<String>>,
    vnodes: usize,
}

impl HashRing {
    /// An empty ring whose nodes will each contribute `vnodes` points
    /// (clamped to at least 1).
    pub fn new(vnodes: usize) -> Self {
        Self {
            points: Vec::new(),
            nodes: Vec::new(),
            vnodes: vnodes.max(1),
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Whether the ring has no live nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `node`; a duplicate name is a no-op returning `false`.
    pub fn insert(&mut self, node: &str) -> bool {
        if self.nodes.iter().flatten().any(|n| n == node) {
            return false;
        }
        let index = self.nodes.len();
        self.nodes.push(Some(node.to_string()));
        let base = fnv1a64(node.as_bytes());
        for v in 0..self.vnodes {
            let point = fnv1a64_extend(base, &(v as u64).to_le_bytes());
            self.points.push((point, index));
        }
        // Sort by point, breaking ties by node index so the ring order
        // is deterministic even on (astronomically unlikely) collisions.
        self.points.sort_unstable();
        true
    }

    /// Removes `node`, returning whether it was present. Surviving
    /// assignments are untouched; only keys owned by `node` remap.
    pub fn remove(&mut self, node: &str) -> bool {
        let Some(index) = self
            .nodes
            .iter()
            .position(|n| n.as_deref() == Some(node))
        else {
            return false;
        };
        self.nodes[index] = None;
        self.points.retain(|&(_, i)| i != index);
        true
    }

    /// The node owning `key`, or `None` on an empty ring.
    pub fn route(&self, key: &str) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let hash = fnv1a64(key.as_bytes());
        let at = self.points.partition_point(|&(p, _)| p < hash);
        let (_, index) = self.points[at % self.points.len()];
        self.nodes[index].as_deref()
    }

    /// Live node names in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = &str> {
        self.nodes.iter().flatten().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn ring_of(names: &[&str], vnodes: usize) -> HashRing {
        let mut ring = HashRing::new(vnodes);
        for n in names {
            assert!(ring.insert(n));
        }
        ring
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = ring_of(&["worker-0", "worker-1", "worker-2"], 64);
        for i in 0..200 {
            let key = format!("tenant-a/sensor-{i}");
            let a = ring.route(&key).unwrap().to_string();
            let b = ring.route(&key).unwrap().to_string();
            assert_eq!(a, b);
        }
        assert!(HashRing::new(64).route("anything").is_none());
    }

    #[test]
    fn duplicate_insert_is_refused() {
        let mut ring = ring_of(&["worker-0"], 8);
        assert!(!ring.insert("worker-0"));
        assert_eq!(ring.len(), 1);
        assert!(ring.remove("worker-0"));
        assert!(!ring.remove("worker-0"));
        assert!(ring.is_empty());
    }

    #[test]
    fn virtual_nodes_spread_keys_across_every_worker() {
        let ring = ring_of(&["worker-0", "worker-1", "worker-2", "worker-3"], 64);
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        for i in 0..2000 {
            let owner = ring.route(&format!("sensor-{i}")).unwrap();
            *counts.entry(owner.to_string()).or_default() += 1;
        }
        assert_eq!(counts.len(), 4, "every worker owns some keys");
        for (worker, n) in &counts {
            // 2000 keys over 4 workers: perfect balance is 500. With 64
            // vnodes the spread stays well inside a 3× band.
            assert!(
                (150..=1200).contains(n),
                "{worker} owns {n} of 2000 keys — ring is badly unbalanced"
            );
        }
    }

    proptest! {
        /// The consistent-hashing contract: removing one node remaps
        /// exactly the keys it owned, and those land on live nodes.
        #[test]
        fn removal_only_remaps_the_dead_workers_keys(
            workers in 2usize..6,
            victim in 0usize..6,
            key_bytes in prop::collection::vec(prop::collection::vec(97u8..123, 1..24), 1..80),
        ) {
            let keys: Vec<String> = key_bytes
                .iter()
                .enumerate()
                .map(|(i, b)| format!("{}/{i}", String::from_utf8_lossy(b)))
                .collect();
            let names: Vec<String> = (0..workers).map(|i| format!("worker-{i}")).collect();
            let victim = &names[victim % workers];
            let mut ring = HashRing::new(32);
            for n in &names {
                ring.insert(n);
            }
            let before: Vec<(String, String)> = keys
                .iter()
                .map(|k| (k.clone(), ring.route(k).unwrap().to_string()))
                .collect();
            ring.remove(victim);
            for (key, owner) in &before {
                let now = ring.route(key).unwrap();
                if owner == victim {
                    prop_assert_ne!(now, victim.as_str());
                } else {
                    prop_assert_eq!(now, owner.as_str(), "surviving key moved");
                }
            }
        }
    }
}
