//! Multi-tenant fleet chaos driver: boots a worker fleet through
//! [`FleetController`], storms it with per-tenant sensor traffic (one
//! tenant deliberately saturated), kills a worker process mid-storm,
//! and (with `--verify`) proves the fleet's chaos-proof accounting:
//!
//! * every sequenced record resolves **exactly once** — prediction,
//!   NACK, or re-booked as shed when its worker died;
//! * every delivered prediction is bitwise identical to in-process
//!   scoring by the tenant's own model (cross-tenant routing or a
//!   polluted-lineage load would fail this);
//! * the fleet accounting residue closes:
//!   `fleet_report.unaccounted_records() == 0` even with a worker
//!   killed mid-storm;
//! * the saturated tenant visibly sheds (admission refusals + QueueFull
//!   NACKs) while the *other* tenants' storm p99 stays within 2× of
//!   their unloaded baseline (with an absolute floor for noisy CI).
//!
//! ```text
//! cargo run --release -p occusense-fleet --bin fleet_storm -- \
//!     --tenants 3 --procs 4 --kill-one --verify --json soak.json
//! ```

use occusense_core::detector::OccupancyDetector;
use occusense_core::persist::{checkpoint_path, save_detector_atomic, QUARANTINE_SUFFIX};
use occusense_dataset::{CsiRecord, FeatureView};
use occusense_fleet::{
    bootstrap_detector, FleetConfig, FleetController, FleetReport, PlaceError, SloBudget,
    TenantRegistry, TenantSpec,
};
use occusense_serve::BackpressurePolicy;
use occusense_sim::{FleetScenario, BASELINE_SENSOR};
use occusense_wire::{
    connect_tenant, tcp_connect, ClientEvent, NackReason, PredictionFrame, TcpConfig, WireError,
    WireSender,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const USAGE: &str = "fleet_storm — multi-tenant chaos driver for the occusense fleet

  --tenants N           tenants to register; tenant-0 is the saturated
                        one (RejectNewest, tiny queue, half the sensor
                        budget) (default 3)
  --procs N             worker processes (default 4)
  --sensors N           sensors attempted per tenant (default 6)
  --records N           records per storm sensor (default 400)
  --baseline-records N  records per unloaded baseline sensor (default 200)
  --window N            per-sensor in-flight record window (default 32)
  --hb-ms N             worker heartbeat period, ms (default 100)
  --seed S              base seed for tenant models and record streams
                        (default 100)
  --p99-floor-ms N      absolute p99 allowance added to the 2×-baseline
                        budget, ms (default 200)
  --worker-bin PATH     fleet_worker binary (default: next to this one)
  --kill-one            SIGKILL the most-loaded worker mid-storm
  --json PATH           write a machine-readable soak summary
  --verify              enforce the full chaos contract and exit 1 on
                        any violation
  -h, --help            print this help";

#[derive(Clone)]
struct Args {
    tenants: usize,
    procs: usize,
    sensors: usize,
    records: usize,
    baseline_records: usize,
    window: usize,
    hb_ms: u64,
    seed: u64,
    p99_floor_ms: u64,
    worker_bin: Option<String>,
    kill_one: bool,
    json: Option<String>,
    verify: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            tenants: 3,
            procs: 4,
            sensors: 6,
            records: 400,
            baseline_records: 200,
            window: 32,
            hb_ms: 100,
            seed: 100,
            p99_floor_ms: 200,
            worker_bin: None,
            kill_one: false,
            json: None,
            verify: false,
        }
    }
}

fn parse_value<T: std::str::FromStr>(raw: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("bad value {raw:?} for {what}: {e}"))
}

/// Parses the command line. `Err` carries a user-facing message — the
/// caller prints it with the usage text and exits 2 (the shared CLI
/// convention of `serve_sim` and `wire_storm`).
fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv;
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--kill-one" {
            args.kill_one = true;
            continue;
        }
        if flag == "--verify" {
            args.verify = true;
            continue;
        }
        const KNOWN: &[&str] = &[
            "--tenants",
            "--procs",
            "--sensors",
            "--records",
            "--baseline-records",
            "--window",
            "--hb-ms",
            "--seed",
            "--p99-floor-ms",
            "--worker-bin",
            "--json",
        ];
        if !KNOWN.contains(&flag.as_str()) {
            return Err(format!("unknown flag {flag:?}"));
        }
        let raw = it
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--tenants" => args.tenants = parse_value(&raw, "--tenants")?,
            "--procs" => args.procs = parse_value(&raw, "--procs")?,
            "--sensors" => args.sensors = parse_value(&raw, "--sensors")?,
            "--records" => args.records = parse_value(&raw, "--records")?,
            "--baseline-records" => args.baseline_records = parse_value(&raw, "--baseline-records")?,
            "--window" => args.window = parse_value(&raw, "--window")?,
            "--hb-ms" => args.hb_ms = parse_value(&raw, "--hb-ms")?,
            "--seed" => args.seed = parse_value(&raw, "--seed")?,
            "--p99-floor-ms" => args.p99_floor_ms = parse_value(&raw, "--p99-floor-ms")?,
            "--worker-bin" => args.worker_bin = Some(raw),
            "--json" => args.json = Some(raw),
            _ => unreachable!("flag was vetted against KNOWN"),
        }
    }
    if args.tenants == 0 {
        return Err("--tenants must be >= 1".into());
    }
    if args.procs == 0 {
        return Err("--procs must be >= 1".into());
    }
    if args.sensors == 0 || args.records == 0 || args.window == 0 {
        return Err("--sensors, --records and --window must be >= 1".into());
    }
    if args.kill_one && args.procs < 2 {
        return Err("--kill-one needs --procs >= 2 (someone must survive)".into());
    }
    Ok(args)
}

/// How one booked record resolved. Exactly-once means every slot ends
/// in exactly one of the three resolved states.
enum Slot {
    /// Never sent (a sensor that gave up mid-stream leaves these).
    Unsent,
    /// Sent, resolution still owed — non-empty at the end means the
    /// fleet *lost* the record.
    Pending,
    /// Scored; the frame is kept for the bitwise replay.
    Pred(PredictionFrame),
    /// Refused with a QueueFull/Shutdown NACK (the load-shed lane).
    Nacked,
    /// In flight to a worker that died; re-booked as fleet shed.
    Rebooked,
}

/// What one sensor thread brings home.
struct SensorOutcome {
    tenant: usize,
    sensor: usize,
    records: Vec<CsiRecord>,
    slots: Vec<Slot>,
    /// Enqueue→prediction round trips, ns (scored records only).
    rtts: Vec<u64>,
    reconnects: u64,
    duplicates: u64,
    admission_shed: bool,
    errors: Vec<String>,
}

enum PumpEnd {
    /// Clean goodbye exchange, every booked record resolved.
    Done,
    /// The connection died; `pending` holds the unresolved bookings.
    ConnDead(String),
}

/// Drives one connection's windowed send/recv pump until either the
/// goodbye exchange completes or the connection dies. Single-threaded
/// by design: the in-flight window stays far below every queue
/// capacity, so send can never deadlock against an unread prediction.
#[allow(clippy::too_many_arguments)]
fn pump(
    mut tx: Option<WireSender>,
    rx: &mut occusense_wire::WireReceiver,
    records: &[CsiRecord],
    next: &mut usize,
    slots: &mut [Slot],
    pending: &mut BTreeMap<u64, (usize, Instant)>,
    rtts: &mut Vec<u64>,
    duplicates: &mut u64,
    window: usize,
    progress: &AtomicU64,
) -> PumpEnd {
    let stall_limit = Duration::from_secs(15);
    let mut last_event = Instant::now();
    let mut finished = false;
    loop {
        if let Some(sender) = tx.as_mut() {
            while pending.len() < window && *next < records.len() {
                let Some(record) = records.get(*next) else {
                    break;
                };
                match sender.send(*record, None) {
                    Ok(seq) => {
                        pending.insert(seq, (*next, Instant::now()));
                        if let Some(slot) = slots.get_mut(*next) {
                            *slot = Slot::Pending;
                        }
                        *next += 1;
                    }
                    Err(e) => return PumpEnd::ConnDead(format!("send: {e}")),
                }
            }
            if *next >= records.len() && pending.is_empty() {
                let sender = tx.take().expect("checked Some above");
                if let Err(e) = sender.finish() {
                    return PumpEnd::ConnDead(format!("goodbye: {e}"));
                }
                finished = true;
            }
        }
        match rx.recv() {
            Ok(ClientEvent::Prediction(p)) => {
                last_event = Instant::now();
                match pending.remove(&p.seq) {
                    Some((idx, t0)) => {
                        rtts.push(t0.elapsed().as_nanos() as u64);
                        if let Some(slot) = slots.get_mut(idx) {
                            *slot = Slot::Pred(p);
                        }
                        progress.fetch_add(1, Ordering::Relaxed);
                    }
                    None => *duplicates += 1,
                }
            }
            Ok(ClientEvent::Nack(n)) => {
                last_event = Instant::now();
                match n.reason {
                    NackReason::QueueFull | NackReason::Shutdown => {
                        match pending.remove(&n.seq) {
                            Some((idx, _)) => {
                                if let Some(slot) = slots.get_mut(idx) {
                                    *slot = Slot::Nacked;
                                }
                                progress.fetch_add(1, Ordering::Relaxed);
                            }
                            None => *duplicates += 1,
                        }
                    }
                    reason => {
                        return PumpEnd::ConnDead(format!("fatal NACK: {reason}"));
                    }
                }
            }
            Ok(ClientEvent::Goodbye(_)) => {
                if finished && pending.is_empty() {
                    return PumpEnd::Done;
                }
                return PumpEnd::ConnDead("server goodbye with bookings open".to_string());
            }
            Ok(ClientEvent::Closed) => {
                if finished && pending.is_empty() {
                    // The goodbye exchange raced the socket close;
                    // every booking is resolved, which is what counts.
                    return PumpEnd::Done;
                }
                return PumpEnd::ConnDead("connection closed".to_string());
            }
            Ok(ClientEvent::TimedOut) => {
                if last_event.elapsed() > stall_limit {
                    return PumpEnd::ConnDead("receiver stalled past the 15 s limit".to_string());
                }
            }
            Err(e) => return PumpEnd::ConnDead(format!("receive: {e}")),
        }
    }
}

/// One sensor's whole life: place → connect → pump, re-booking
/// in-flight records as shed and re-placing onto a survivor whenever
/// the connection (or its worker) dies.
fn run_sensor(
    tenant_idx: usize,
    tenant_id: &str,
    sensor_idx: usize,
    records: Vec<CsiRecord>,
    ctrl: &Arc<Mutex<FleetController>>,
    worker_load: &Arc<Mutex<BTreeMap<String, i64>>>,
    window: usize,
    progress: &Arc<AtomicU64>,
) -> SensorOutcome {
    let sensor_name = format!("s{sensor_idx}");
    let mut outcome = SensorOutcome {
        tenant: tenant_idx,
        sensor: sensor_idx,
        slots: records.iter().map(|_| Slot::Unsent).collect(),
        records,
        rtts: Vec::new(),
        reconnects: 0,
        duplicates: 0,
        admission_shed: false,
        errors: Vec::new(),
    };
    let mut next = 0usize;
    let mut had_conn = false;
    let mut attempts = 0u32;
    let max_attempts = 40;
    loop {
        attempts += 1;
        if attempts > max_attempts {
            outcome
                .errors
                .push(format!("gave up after {max_attempts} placement attempts"));
            return outcome;
        }
        let placement = {
            let mut c = ctrl.lock().unwrap_or_else(|p| p.into_inner());
            if had_conn {
                // A dead connection usually means a dead worker; sweep
                // so the ring stops routing to it before re-placing.
                c.poll();
            }
            match c.place(tenant_id, &sensor_name) {
                Ok(p) => p,
                Err(PlaceError::Saturated { .. }) => {
                    outcome.admission_shed = true;
                    return outcome;
                }
                Err(PlaceError::NoWorkers) => {
                    drop(c);
                    std::thread::sleep(Duration::from_millis(100));
                    continue;
                }
                Err(e) => {
                    outcome.errors.push(format!("place: {e}"));
                    return outcome;
                }
            }
        };
        let conn = match tcp_connect(&placement.addr, TcpConfig::default()) {
            Ok(conn) => conn,
            Err(_) => {
                // The addr belongs to a worker that died between the
                // sweep and the dial; next attempt re-routes.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        let (tx, mut rx) = match connect_tenant(conn, tenant_id, &sensor_name, Duration::from_secs(10)) {
            Ok(split) => split,
            Err(WireError::Refused(NackReason::Shutdown)) => {
                // Draining gateway: retryable by contract.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        if had_conn {
            outcome.reconnects += 1;
        }
        had_conn = true;
        {
            let mut load = worker_load.lock().unwrap_or_else(|p| p.into_inner());
            *load.entry(placement.worker.clone()).or_default() += 1;
        }
        let mut pending: BTreeMap<u64, (usize, Instant)> = BTreeMap::new();
        let end = pump(
            Some(tx),
            &mut rx,
            &outcome.records,
            &mut next,
            &mut outcome.slots,
            &mut pending,
            &mut outcome.rtts,
            &mut outcome.duplicates,
            window,
            progress,
        );
        {
            let mut load = worker_load.lock().unwrap_or_else(|p| p.into_inner());
            *load.entry(placement.worker.clone()).or_default() -= 1;
        }
        match end {
            PumpEnd::Done => {
                let mut c = ctrl.lock().unwrap_or_else(|p| p.into_inner());
                c.release(tenant_id, &sensor_name);
                return outcome;
            }
            PumpEnd::ConnDead(why) => {
                // Exactly-once under chaos: whatever was in flight to
                // the dead worker can never resolve there, so re-book
                // it as fleet shed and stream the rest elsewhere.
                for (_, (idx, _)) in pending {
                    if let Some(slot) = outcome.slots.get_mut(idx) {
                        *slot = Slot::Rebooked;
                    }
                    progress.fetch_add(1, Ordering::Relaxed);
                }
                eprintln!(
                    "{tenant_id}/{sensor_name}: connection to {} lost ({why}); re-routing",
                    placement.worker
                );
            }
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-tenant latency verdict inputs.
struct TenantLatency {
    baseline_p99_ns: u64,
    storm_p99_ns: u64,
}

/// The `--verify` verdict over the whole run.
#[allow(clippy::too_many_arguments)]
fn verify(
    args: &Args,
    outcomes: &[SensorOutcome],
    detectors: &[OccupancyDetector],
    report: &FleetReport,
    latencies: &BTreeMap<usize, TenantLatency>,
    polluted: &std::path::Path,
    quarantined: &std::path::Path,
    kill_happened: bool,
) -> Vec<String> {
    let mut failures: Vec<String> = Vec::new();
    let mut shed_by_tenant: BTreeMap<usize, u64> = BTreeMap::new();
    let mut nacked_t0 = 0u64;
    let mut reconnects = 0u64;
    for o in outcomes {
        let who = format!("tenant-{}/s{}", o.tenant, o.sensor);
        for e in &o.errors {
            failures.push(format!("{who}: {e}"));
        }
        reconnects += o.reconnects;
        if o.admission_shed {
            *shed_by_tenant.entry(o.tenant).or_default() += 1;
            continue;
        }
        if o.duplicates > 0 {
            failures.push(format!(
                "{who}: {} duplicate resolutions (a record resolved twice)",
                o.duplicates
            ));
        }
        let mut unsent = 0u64;
        let mut unresolved = 0u64;
        for (idx, slot) in o.slots.iter().enumerate() {
            match slot {
                Slot::Unsent => unsent += 1,
                Slot::Pending => unresolved += 1,
                Slot::Nacked => {
                    if o.tenant == 0 {
                        nacked_t0 += 1;
                    }
                }
                Slot::Rebooked => {}
                Slot::Pred(p) => {
                    let Some(record) = o.records.get(idx) else {
                        continue;
                    };
                    let Some(detector) = detectors.get(o.tenant) else {
                        continue;
                    };
                    let (occupied, proba) = detector.predict_record(record);
                    if p.occupied != occupied || p.proba.to_bits() != proba.to_bits() {
                        failures.push(format!(
                            "{who} seq {idx}: wire ({}, {:#018x}) != tenant model ({}, {:#018x})",
                            p.occupied,
                            p.proba.to_bits(),
                            occupied,
                            proba.to_bits()
                        ));
                    }
                    if p.model_version != 1 {
                        failures.push(format!(
                            "{who} seq {idx}: scored by model v{} (online training is off)",
                            p.model_version
                        ));
                    }
                }
            }
        }
        if unsent > 0 {
            failures.push(format!("{who}: {unsent} records never sent"));
        }
        if unresolved > 0 {
            failures.push(format!(
                "{who}: {unresolved} records sent but never resolved"
            ));
        }
    }
    // The saturated tenant must actually saturate, both at admission
    // and at the ingress queue; everyone else must be untouched.
    if shed_by_tenant.get(&0).copied().unwrap_or(0) == 0 {
        failures.push("tenant-0 had no admission-shed sensors (not saturated?)".to_string());
    }
    for (&tenant, &shed) in &shed_by_tenant {
        if tenant != 0 {
            failures.push(format!(
                "tenant-{tenant}: {shed} sensors refused at admission (only tenant-0 should shed)"
            ));
        }
    }
    let rejected_t0 = report
        .tenants
        .get("tenant-0")
        .map_or(0, |r| r.records_rejected());
    if nacked_t0 == 0 && rejected_t0 == 0 {
        failures.push(
            "tenant-0 produced no QueueFull sheds (queue never saturated?)".to_string(),
        );
    }
    let unaccounted = report.unaccounted_records();
    if unaccounted != 0 {
        failures.push(format!("fleet residue open: {unaccounted} records unaccounted"));
    }
    for (&tenant, lat) in latencies {
        let budget = (2 * lat.baseline_p99_ns).max(args.p99_floor_ms * 1_000_000);
        if lat.storm_p99_ns > budget {
            failures.push(format!(
                "tenant-{tenant}: storm p99 {:.2} ms over budget {:.2} ms (baseline {:.2} ms)",
                lat.storm_p99_ns as f64 / 1e6,
                budget as f64 / 1e6,
                lat.baseline_p99_ns as f64 / 1e6
            ));
        }
    }
    if args.kill_one {
        if !kill_happened {
            failures.push("--kill-one never fired (storm finished too fast?)".to_string());
        }
        if report.workers_lost != 1 {
            failures.push(format!(
                "expected exactly 1 lost worker, report says {}",
                report.workers_lost
            ));
        }
        if report.workers_stopped_clean != (args.procs as u64).saturating_sub(1) {
            failures.push(format!(
                "expected {} clean stops, report says {}",
                args.procs - 1,
                report.workers_stopped_clean
            ));
        }
        if kill_happened && reconnects == 0 {
            failures.push("worker killed but no sensor ever re-routed".to_string());
        }
    } else if report.workers_lost != 0 {
        failures.push(format!(
            "{} workers lost without --kill-one",
            report.workers_lost
        ));
    }
    if polluted.exists() {
        failures.push(format!(
            "polluted lineage checkpoint {} was not quarantined",
            polluted.display()
        ));
    }
    if !quarantined.exists() {
        failures.push(format!(
            "quarantine marker {} missing",
            quarantined.display()
        ));
    }
    failures
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("fleet_storm: {message}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    let worker_bin = args.worker_bin.clone().map(PathBuf::from).unwrap_or_else(|| {
        std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("fleet_worker")))
            .unwrap_or_else(|| PathBuf::from("fleet_worker"))
    });

    // Tenant specs: tenant-0 is the saturated one — half the sensor
    // budget (admission shed) and a tiny RejectNewest queue (QueueFull
    // shed); everyone else is lossless Block with room to spare.
    // Distinct seeds per tenant make the bitwise replay a cross-tenant
    // routing check: a record scored by the *wrong* tenant's model
    // cannot match.
    let scenario = FleetScenario::storm(args.tenants, args.sensors, args.records, args.seed);
    let mut registry = TenantRegistry::new();
    let mut detectors: Vec<OccupancyDetector> = Vec::with_capacity(args.tenants);
    let lineage_root = std::env::temp_dir().join(format!("fleet_storm-{}", std::process::id()));
    for t in 0..args.tenants {
        let tenant = format!("tenant-{t}");
        let seed = scenario.model_seed(t);
        eprintln!("training {tenant} bootstrap model (seed {seed})…");
        let detector = bootstrap_detector(seed, FeatureView::Csi);
        let dir = lineage_root.join(&tenant);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("fleet_storm: cannot create lineage dir {}: {e}", dir.display());
            std::process::exit(2);
        }
        if let Err(e) = save_detector_atomic(&checkpoint_path(&dir, 1), &detector) {
            eprintln!("fleet_storm: cannot write {tenant} checkpoint: {e}");
            std::process::exit(2);
        }
        let mut spec = TenantSpec::new(&tenant, FeatureView::Csi, seed);
        spec.lineage = Some(dir);
        if scenario.is_saturated(t) {
            spec.slo = SloBudget {
                max_sensors: (args.sensors / 2).max(1),
                queue_capacity: 8,
                policy: BackpressurePolicy::RejectNewest,
                ..SloBudget::default()
            };
        }
        if let Err(e) = registry.register(spec) {
            eprintln!("fleet_storm: {e}");
            std::process::exit(2);
        }
        detectors.push(detector);
    }

    // Pollute tenant-0's lineage with a *newer* checkpoint of the
    // wrong architecture (env features). The worker's recovery
    // predicate must quarantine it and serve v1 — if it served the
    // polluted model instead, every tenant-0 prediction would fail the
    // bitwise replay.
    let t0_dir = lineage_root.join("tenant-0");
    let polluted_path = checkpoint_path(&t0_dir, 2);
    let quarantined_path = PathBuf::from(format!(
        "{}.{QUARANTINE_SUFFIX}",
        polluted_path.display()
    ));
    eprintln!("polluting tenant-0 lineage with a wrong-architecture v2 checkpoint…");
    let pollutant = bootstrap_detector(args.seed + 999, FeatureView::Env);
    if let Err(e) = save_detector_atomic(&polluted_path, &pollutant) {
        eprintln!("fleet_storm: cannot write pollutant: {e}");
        std::process::exit(2);
    }

    let config = FleetConfig {
        worker_bin,
        procs: args.procs,
        hb_ms: args.hb_ms,
        ..FleetConfig::default()
    };
    eprintln!(
        "launching fleet: {} workers × {} tenants (worker bin {})…",
        args.procs,
        args.tenants,
        config.worker_bin.display()
    );
    let started = Instant::now();
    let controller = match FleetController::launch(config, registry) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fleet_storm: {e}");
            std::process::exit(2);
        }
    };
    let ctrl = Arc::new(Mutex::new(controller));
    let worker_load: Arc<Mutex<BTreeMap<String, i64>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let progress = Arc::new(AtomicU64::new(0));

    // Unloaded baseline: one lone sensor per non-saturated tenant,
    // same pump and window as the storm, before any load exists.
    let mut latencies: BTreeMap<usize, TenantLatency> = BTreeMap::new();
    let mut baseline_outcomes: Vec<SensorOutcome> = Vec::new();
    for t in 1..args.tenants {
        let tenant = format!("tenant-{t}");
        let records: Vec<CsiRecord> = scenario
            .baseline_stream(t, args.baseline_records)
            .take(args.baseline_records)
            .collect();
        let mut outcome = run_sensor(
            t,
            &tenant,
            BASELINE_SENSOR as usize,
            records,
            &ctrl,
            &worker_load,
            args.window,
            &progress,
        );
        outcome.rtts.sort_unstable();
        let p99 = percentile(&outcome.rtts, 99.0);
        eprintln!(
            "{tenant} unloaded baseline: p99 {:.2} ms over {} records",
            p99 as f64 / 1e6,
            outcome.rtts.len()
        );
        latencies.insert(
            t,
            TenantLatency {
                baseline_p99_ns: p99,
                storm_p99_ns: 0,
            },
        );
        baseline_outcomes.push(outcome);
    }
    // Baseline placements were released; reset the load map so victim
    // choice reflects storm placements only.
    worker_load.lock().unwrap_or_else(|p| p.into_inner()).clear();

    eprintln!(
        "storming: {} tenants × {} sensors × {} records (window {}), tenant-0 saturated{}",
        args.tenants,
        args.sensors,
        args.records,
        args.window,
        if args.kill_one { ", one worker to die" } else { "" }
    );
    // Every sensor's replay source is materialised *before* the first
    // thread spawns: sensors must hit the fleet simultaneously, or
    // tenant-0's early sensors finish and release their admission
    // slots before the late ones even ask (no saturation), and the
    // mid-storm kill fires into an already-drained fleet.
    let storm_records: Vec<((usize, usize), Vec<CsiRecord>)> = (0..args.tenants)
        .flat_map(|t| (0..args.sensors).map(move |s| (t, s)))
        .map(|(t, s)| {
            let records = scenario
                .sensor_stream(t, s as u64)
                .take(args.records)
                .collect();
            ((t, s), records)
        })
        .collect();
    let handles: Vec<std::thread::JoinHandle<SensorOutcome>> = storm_records
        .into_iter()
        .map(|((t, s), records)| {
            let ctrl = Arc::clone(&ctrl);
            let worker_load = Arc::clone(&worker_load);
            let progress = Arc::clone(&progress);
            let window = args.window;
            std::thread::Builder::new()
                .name(format!("storm-t{t}-s{s}"))
                .spawn(move || {
                    let tenant = format!("tenant-{t}");
                    run_sensor(t, &tenant, s, records, &ctrl, &worker_load, window, &progress)
                })
                .expect("spawn sensor thread")
        })
        .collect();

    // The chaos lever: once ~25% of the optimistic resolution total is
    // in, SIGKILL the worker carrying the most live connections — its
    // sensors must re-book their in-flight records as shed and re-place
    // onto survivors.
    let mut kill_happened = false;
    if args.kill_one {
        let optimistic = (args.tenants * args.sensors * args.records) as u64;
        let trigger = (optimistic / 4).max(1);
        let deadline = Instant::now() + Duration::from_secs(300);
        while progress.load(Ordering::Relaxed) < trigger && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let victim = {
            let load = worker_load.lock().unwrap_or_else(|p| p.into_inner());
            load.iter()
                .filter(|&(_, &n)| n > 0)
                .max_by_key(|&(_, &n)| n)
                .map(|(name, _)| name.clone())
        };
        if let Some(victim) = victim {
            let index: usize = victim
                .strip_prefix("worker-")
                .and_then(|n| n.parse().ok())
                .unwrap_or(0);
            let mut c = ctrl.lock().unwrap_or_else(|p| p.into_inner());
            if c.kill_worker(index) {
                kill_happened = true;
                eprintln!(
                    "killed {victim} after {} resolutions",
                    progress.load(Ordering::Relaxed)
                );
            }
        }
        if !kill_happened {
            eprintln!("fleet_storm: no live loaded worker found to kill");
        }
    }

    let mut outcomes: Vec<SensorOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("sensor thread panicked"))
        .collect();
    outcomes.sort_by_key(|o| (o.tenant, o.sensor));

    // Storm p99 per non-saturated tenant.
    for t in 1..args.tenants {
        let mut rtts: Vec<u64> = outcomes
            .iter()
            .filter(|o| o.tenant == t)
            .flat_map(|o| o.rtts.iter().copied())
            .collect();
        rtts.sort_unstable();
        if let Some(lat) = latencies.get_mut(&t) {
            lat.storm_p99_ns = percentile(&rtts, 99.0);
        }
    }

    let controller = Arc::try_unwrap(ctrl)
        .unwrap_or_else(|_| panic!("sensor threads joined but controller still shared"))
        .into_inner()
        .unwrap_or_else(|p| p.into_inner());
    let mut report = controller.shutdown();
    let wall = started.elapsed();

    // Client-side chaos bookkeeping onto the roll-up: re-booked sheds
    // resolve their records; anything still pending is lost.
    let mut rebooked = 0u64;
    let mut unresolved = 0u64;
    for o in outcomes.iter().chain(baseline_outcomes.iter()) {
        for slot in &o.slots {
            match slot {
                Slot::Rebooked => rebooked += 1,
                Slot::Pending => unresolved += 1,
                _ => {}
            }
        }
    }
    report.rebooked_shed = rebooked;
    report.unresolved_records = unresolved;

    println!("\n=== fleet_storm report ===");
    print!("{report}");
    for (t, lat) in &latencies {
        println!(
            "tenant-{t} p99: baseline {:.2} ms → storm {:.2} ms",
            lat.baseline_p99_ns as f64 / 1e6,
            lat.storm_p99_ns as f64 / 1e6
        );
    }
    println!("fleet wall time {wall:.2?}");

    let mut failures: Vec<String> = Vec::new();
    if args.verify {
        failures = verify(
            &args,
            &outcomes,
            &detectors,
            &report,
            &latencies,
            &polluted_path,
            &quarantined_path,
            kill_happened,
        );
        for o in &baseline_outcomes {
            for e in &o.errors {
                failures.push(format!("baseline tenant-{}: {e}", o.tenant));
            }
        }
        if failures.is_empty() {
            println!(
                "verify verdict: PASS ({} tenants, {} workers{}, residue 0, all predictions bitwise, saturated tenant shed, p99 within budget)",
                args.tenants,
                args.procs,
                if kill_happened { ", 1 killed mid-storm" } else { "" }
            );
        }
    }

    if let Some(path) = &args.json {
        let verdict = if !args.verify {
            "off"
        } else if failures.is_empty() {
            "pass"
        } else {
            "fail"
        };
        let mut tenants_json = String::new();
        for t in 0..args.tenants {
            let tenant = format!("tenant-{t}");
            let roll = report.tenants.get(&tenant);
            let (served, rejected, shed) = roll.map_or((0, 0, 0), |r| {
                (r.records_served(), r.records_rejected(), r.records_shed())
            });
            let (base_p99, storm_p99) = latencies
                .get(&t)
                .map_or((0, 0), |l| (l.baseline_p99_ns, l.storm_p99_ns));
            tenants_json.push_str(&format!(
                concat!(
                    "    {{\"tenant\": \"{}\", \"served\": {}, \"rejected\": {}, ",
                    "\"shed\": {}, \"baseline_p99_us\": {:.1}, \"storm_p99_us\": {:.1}, ",
                    "\"saturated\": {}}}{}\n"
                ),
                tenant,
                served,
                rejected,
                shed,
                base_p99 as f64 / 1e3,
                storm_p99 as f64 / 1e3,
                t == 0,
                if t + 1 < args.tenants { "," } else { "" }
            ));
        }
        let json = format!(
            concat!(
                "{{\n",
                "  \"tenants\": {},\n",
                "  \"procs\": {},\n",
                "  \"sensors_per_tenant\": {},\n",
                "  \"records_per_sensor\": {},\n",
                "  \"kill_one\": {},\n",
                "  \"kill_happened\": {},\n",
                "  \"wall_s\": {:.3},\n",
                "  \"workers_spawned\": {},\n",
                "  \"workers_stopped_clean\": {},\n",
                "  \"workers_lost\": {},\n",
                "  \"heartbeats\": {},\n",
                "  \"placements_shed\": {},\n",
                "  \"rebooked_shed\": {},\n",
                "  \"unresolved_records\": {},\n",
                "  \"truncated_reports\": {},\n",
                "  \"unaccounted\": {},\n",
                "  \"per_tenant\": [\n",
                "{}",
                "  ],\n",
                "  \"verdict\": \"{}\"\n",
                "}}\n"
            ),
            args.tenants,
            args.procs,
            args.sensors,
            args.records,
            args.kill_one,
            kill_happened,
            wall.as_secs_f64(),
            report.workers_spawned,
            report.workers_stopped_clean,
            report.workers_lost,
            report.heartbeats,
            report.placements_shed,
            report.rebooked_shed,
            report.unresolved_records,
            report.truncated_reports,
            report.unaccounted_records(),
            tenants_json,
            verdict
        );
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("soak summary written to {path}"),
            Err(e) => eprintln!("fleet_storm: cannot write {path}: {e}"),
        }
    }

    // Keep the quarantined pollutant around only long enough to
    // assert on it; the whole per-run temp tree goes at the end.
    let _ = std::fs::remove_dir_all(&lineage_root);

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("fleet_storm verdict: FAIL — {f}");
        }
        std::process::exit(1);
    }
}
