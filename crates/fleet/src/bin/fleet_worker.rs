//! One fleet worker process: hosts a tenant-labelled wire gateway per
//! `--tenant` group, speaks the stdio protocol of
//! `occusense_fleet::protocol` to its supervisor, and on `stop` (or
//! stdin EOF — a dead controller must never orphan workers) shuts
//! every gateway down and ships the per-tenant `ServeReport`s up the
//! pipe through the versioned report codec.
//!
//! ```text
//! fleet_worker --hb-ms 100 --shards 2 \
//!   --tenant acme --features csi --seed 7 --policy block \
//!       --capacity 1024 --lineage /var/lineage/acme \
//!   --tenant globex --features csi --seed 8 --policy reject-newest \
//!       --capacity 8
//! ```
//!
//! Each tenant's model is recovered from its lineage directory via
//! `load_latest_compatible` — the architecture predicate (feature-view
//! match) quarantines polluted checkpoints instead of serving them —
//! and falls back to the shared deterministic `bootstrap_detector`
//! recipe when the directory is empty or absent, so a fleet driver
//! holding the same `(seed, features)` always knows the worker's exact
//! weights.

use occusense_core::persist::load_latest_compatible;
use occusense_fleet::protocol::{ready_line, CMD_DRAIN, CMD_STOP};
use occusense_fleet::registry::{bootstrap_detector, parse_features, valid_tenant_id};
use occusense_serve::{BackpressurePolicy, ServeConfig};
use occusense_wire::{tcp_listen, Gateway, GatewayConfig, TcpConfig};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Duration;

const USAGE: &str = "fleet_worker — supervised multi-tenant serving process

  --hb-ms N        heartbeat period, milliseconds (default 100)
  --shards N       worker shards per tenant runtime (default 2)
  --tenant ID      starts a tenant group; the flags below apply to the
                   most recent --tenant
  --features F     csi | env | csi-env | time (default csi)
  --seed S         bootstrap training seed (default 7)
  --policy P       block | drop-oldest | reject-newest (default block)
  --capacity N     per-shard ingress queue capacity (default 1024)
  --lineage DIR    checkpoint lineage directory (default: train fresh)
  -h, --help       print this help

Protocol: stdout READY/HB/DRAINING/REPORT/BYE, stdin drain/stop;
stdin EOF is treated as stop.";

/// One `--tenant` group from argv.
struct TenantArgs {
    tenant: String,
    features: occusense_dataset::FeatureView,
    seed: u64,
    policy: BackpressurePolicy,
    capacity: usize,
    lineage: Option<PathBuf>,
}

impl TenantArgs {
    fn new(tenant: String) -> Self {
        Self {
            tenant,
            features: occusense_dataset::FeatureView::Csi,
            seed: 7,
            policy: BackpressurePolicy::Block,
            capacity: 1024,
            lineage: None,
        }
    }
}

struct Args {
    hb_ms: u64,
    shards: usize,
    tenants: Vec<TenantArgs>,
}

/// The `--tenant` group a per-tenant flag applies to.
fn tenant_scope<'a>(
    tenants: &'a mut Vec<TenantArgs>,
    flag: &str,
) -> Result<&'a mut TenantArgs, String> {
    tenants
        .last_mut()
        .ok_or_else(|| format!("{flag} before any --tenant"))
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        hb_ms: 100,
        shards: 2,
        tenants: Vec::new(),
    };
    let mut it = argv;
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            std::process::exit(0);
        }
        let raw = it
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--hb-ms" => {
                args.hb_ms = raw
                    .parse()
                    .map_err(|e| format!("bad --hb-ms {raw:?}: {e}"))?;
            }
            "--shards" => {
                args.shards = raw
                    .parse()
                    .map_err(|e| format!("bad --shards {raw:?}: {e}"))?;
            }
            "--tenant" => {
                if !valid_tenant_id(&raw) {
                    return Err(format!("bad tenant id {raw:?}"));
                }
                args.tenants.push(TenantArgs::new(raw));
            }
            "--features" => {
                tenant_scope(&mut args.tenants, &flag)?.features =
                    parse_features(&raw).ok_or_else(|| format!("bad --features {raw:?}"))?;
            }
            "--seed" => {
                tenant_scope(&mut args.tenants, &flag)?.seed = raw
                    .parse()
                    .map_err(|e| format!("bad --seed {raw:?}: {e}"))?;
            }
            "--policy" => {
                tenant_scope(&mut args.tenants, &flag)?.policy = BackpressurePolicy::parse(&raw)
                    .ok_or_else(|| format!("bad --policy {raw:?}"))?;
            }
            "--capacity" => {
                tenant_scope(&mut args.tenants, &flag)?.capacity = raw
                    .parse()
                    .map_err(|e| format!("bad --capacity {raw:?}: {e}"))?;
            }
            "--lineage" => {
                tenant_scope(&mut args.tenants, &flag)?.lineage = Some(PathBuf::from(raw));
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.tenants.is_empty() {
        return Err("at least one --tenant is required".into());
    }
    if args.shards == 0 {
        return Err("--shards must be >= 1".into());
    }
    Ok(args)
}

/// Prints one protocol line and flushes — the supervisor reads a pipe,
/// so unflushed status is indistinguishable from a hung worker.
fn say(line: &str) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("fleet_worker: {message}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    // Boot one tenant-labelled gateway per spec, each on its own
    // OS-assigned TCP port.
    let mut gateways: Vec<(String, Gateway)> = Vec::with_capacity(args.tenants.len());
    let mut ports: BTreeMap<String, String> = BTreeMap::new();
    for spec in &args.tenants {
        let detector = match &spec.lineage {
            Some(dir) => {
                let want = spec.features;
                match load_latest_compatible(dir, |d| d.features() == want) {
                    Ok(Some((version, _, detector))) => {
                        eprintln!(
                            "fleet_worker: tenant {} serving lineage checkpoint v{version}",
                            spec.tenant
                        );
                        detector
                    }
                    Ok(None) | Err(_) => bootstrap_detector(spec.seed, spec.features),
                }
            }
            None => bootstrap_detector(spec.seed, spec.features),
        };
        let (acceptor, local) = match tcp_listen("127.0.0.1:0", TcpConfig::default()) {
            Ok(bound) => bound,
            Err(e) => {
                eprintln!("fleet_worker: tenant {}: cannot listen: {e}", spec.tenant);
                std::process::exit(2);
            }
        };
        let serve = ServeConfig {
            tenant: spec.tenant.clone(),
            n_shards: args.shards,
            queue_capacity: spec.capacity,
            policy: spec.policy,
            online: None,
            ..ServeConfig::default()
        };
        let gateway_cfg = GatewayConfig {
            outbound_policy: BackpressurePolicy::Block,
            ..GatewayConfig::default()
        };
        match Gateway::start(detector, serve, gateway_cfg, Box::new(acceptor)) {
            Ok(gateway) => {
                ports.insert(spec.tenant.clone(), local.to_string());
                gateways.push((spec.tenant.clone(), gateway));
            }
            Err(e) => {
                eprintln!("fleet_worker: tenant {}: {e}", spec.tenant);
                std::process::exit(2);
            }
        }
    }
    say(&ready_line(&ports));

    // Command reader: forwards stdin lines; EOF means the supervisor
    // is gone, which must stop the worker (never orphan a process).
    let (cmd_tx, cmd_rx) = mpsc::channel::<String>();
    std::thread::Builder::new()
        .name("fleet-stdin".into())
        .spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                if cmd_tx.send(line).is_err() {
                    return;
                }
            }
            let _ = cmd_tx.send(CMD_STOP.to_string());
        })
        .expect("spawn stdin reader");

    let beat = Duration::from_millis(args.hb_ms.max(1));
    let mut seq = 0u64;
    loop {
        match cmd_rx.recv_timeout(beat) {
            Ok(cmd) if cmd == CMD_STOP => break,
            Ok(cmd) if cmd == CMD_DRAIN => {
                for (tenant, gateway) in &gateways {
                    let live = gateway.drain().len() as u64;
                    say(&format!("DRAINING {tenant} {live}"));
                }
            }
            Ok(other) => eprintln!("fleet_worker: ignoring unknown command {other:?}"),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                say(&format!("HB {seq}"));
                seq += 1;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }

    // Shutdown: one REPORT block per tenant, then BYE. The report
    // codec's `end` line frames each block for the supervisor.
    for (tenant, gateway) in gateways {
        let report = gateway.shutdown();
        let mut block = format!("REPORT {tenant}\n");
        block.push_str(&report.encode_wire());
        // One write for the whole block keeps a concurrent HB from
        // ever splitting a report (there is none by now, but cheap).
        let mut out = std::io::stdout().lock();
        let _ = out.write_all(block.as_bytes());
        let _ = out.flush();
    }
    say("BYE");
}
