//! Property-based tests for the wire codec: every frame type
//! round-trips bit-exactly through the checksummed envelope, and no
//! mangled input — truncated, corrupted, oversized or plain random —
//! ever produces anything but a typed [`DecodeError`]. The decoder
//! sits on the network boundary; these properties are the crate's
//! "no panics on attacker-controlled bytes" contract.

use occusense_dataset::CsiRecord;
use occusense_wire::{
    decode_frame, BatchFrame, DecodeError, EncodeError, Encoder, Frame, Goodbye, Hello, HelloAck,
    NackFrame, NackReason, PredictionFrame, RecordFrame, DEFAULT_MAX_PAYLOAD, HEADER_BYTES,
    MAX_BATCH_RECORDS, MAX_SENSOR_ID_BYTES, PROTOCOL_VERSION,
};
use proptest::prelude::*;

/// A record whose every `f64` comes from raw bits, so NaNs, infinities,
/// subnormals and -0.0 all flow through the codec.
fn record_from_bits(bits: &[u64], occupants: u8) -> CsiRecord {
    let f = |i: usize| f64::from_bits(bits.get(i).copied().unwrap_or(0));
    let mut csi = [0.0f64; 64];
    for (i, a) in csi.iter_mut().enumerate() {
        *a = f(i + 1);
    }
    CsiRecord::new(f(0), csi, f(65), f(66), occupants)
}

/// Encodes, decodes, re-encodes, and asserts the two encodings are
/// byte-identical. Byte comparison (rather than `PartialEq` on the
/// frames) is deliberate: the codec is canonical, so bitwise equality
/// of encodings *is* bitwise equality of frames — including NaN
/// payloads, which `f64::eq` would wrongly report as unequal.
fn assert_roundtrip(frame: &Frame) {
    let bytes = Encoder::default().encode(frame).expect("encodable frame");
    let (decoded, consumed) =
        decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).expect("valid frame must decode");
    assert_eq!(
        consumed,
        bytes.len(),
        "decoder must consume the whole envelope"
    );
    assert_eq!(
        Encoder::default()
            .encode(&decoded)
            .expect("encodable frame"),
        bytes,
        "re-encoding the decoded frame must reproduce the wire bytes"
    );
}

proptest! {
    #[test]
    fn record_frames_round_trip_bitwise(
        seq in 0u64..=u64::MAX,
        bits in prop::collection::vec(0u64..=u64::MAX, 67..68),
        labelled in 0u8..2,
        label in 0u8..7,
        occupants in 0u8..7,
    ) {
        let frame = Frame::Record(RecordFrame {
            seq,
            label: (labelled == 1).then_some(label),
            record: record_from_bits(&bits, occupants),
        });
        assert_roundtrip(&frame);
    }

    #[test]
    fn batch_frames_round_trip_bitwise(
        first_seq in 0u64..=u64::MAX,
        all_bits in prop::collection::vec(0u64..=u64::MAX, 0..(67 * 12)),
        labels in prop::collection::vec((0u8..2, 0u8..7), 12..13),
    ) {
        let records: Vec<(CsiRecord, Option<u8>)> = all_bits
            .chunks_exact(67)
            .zip(&labels)
            .map(|(bits, &(labelled, label))| {
                (record_from_bits(bits, label), (labelled == 1).then_some(label))
            })
            .collect();
        prop_assert!(records.len() <= MAX_BATCH_RECORDS);
        let frame = Frame::Batch(BatchFrame { first_seq, records });
        assert_roundtrip(&frame);
    }

    #[test]
    fn control_frames_round_trip(
        id_bytes in prop::collection::vec(97u8..123, 0..64),
        tenant_bytes in prop::collection::vec(97u8..123, 0..64),
        shard in 0u32..=u32::MAX,
        seq in 0u64..=u64::MAX,
        numbers in prop::collection::vec(0u64..=u64::MAX, 4..5),
        reason_byte in 1u8..5,
    ) {
        let sensor_id = String::from_utf8(id_bytes).expect("ascii");
        let tenant = String::from_utf8(tenant_bytes).expect("ascii");
        let reason = NackReason::from_byte(reason_byte).expect("1..=4 are all valid reasons");
        let n = |i: usize| numbers.get(i).copied().unwrap_or(0);
        let frames = [
            Frame::Hello(Hello { protocol: PROTOCOL_VERSION, sensor_id, tenant }),
            Frame::HelloAck(HelloAck { protocol: PROTOCOL_VERSION, shard }),
            Frame::Prediction(PredictionFrame {
                seq,
                timestamp_s: f64::from_bits(n(0)),
                occupied: (n(1) % 2) as u8,
                proba: f64::from_bits(n(2)),
                model_version: u64::from(shard),
                latency_ns: n(3),
            }),
            Frame::Nack(NackFrame { seq, reason }),
            Frame::Goodbye(Goodbye { count: n(0) }),
        ];
        for frame in frames {
            assert_roundtrip(&frame);
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error_never_a_panic(
        seq in 0u64..=u64::MAX,
        bits in prop::collection::vec(0u64..=u64::MAX, 67..68),
        cut_fraction in 0.0f64..1.0,
    ) {
        let frame = Frame::Record(RecordFrame {
            seq,
            label: Some(1),
            record: record_from_bits(&bits, 1),
        });
        let bytes = Encoder::default().encode(&frame).expect("encode");
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assert!(cut < bytes.len());
        let err = decode_frame(&bytes[..cut], DEFAULT_MAX_PAYLOAD)
            .expect_err("every strict prefix must fail to decode");
        prop_assert!(
            matches!(err, DecodeError::Truncated { .. }),
            "prefix of {cut} bytes gave {err:?}"
        );
    }

    #[test]
    fn single_byte_corruption_is_a_typed_error_never_a_panic(
        seq in 0u64..=u64::MAX,
        bits in prop::collection::vec(0u64..=u64::MAX, 67..68),
        index_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let frame = Frame::Record(RecordFrame {
            seq,
            label: None,
            record: record_from_bits(&bits, 2),
        });
        let mut bytes = Encoder::default().encode(&frame).expect("encode");
        let index = ((bytes.len() as f64) * index_fraction) as usize;
        if let Some(byte) = bytes.get_mut(index) {
            *byte ^= flip;
        }
        // Any corruption must surface as *some* typed error — the
        // decoder may never panic and may never silently accept a frame
        // whose payload bytes changed.
        match decode_frame(&bytes, DEFAULT_MAX_PAYLOAD) {
            Err(_) => {}
            Ok(_) => {
                // A flip confined to the length field's high bytes can
                // only ever *grow* the declared length (and then fails
                // as Truncated/Oversize above), so reaching Ok means
                // the flip must have been repaired — impossible.
                prop_assert!(false, "corrupt frame decoded at index {index} flip {flip:#x}");
            }
        }
        if index >= HEADER_BYTES {
            let err = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).expect_err("payload corruption");
            prop_assert!(
                matches!(err, DecodeError::ChecksumMismatch { .. }),
                "payload corruption at {index} gave {err:?}"
            );
        }
    }

    #[test]
    fn declared_oversize_is_refused_before_buffering(
        seq in 0u64..=u64::MAX,
        max_payload in 1usize..32,
    ) {
        // A frame whose payload exceeds the negotiated cap must be
        // refused from the header alone with the typed Oversize error.
        let frame = Frame::Nack(NackFrame { seq, reason: NackReason::QueueFull });
        let bytes = Encoder::default().encode(&frame).expect("encode");
        let err = decode_frame(&bytes, max_payload.min(8)).expect_err("cap below payload size");
        prop_assert!(matches!(err, DecodeError::Oversize { .. }), "{err:?}");
    }

    #[test]
    fn oversize_sensor_ids_are_refused_not_truncated(
        extra in 1usize..256,
        fill in 97u8..123,
    ) {
        // Before the fallible encoder this silently truncated the id
        // at MAX_SENSOR_ID_BYTES — a Hello for sensor "office-<long>"
        // would register and route as a *different* sensor.
        let sensor_id = String::from_utf8(vec![fill; MAX_SENSOR_ID_BYTES + extra])
            .expect("ascii fill");
        let frame = Frame::Hello(Hello { protocol: PROTOCOL_VERSION, sensor_id, tenant: String::new() });
        let err = Encoder::default()
            .encode(&frame)
            .expect_err("oversize id must refuse, not truncate");
        prop_assert!(
            matches!(err, EncodeError::SensorIdTooLong { len } if len == MAX_SENSOR_ID_BYTES + extra),
            "{err:?}"
        );
        // The refusal happens before any byte is emitted.
        let mut out = vec![0xAA; 4];
        let err2 = Encoder::default().encode_into(&frame, &mut out).expect_err("same refusal");
        prop_assert_eq!(err, err2);
        prop_assert_eq!(&out, &vec![0xAA; 4], "output buffer must be untouched on error");
    }

    #[test]
    fn boundary_sensor_ids_still_encode(len in 0usize..=MAX_SENSOR_ID_BYTES) {
        let sensor_id = String::from_utf8(vec![b'x'; len]).expect("ascii fill");
        let frame = Frame::Hello(Hello { protocol: PROTOCOL_VERSION, sensor_id, tenant: String::new() });
        assert_roundtrip(&frame);
    }

    #[test]
    fn oversize_batches_are_refused_not_silently_dropped(
        extra in 1usize..32,
        bits in prop::collection::vec(0u64..=u64::MAX, 67..68),
    ) {
        // Before the fallible encoder this silently *dropped* every
        // record past MAX_BATCH_RECORDS: the sender believed them
        // delivered, the accounting identity never saw them.
        let record = record_from_bits(&bits, 1);
        let count = MAX_BATCH_RECORDS + extra;
        let frame = Frame::Batch(BatchFrame {
            first_seq: 0,
            records: vec![(record, None); count],
        });
        let err = Encoder::default()
            .encode(&frame)
            .expect_err("oversize batch must refuse, not drop records");
        prop_assert!(
            matches!(err, EncodeError::BatchTooLarge { count: c } if c == count),
            "{err:?}"
        );
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(
        junk in prop::collection::vec(0u8..=255, 0..256),
    ) {
        // No assertion on the outcome beyond "returns": arbitrary bytes
        // must yield Ok or a typed error, never a panic. (A random
        // 20-byte magic+version+flags+checksum collision is beyond
        // astronomically unlikely, but Ok would still be within
        // contract.)
        if let Ok((_, consumed)) = decode_frame(&junk, DEFAULT_MAX_PAYLOAD) {
            prop_assert!(consumed <= junk.len());
        }
    }
}
