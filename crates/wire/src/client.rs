//! The sensor-side client library: handshake, sequenced sending,
//! prediction/NACK reception.
//!
//! [`connect`] performs the `Hello → HelloAck` handshake on any
//! [`Connection`] (loopback or TCP) and returns independently owned
//! sender/receiver halves, so a sensor can stream records from one
//! thread while a second thread consumes predictions — the shape
//! `wire_storm` uses for every simulated sensor.

use crate::codec::{
    BatchFrame, Frame, Goodbye, Hello, NackFrame, PredictionFrame, RecordFrame, MAX_BATCH_RECORDS,
    PROTOCOL_VERSION,
};
use crate::transport::{Connection, FrameSink, FrameSource, RecvOutcome};
use crate::WireError;
use occusense_dataset::CsiRecord;
use std::time::{Duration, Instant};

/// Performs the client side of the handshake and splits the
/// connection.
///
/// # Errors
///
/// [`WireError::HandshakeTimeout`] when no `HelloAck` arrives within
/// `handshake_timeout`; [`WireError::Refused`] when the gateway
/// answers with a NACK (e.g. protocol version mismatch);
/// [`WireError::Transport`] on connection failures.
pub fn connect(
    conn: Box<dyn Connection>,
    sensor_id: &str,
    handshake_timeout: Duration,
) -> Result<(WireSender, WireReceiver), WireError> {
    connect_tenant(conn, "", sensor_id, handshake_timeout)
}

/// [`connect`] with an explicit tenant claim in the `Hello`. A gateway
/// serving a specific tenant refuses mismatched claims with an
/// `Unsupported` NACK ([`WireError::Refused`]); the empty tenant is
/// the default namespace, making this a strict superset of [`connect`].
///
/// # Errors
///
/// As [`connect`], plus [`WireError::Refused`] on a tenant mismatch.
pub fn connect_tenant(
    conn: Box<dyn Connection>,
    tenant: &str,
    sensor_id: &str,
    handshake_timeout: Duration,
) -> Result<(WireSender, WireReceiver), WireError> {
    let (mut sink, mut source) = conn.split();
    sink.send(&Frame::Hello(Hello {
        protocol: PROTOCOL_VERSION,
        sensor_id: sensor_id.to_string(),
        tenant: tenant.to_string(),
    }))
    .map_err(WireError::Transport)?;
    let deadline = Instant::now() + handshake_timeout;
    loop {
        match source.recv().map_err(WireError::Transport)? {
            RecvOutcome::Frame(Frame::HelloAck(ack)) => {
                return Ok((
                    WireSender {
                        sink,
                        next_seq: 0,
                        sent: 0,
                    },
                    WireReceiver {
                        source,
                        shard: ack.shard,
                    },
                ));
            }
            RecvOutcome::Frame(Frame::Nack(n)) => return Err(WireError::Refused(n.reason)),
            RecvOutcome::Frame(f) => {
                return Err(WireError::Protocol(format!(
                    "expected HelloAck, got {}",
                    f.type_name()
                )))
            }
            RecvOutcome::TimedOut => {
                if Instant::now() >= deadline {
                    return Err(WireError::HandshakeTimeout);
                }
            }
            RecvOutcome::Closed => {
                return Err(WireError::Protocol(
                    "gateway closed during handshake".to_string(),
                ))
            }
        }
    }
}

/// The sending half: numbers every record with a strictly increasing
/// per-connection sequence, singles and batches alike, so seq `k`
/// always names the `k`-th record sent on this connection.
pub struct WireSender {
    sink: Box<dyn FrameSink>,
    next_seq: u64,
    sent: u64,
}

impl WireSender {
    /// The sequence number the next record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Sends one record; returns the sequence number it carried.
    ///
    /// # Errors
    ///
    /// [`WireError::Transport`] — fatal for the connection.
    pub fn send(&mut self, record: CsiRecord, label: Option<u8>) -> Result<u64, WireError> {
        let seq = self.next_seq;
        self.sink
            .send(&Frame::Record(RecordFrame { seq, label, record }))
            .map_err(WireError::Transport)?;
        self.next_seq += 1;
        self.sent += 1;
        Ok(seq)
    }

    /// Sends a run of records as one or more `Batch` frames (chunked
    /// at [`MAX_BATCH_RECORDS`]); returns the first sequence number.
    ///
    /// # Errors
    ///
    /// [`WireError::Transport`] — fatal for the connection.
    pub fn send_batch(&mut self, records: &[(CsiRecord, Option<u8>)]) -> Result<u64, WireError> {
        let first = self.next_seq;
        for chunk in records.chunks(MAX_BATCH_RECORDS.max(1)) {
            self.sink
                .send(&Frame::Batch(BatchFrame {
                    first_seq: self.next_seq,
                    records: chunk.to_vec(),
                }))
                .map_err(WireError::Transport)?;
            self.next_seq += chunk.len() as u64;
            self.sent += chunk.len() as u64;
        }
        Ok(first)
    }

    /// Announces an orderly end-of-stream (`Goodbye` with the sent
    /// count) and consumes the sender; returns how many records were
    /// sent.
    ///
    /// # Errors
    ///
    /// [`WireError::Transport`] — the goodbye could not be written.
    pub fn finish(mut self) -> Result<u64, WireError> {
        self.sink
            .send(&Frame::Goodbye(Goodbye { count: self.sent }))
            .map_err(WireError::Transport)?;
        Ok(self.sent)
    }
}

/// One server→client event.
#[derive(Debug)]
pub enum ClientEvent {
    /// A scored record.
    Prediction(PredictionFrame),
    /// An explicit per-record refusal.
    Nack(NackFrame),
    /// The gateway's end-of-stream (predictions delivered count).
    Goodbye(u64),
    /// Nothing within the read timeout; poll again.
    TimedOut,
    /// The gateway closed the connection.
    Closed,
}

/// The receiving half: predictions, NACKs and the server goodbye.
pub struct WireReceiver {
    source: Box<dyn FrameSource>,
    shard: u32,
}

impl WireReceiver {
    /// The worker shard the gateway routed this sensor to.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Waits up to the transport's read timeout for the next event.
    ///
    /// # Errors
    ///
    /// [`WireError::Transport`] on stream corruption or I/O failure;
    /// [`WireError::Protocol`] when the gateway sends a client-role
    /// frame.
    pub fn recv(&mut self) -> Result<ClientEvent, WireError> {
        match self.source.recv().map_err(WireError::Transport)? {
            RecvOutcome::Frame(Frame::Prediction(p)) => Ok(ClientEvent::Prediction(p)),
            RecvOutcome::Frame(Frame::Nack(n)) => Ok(ClientEvent::Nack(n)),
            RecvOutcome::Frame(Frame::Goodbye(g)) => Ok(ClientEvent::Goodbye(g.count)),
            RecvOutcome::Frame(f) => Err(WireError::Protocol(format!(
                "unexpected {} frame from the gateway",
                f.type_name()
            ))),
            RecvOutcome::TimedOut => Ok(ClientEvent::TimedOut),
            RecvOutcome::Closed => Ok(ClientEvent::Closed),
        }
    }
}
