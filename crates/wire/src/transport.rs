//! Transport abstraction: how framed bytes move between a sensor and
//! the gateway.
//!
//! Two implementations share the [`Connection`] / [`Acceptor`] traits:
//!
//! * **loopback** — in-process bounded byte pipes (see
//!   [`crate::pipe`]). The full codec + envelope runs on both ends (so
//!   checksums, framing *and* partial-frame reassembly are exercised),
//!   delivery is deterministic, the ring gives real backpressure, and
//!   no per-frame allocation happens in the transport itself — the
//!   right substrate for tests and the committed benchmark baseline.
//! * **TCP** — a std-only `TcpStream` transport with per-connection
//!   read/write timeouts, a max-frame-size limit enforced *before*
//!   buffering the payload, and an incremental reader that preserves
//!   partial frames across read timeouts (a slow sensor on a congested
//!   link resumes mid-frame, it does not desynchronise).
//!
//! Each connection offers two faces:
//!
//! * [`Connection::split`] — blocking, independently owned
//!   [`FrameSink`] / [`FrameSource`] halves for client threads;
//! * [`Connection::into_poll`] — a non-blocking [`PollConn`] for the
//!   gateway's readiness reactor, exposing raw byte reads and vectored
//!   writes that never park a thread.

use crate::codec::{DecodeError, EncodeError, Frame};
use crate::frame::{decode_frame, decode_header, Encoder, DEFAULT_MAX_PAYLOAD, HEADER_BYTES};
use crate::pipe::{self, PipeReader, PipeWriter, TryRead, TryWrite};
use std::error::Error;
use std::fmt;
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::Duration;

/// Why a transport operation failed. Transport errors are fatal for
/// their connection: a failed send may have written a partial frame,
/// and a failed decode means the byte stream is desynchronised — the
/// only safe continuation is to close.
#[derive(Debug)]
pub enum TransportError {
    /// An OS-level I/O failure.
    Io {
        /// What the transport was doing.
        context: &'static str,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The peer's bytes failed to frame or decode.
    Decode(DecodeError),
    /// A frame refused to encode (a protocol bound was exceeded).
    /// Nothing was written to the wire, but the caller was about to
    /// violate its sequencing contract, so the connection should close.
    Encode(EncodeError),
    /// The peer went away mid-conversation (EOF inside a frame, or a
    /// closed in-process channel).
    Disconnected {
        /// Where the disconnect surfaced.
        context: &'static str,
    },
    /// A send could not complete within the connection's write
    /// timeout. The frame may be partially written; the connection
    /// must be closed.
    SendTimeout,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io { context, error } => {
                write!(f, "transport i/o ({context}): {error}")
            }
            TransportError::Decode(e) => write!(f, "transport decode: {e}"),
            TransportError::Encode(e) => write!(f, "transport encode: {e}"),
            TransportError::Disconnected { context } => {
                write!(f, "peer disconnected ({context})")
            }
            TransportError::SendTimeout => write!(f, "send timed out; connection unusable"),
        }
    }
}

impl Error for TransportError {}

impl From<DecodeError> for TransportError {
    fn from(e: DecodeError) -> Self {
        TransportError::Decode(e)
    }
}

impl From<EncodeError> for TransportError {
    fn from(e: EncodeError) -> Self {
        TransportError::Encode(e)
    }
}

/// What a bounded-wait receive produced.
// Inline for the same reason as `Frame`: no per-record allocation on
// the receive path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum RecvOutcome {
    /// One complete, checksum-verified frame.
    Frame(Frame),
    /// Nothing arrived within the read timeout; the connection is
    /// still healthy — poll again.
    TimedOut,
    /// The peer closed the connection cleanly (EOF between frames).
    Closed,
}

/// The sending half of a connection.
pub trait FrameSink: Send {
    /// Encodes and transmits one frame.
    ///
    /// # Errors
    ///
    /// Any [`TransportError`]; all of them are fatal for the
    /// connection (see the type's docs).
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError>;
}

/// The receiving half of a connection.
pub trait FrameSource: Send {
    /// Waits up to the connection's read timeout for the next frame.
    ///
    /// # Errors
    ///
    /// [`TransportError::Decode`] when the byte stream is corrupt
    /// (fatal — the stream cannot be resynchronised), I/O errors
    /// otherwise. A timeout is *not* an error: it comes back as
    /// [`RecvOutcome::TimedOut`].
    fn recv(&mut self) -> Result<RecvOutcome, TransportError>;
}

/// What a non-blocking read observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollRead {
    /// `n > 0` bytes landed in the caller's buffer.
    Data(usize),
    /// Nothing available right now; poll again later.
    WouldBlock,
    /// The peer closed its sending side (clean EOF).
    Eof,
}

/// What a non-blocking vectored write observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollWrite {
    /// `n > 0` bytes were accepted (possibly fewer than offered).
    Wrote(usize),
    /// The peer's buffer is full; retry after it drains.
    WouldBlock,
}

/// The non-blocking face of a connection, driven by the gateway's
/// readiness reactor: raw byte reads and vectored writes that never
/// park the calling thread.
pub trait PollConn: Send {
    /// Reads whatever bytes are available into `buf` without blocking.
    ///
    /// # Errors
    ///
    /// Any fatal [`TransportError`]; a momentarily-empty peer is
    /// [`PollRead::WouldBlock`], not an error.
    fn poll_read(&mut self, buf: &mut [u8]) -> Result<PollRead, TransportError>;

    /// Writes as much of `bufs` as the peer will take without
    /// blocking. Partial writes are normal; the caller tracks its
    /// offset.
    ///
    /// # Errors
    ///
    /// Any fatal [`TransportError`]; a momentarily-full peer is
    /// [`PollWrite::WouldBlock`], not an error.
    fn poll_write(&mut self, bufs: &[IoSlice<'_>]) -> Result<PollWrite, TransportError>;

    /// A human-readable peer description (diagnostics only).
    fn peer(&self) -> String;
}

/// One established sensor↔gateway connection, not yet split.
pub trait Connection: Send {
    /// Splits the connection into independently owned blocking halves.
    fn split(self: Box<Self>) -> (Box<dyn FrameSink>, Box<dyn FrameSource>);

    /// Converts the connection into its non-blocking [`PollConn`]
    /// face for the readiness reactor.
    ///
    /// # Errors
    ///
    /// Any I/O failure while reconfiguring the underlying socket.
    fn into_poll(self: Box<Self>) -> Result<Box<dyn PollConn>, TransportError>;

    /// A human-readable peer description (diagnostics only).
    fn peer(&self) -> String;
}

/// What one bounded-wait accept produced.
pub enum Accepted {
    /// A new connection.
    Connection(Box<dyn Connection>),
    /// No connection arrived within the accept timeout; poll again.
    TimedOut,
    /// The connector side is gone; no further connections can arrive.
    Closed,
}

/// The listening side of a transport, handed to the gateway.
pub trait Acceptor: Send {
    /// Waits up to the transport's accept timeout for one connection.
    ///
    /// # Errors
    ///
    /// Any [`TransportError`] on the listener itself (not on an
    /// individual connection).
    fn accept(&mut self) -> Result<Accepted, TransportError>;
}

// ---------------------------------------------------------------------
// Generic framed halves over any blocking byte stream
// ---------------------------------------------------------------------
//
// `TcpStream` (with socket timeouts) and the pipe halves (with their
// built-in timeout) expose the same blocking `Read`/`Write` shape, so
// one framed sink and one incremental framed source serve both
// transports — the loopback no longer has a separate, weaker framing
// path.

fn map_write_err(error: std::io::Error, context: &'static str) -> TransportError {
    match error.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportError::SendTimeout,
        ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted => {
            TransportError::Disconnected { context }
        }
        _ => TransportError::Io { context, error },
    }
}

struct StreamSink<W: Write + Send> {
    stream: W,
    encoder: Encoder,
    buf: Vec<u8>,
    context: &'static str,
}

impl<W: Write + Send> StreamSink<W> {
    fn new(stream: W, context: &'static str) -> Self {
        Self {
            stream,
            encoder: Encoder::new(),
            buf: Vec::new(),
            context,
        }
    }
}

impl<W: Write + Send> FrameSink for StreamSink<W> {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.buf.clear();
        self.encoder.encode_into(frame, &mut self.buf)?;
        self.stream
            .write_all(&self.buf)
            .map_err(|e| map_write_err(e, self.context))
    }
}

/// Incremental frame reader: reads the 20-byte header, learns the
/// payload length (refusing oversize frames before buffering them),
/// then reads exactly the payload. `filled` persists across timeouts,
/// so a frame split across many reads reassembles correctly.
struct StreamSource<R: Read + Send> {
    stream: R,
    buf: Vec<u8>,
    filled: usize,
    payload_len: Option<usize>,
    max_payload: usize,
    context: &'static str,
}

impl<R: Read + Send> StreamSource<R> {
    fn new(stream: R, max_payload: usize, context: &'static str) -> Self {
        Self {
            stream,
            buf: Vec::new(),
            filled: 0,
            payload_len: None,
            max_payload,
            context,
        }
    }
}

impl<R: Read + Send> FrameSource for StreamSource<R> {
    fn recv(&mut self) -> Result<RecvOutcome, TransportError> {
        loop {
            let target = match self.payload_len {
                None => HEADER_BYTES,
                Some(len) => HEADER_BYTES + len,
            };
            if self.filled < target {
                if self.buf.len() < target {
                    self.buf.resize(target, 0);
                }
                let Some(dst) = self.buf.get_mut(self.filled..target) else {
                    // filled < target ≤ buf.len() by the resize above.
                    return Err(TransportError::Disconnected {
                        context: self.context,
                    });
                };
                match self.stream.read(dst) {
                    Ok(0) => {
                        return if self.filled == 0 {
                            Ok(RecvOutcome::Closed)
                        } else {
                            Err(TransportError::Disconnected {
                                context: "eof inside a frame",
                            })
                        };
                    }
                    Ok(n) => {
                        self.filled += n;
                        continue;
                    }
                    Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                        return Ok(RecvOutcome::TimedOut);
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(error) => {
                        return Err(TransportError::Io {
                            context: self.context,
                            error,
                        });
                    }
                }
            }
            if self.payload_len.is_none() {
                let header = decode_header(&self.buf)?;
                if header.payload_len > self.max_payload {
                    return Err(DecodeError::Oversize {
                        len: header.payload_len,
                        max: self.max_payload,
                    }
                    .into());
                }
                self.payload_len = Some(header.payload_len);
                continue;
            }
            // Header + payload complete: decode, verify, reset.
            let frame_bytes = self.buf.get(..target).ok_or(TransportError::Disconnected {
                context: self.context,
            })?;
            let (frame, _consumed) = decode_frame(frame_bytes, self.max_payload)?;
            self.filled = 0;
            self.payload_len = None;
            return Ok(RecvOutcome::Frame(frame));
        }
    }
}

// ---------------------------------------------------------------------
// Loopback
// ---------------------------------------------------------------------

/// Loopback tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct LoopbackConfig {
    /// How long a `recv` waits before reporting `TimedOut`.
    pub recv_timeout: Duration,
    /// How long a blocking `send` waits for ring space before failing
    /// with [`TransportError::SendTimeout`] — the loopback face of a
    /// sensor that stopped reading.
    pub send_timeout: Duration,
    /// How long an `accept` waits before reporting `TimedOut`.
    pub accept_timeout: Duration,
    /// Per-frame payload ceiling (same meaning as on TCP).
    pub max_payload: usize,
    /// Byte capacity of each direction's ring buffer; bounds how far a
    /// fast writer can run ahead of a slow reader.
    pub pipe_capacity: usize,
}

impl Default for LoopbackConfig {
    fn default() -> Self {
        Self {
            recv_timeout: Duration::from_millis(50),
            send_timeout: Duration::from_secs(2),
            accept_timeout: Duration::from_millis(50),
            max_payload: DEFAULT_MAX_PAYLOAD,
            pipe_capacity: pipe::DEFAULT_PIPE_CAPACITY,
        }
    }
}

/// Creates an in-process transport: the [`LoopbackAcceptor`] goes to
/// the gateway, the cloneable [`LoopbackConnector`] to any number of
/// client threads.
pub fn loopback(config: LoopbackConfig) -> (LoopbackAcceptor, LoopbackConnector) {
    let (tx, rx) = mpsc::channel();
    (
        LoopbackAcceptor { rx, config },
        LoopbackConnector { tx, config },
    )
}

/// One side of a loopback connection: a byte-pipe reader paired with a
/// byte-pipe writer, running the full framing stack on both ends.
struct LoopbackConn {
    tx: PipeWriter,
    rx: PipeReader,
    config: LoopbackConfig,
    peer: &'static str,
}

impl Connection for LoopbackConn {
    fn split(self: Box<Self>) -> (Box<dyn FrameSink>, Box<dyn FrameSource>) {
        (
            Box::new(StreamSink::new(self.tx, "loopback send")),
            Box::new(StreamSource::new(
                self.rx,
                self.config.max_payload,
                "loopback recv",
            )),
        )
    }

    fn into_poll(self: Box<Self>) -> Result<Box<dyn PollConn>, TransportError> {
        Ok(Box::new(PipePoll {
            tx: self.tx,
            rx: self.rx,
            peer: self.peer,
        }))
    }

    fn peer(&self) -> String {
        self.peer.to_string()
    }
}

/// Non-blocking face of a loopback connection.
struct PipePoll {
    tx: PipeWriter,
    rx: PipeReader,
    peer: &'static str,
}

impl PollConn for PipePoll {
    fn poll_read(&mut self, buf: &mut [u8]) -> Result<PollRead, TransportError> {
        Ok(match self.rx.try_read(buf) {
            TryRead::Read(n) => PollRead::Data(n),
            TryRead::Empty => PollRead::WouldBlock,
            TryRead::Eof => PollRead::Eof,
        })
    }

    fn poll_write(&mut self, bufs: &[IoSlice<'_>]) -> Result<PollWrite, TransportError> {
        match self.tx.try_write_vectored(bufs) {
            TryWrite::Wrote(n) => Ok(PollWrite::Wrote(n)),
            TryWrite::Full => Ok(PollWrite::WouldBlock),
            TryWrite::Closed => Err(TransportError::Disconnected {
                context: "loopback poll write",
            }),
        }
    }

    fn peer(&self) -> String {
        self.peer.to_string()
    }
}

/// The gateway's end of a loopback transport.
pub struct LoopbackAcceptor {
    rx: mpsc::Receiver<LoopbackConn>,
    config: LoopbackConfig,
}

impl Acceptor for LoopbackAcceptor {
    fn accept(&mut self) -> Result<Accepted, TransportError> {
        match self.rx.recv_timeout(self.config.accept_timeout) {
            Ok(conn) => Ok(Accepted::Connection(Box::new(conn))),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(Accepted::TimedOut),
            Err(mpsc::RecvTimeoutError::Disconnected) => Ok(Accepted::Closed),
        }
    }
}

/// The client-side factory of a loopback transport. Cloneable: hand a
/// copy to every simulated sensor thread.
#[derive(Clone)]
pub struct LoopbackConnector {
    tx: mpsc::Sender<LoopbackConn>,
    config: LoopbackConfig,
}

impl LoopbackConnector {
    /// Establishes one connection to the acceptor.
    ///
    /// # Errors
    ///
    /// [`TransportError::Disconnected`] when the acceptor is gone.
    pub fn connect(&self) -> Result<Box<dyn Connection>, TransportError> {
        // Blocking reads on the client half use the recv timeout;
        // blocking writes on either half use the send timeout. The
        // gateway half is polled non-blocking, where timeouts are moot.
        let (c2s_tx, c2s_rx) = pipe::pipe(self.config.pipe_capacity, self.config.send_timeout);
        let (s2c_tx, s2c_rx) = pipe::pipe(self.config.pipe_capacity, self.config.send_timeout);
        let mut client_rx = s2c_rx;
        client_rx.set_timeout(self.config.recv_timeout);
        let mut server_rx = c2s_rx;
        server_rx.set_timeout(self.config.recv_timeout);
        let server = LoopbackConn {
            tx: s2c_tx,
            rx: server_rx,
            config: self.config,
            peer: "loopback-client",
        };
        let client = LoopbackConn {
            tx: c2s_tx,
            rx: client_rx,
            config: self.config,
            peer: "loopback-gateway",
        };
        self.tx
            .send(server)
            .map_err(|_| TransportError::Disconnected {
                context: "loopback connect",
            })?;
        Ok(Box::new(client))
    }
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

/// TCP tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Socket read timeout; bounds how long `recv` blocks and how
    /// stale a shutdown check can get.
    pub read_timeout: Duration,
    /// Socket write timeout; a sensor that stops reading for this long
    /// gets its connection dropped (the slow-client policy decides
    /// what happened to its predictions *before* this last resort).
    pub write_timeout: Duration,
    /// Per-frame payload ceiling, enforced from the header before any
    /// payload bytes are buffered.
    pub max_payload: usize,
    /// Disable Nagle's algorithm (on by default: single-record frames
    /// are latency-sensitive).
    pub nodelay: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(2),
            max_payload: DEFAULT_MAX_PAYLOAD,
            nodelay: true,
        }
    }
}

fn io_err(context: &'static str) -> impl FnOnce(std::io::Error) -> TransportError {
    move |error| TransportError::Io { context, error }
}

/// Binds a listener and returns the acceptor plus the actual local
/// address (useful with a `:0` ephemeral port).
///
/// # Errors
///
/// Any I/O failure while binding or configuring the listener.
pub fn tcp_listen(
    addr: &str,
    config: TcpConfig,
) -> Result<(TcpAcceptor, SocketAddr), TransportError> {
    let listener = TcpListener::bind(addr).map_err(io_err("bind"))?;
    listener
        .set_nonblocking(true)
        .map_err(io_err("listener nonblocking"))?;
    let local = listener.local_addr().map_err(io_err("local addr"))?;
    Ok((
        TcpAcceptor {
            listener,
            config,
            poll: Duration::from_millis(10),
        },
        local,
    ))
}

/// Connects to a gateway listener.
///
/// # Errors
///
/// Any I/O failure while connecting or configuring the socket.
pub fn tcp_connect(addr: &str, config: TcpConfig) -> Result<Box<dyn Connection>, TransportError> {
    let stream = TcpStream::connect(addr).map_err(io_err("connect"))?;
    Ok(Box::new(TcpConn::from_stream(stream, config)?))
}

/// The gateway's end of a TCP transport. The listener runs
/// non-blocking with a short sleep poll, so `accept` observes gateway
/// shutdown within one poll interval.
pub struct TcpAcceptor {
    listener: TcpListener,
    config: TcpConfig,
    poll: Duration,
}

impl Acceptor for TcpAcceptor {
    fn accept(&mut self) -> Result<Accepted, TransportError> {
        match self.listener.accept() {
            Ok((stream, _peer)) => Ok(Accepted::Connection(Box::new(TcpConn::from_stream(
                stream,
                self.config,
            )?))),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(self.poll);
                Ok(Accepted::TimedOut)
            }
            Err(error) => Err(TransportError::Io {
                context: "accept",
                error,
            }),
        }
    }
}

/// One TCP connection, holding two clones of the socket so the halves
/// split without locks.
pub struct TcpConn {
    read: TcpStream,
    write: TcpStream,
    peer: String,
    config: TcpConfig,
}

impl TcpConn {
    fn from_stream(stream: TcpStream, config: TcpConfig) -> Result<Self, TransportError> {
        stream
            .set_nodelay(config.nodelay)
            .map_err(io_err("nodelay"))?;
        // A zero Duration means "no timeout" to the socket API — clamp
        // so the configured bound is always a real bound.
        let read_to = config.read_timeout.max(Duration::from_millis(1));
        let write_to = config.write_timeout.max(Duration::from_millis(1));
        stream
            .set_read_timeout(Some(read_to))
            .map_err(io_err("read timeout"))?;
        stream
            .set_write_timeout(Some(write_to))
            .map_err(io_err("write timeout"))?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp-unknown".to_string());
        let write = stream.try_clone().map_err(io_err("clone stream"))?;
        Ok(Self {
            read: stream,
            write,
            peer,
            config,
        })
    }
}

impl Connection for TcpConn {
    fn split(self: Box<Self>) -> (Box<dyn FrameSink>, Box<dyn FrameSource>) {
        (
            Box::new(StreamSink::new(self.write, "tcp send")),
            Box::new(StreamSource::new(
                self.read,
                self.config.max_payload,
                "tcp recv",
            )),
        )
    }

    fn into_poll(self: Box<Self>) -> Result<Box<dyn PollConn>, TransportError> {
        // One nonblocking socket serves both directions in the
        // reactor; the write clone is dropped (same file description,
        // so nonblocking applies to the socket as a whole).
        self.read
            .set_nonblocking(true)
            .map_err(io_err("set nonblocking"))?;
        Ok(Box::new(TcpPoll {
            stream: self.read,
            peer: self.peer,
        }))
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// Non-blocking face of a TCP connection.
struct TcpPoll {
    stream: TcpStream,
    peer: String,
}

impl PollConn for TcpPoll {
    fn poll_read(&mut self, buf: &mut [u8]) -> Result<PollRead, TransportError> {
        match self.stream.read(buf) {
            Ok(0) => Ok(PollRead::Eof),
            Ok(n) => Ok(PollRead::Data(n)),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                Ok(PollRead::WouldBlock)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(PollRead::WouldBlock),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted
                ) =>
            {
                Err(TransportError::Disconnected {
                    context: "tcp poll read",
                })
            }
            Err(error) => Err(TransportError::Io {
                context: "tcp poll read",
                error,
            }),
        }
    }

    fn poll_write(&mut self, bufs: &[IoSlice<'_>]) -> Result<PollWrite, TransportError> {
        match self.stream.write_vectored(bufs) {
            Ok(0) => Ok(PollWrite::WouldBlock),
            Ok(n) => Ok(PollWrite::Wrote(n)),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                Ok(PollWrite::WouldBlock)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(PollWrite::WouldBlock),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::BrokenPipe
                        | ErrorKind::ConnectionReset
                        | ErrorKind::ConnectionAborted
                ) =>
            {
                Err(TransportError::Disconnected {
                    context: "tcp poll write",
                })
            }
            Err(error) => Err(TransportError::Io {
                context: "tcp poll write",
                error,
            }),
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Goodbye, Hello, PredictionFrame, PROTOCOL_VERSION};

    fn recv_frame(source: &mut Box<dyn FrameSource>) -> Frame {
        for _ in 0..200 {
            match source.recv().unwrap() {
                RecvOutcome::Frame(f) => return f,
                RecvOutcome::TimedOut => continue,
                RecvOutcome::Closed => panic!("peer closed early"),
            }
        }
        panic!("no frame within the polling budget");
    }

    #[test]
    fn loopback_round_trips_frames_both_ways() {
        let (mut acceptor, connector) = loopback(LoopbackConfig::default());
        let client = connector.connect().unwrap();
        let Accepted::Connection(server) = acceptor.accept().unwrap() else {
            panic!("no connection");
        };
        let (mut ctx, mut crx) = client.split();
        let (mut stx, mut srx) = server.split();

        let hello = Frame::Hello(Hello {
            protocol: PROTOCOL_VERSION,
            sensor_id: "s0".into(),
            tenant: "t0".into(),
        });
        ctx.send(&hello).unwrap();
        assert_eq!(recv_frame(&mut srx), hello);

        let pred = Frame::Prediction(PredictionFrame {
            seq: 1,
            timestamp_s: 0.5,
            occupied: 1,
            proba: 0.75,
            model_version: 1,
            latency_ns: 10,
        });
        stx.send(&pred).unwrap();
        assert_eq!(recv_frame(&mut crx), pred);
    }

    #[test]
    fn loopback_reports_closed_when_the_peer_drops() {
        let (mut acceptor, connector) = loopback(LoopbackConfig::default());
        let client = connector.connect().unwrap();
        let Accepted::Connection(server) = acceptor.accept().unwrap() else {
            panic!("no connection");
        };
        drop(server);
        let (_tx, mut rx) = client.split();
        assert!(matches!(rx.recv().unwrap(), RecvOutcome::Closed));
    }

    #[test]
    fn loopback_poll_face_moves_bytes_without_blocking() {
        let (mut acceptor, connector) = loopback(LoopbackConfig::default());
        let client = connector.connect().unwrap();
        let Accepted::Connection(server) = acceptor.accept().unwrap() else {
            panic!("no connection");
        };
        let mut poll = server.into_poll().unwrap();
        let mut scratch = [0u8; 64];
        assert_eq!(poll.poll_read(&mut scratch).unwrap(), PollRead::WouldBlock);

        let (mut ctx, mut crx) = client.split();
        let goodbye = Frame::Goodbye(Goodbye { count: 2 });
        ctx.send(&goodbye).unwrap();
        let mut collected = Vec::new();
        loop {
            match poll.poll_read(&mut scratch).unwrap() {
                PollRead::Data(n) => collected.extend_from_slice(&scratch[..n]),
                PollRead::WouldBlock => break,
                PollRead::Eof => panic!("unexpected eof"),
            }
        }
        let (frame, consumed) = decode_frame(&collected, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(frame, goodbye);
        assert_eq!(consumed, collected.len());

        // Vectored write split across two slices reassembles at the
        // blocking client half.
        let bytes = Encoder::new().encode(&goodbye).unwrap();
        let (a, b) = bytes.split_at(7);
        let mut offset = 0;
        while offset < bytes.len() {
            let slices = if offset < a.len() {
                vec![IoSlice::new(&a[offset..]), IoSlice::new(b)]
            } else {
                vec![IoSlice::new(&b[offset - a.len()..])]
            };
            match poll.poll_write(&slices).unwrap() {
                PollWrite::Wrote(n) => offset += n,
                PollWrite::WouldBlock => std::thread::yield_now(),
            }
        }
        assert_eq!(recv_frame(&mut crx), goodbye);
    }

    #[test]
    fn tcp_round_trips_over_localhost() {
        let (mut acceptor, addr) = tcp_listen("127.0.0.1:0", TcpConfig::default()).unwrap();
        let client = tcp_connect(&addr.to_string(), TcpConfig::default()).unwrap();
        let server = loop {
            match acceptor.accept().unwrap() {
                Accepted::Connection(c) => break c,
                Accepted::TimedOut => continue,
                Accepted::Closed => panic!("listener closed"),
            }
        };
        let (mut ctx, crx) = client.split();
        let (_stx, mut srx) = server.split();
        let goodbye = Frame::Goodbye(Goodbye { count: 9 });
        ctx.send(&goodbye).unwrap();
        assert_eq!(recv_frame(&mut srx), goodbye);
        // Both halves hold a clone of the socket; FIN goes out only
        // when the last one drops.
        drop(ctx);
        drop(crx);
        for attempt in 0..100 {
            match srx.recv().unwrap() {
                RecvOutcome::Closed => return,
                RecvOutcome::TimedOut => continue,
                RecvOutcome::Frame(f) => panic!("unexpected frame {f:?} on attempt {attempt}"),
            }
        }
        panic!("never observed Closed after the peer dropped");
    }

    #[test]
    fn tcp_reassembles_frames_split_across_writes() {
        let (mut acceptor, addr) = tcp_listen("127.0.0.1:0", TcpConfig::default()).unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        let server = loop {
            match acceptor.accept().unwrap() {
                Accepted::Connection(c) => break c,
                Accepted::TimedOut => continue,
                Accepted::Closed => panic!("listener closed"),
            }
        };
        let (_stx, mut srx) = server.split();
        let frame = Frame::Goodbye(Goodbye { count: 777 });
        let bytes = Encoder::new().encode(&frame).unwrap();
        // Dribble the frame one byte at a time across the socket.
        for b in &bytes {
            raw.write_all(std::slice::from_ref(b)).unwrap();
            raw.flush().unwrap();
        }
        assert_eq!(recv_frame(&mut srx), frame);
    }

    #[test]
    fn tcp_refuses_oversize_frames_from_the_header() {
        let (mut acceptor, addr) = tcp_listen(
            "127.0.0.1:0",
            TcpConfig {
                max_payload: 16,
                ..TcpConfig::default()
            },
        )
        .unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        let server = loop {
            match acceptor.accept().unwrap() {
                Accepted::Connection(c) => break c,
                Accepted::TimedOut => continue,
                Accepted::Closed => panic!("listener closed"),
            }
        };
        let (_stx, mut srx) = server.split();
        // Header declaring a 1 MiB payload; only the header is sent.
        let mut header = Vec::new();
        header.extend_from_slice(&crate::frame::MAGIC);
        header.push(PROTOCOL_VERSION);
        header.push(7);
        header.extend_from_slice(&0u16.to_le_bytes());
        header.extend_from_slice(&(1u32 << 20).to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        raw.write_all(&header).unwrap();
        let err = loop {
            match srx.recv() {
                Ok(RecvOutcome::TimedOut) => continue,
                Ok(other) => panic!("expected oversize refusal, got {other:?}"),
                Err(e) => break e,
            }
        };
        assert!(matches!(
            err,
            TransportError::Decode(DecodeError::Oversize { max: 16, .. })
        ));
    }

    #[test]
    fn oversize_sends_are_refused_before_any_byte_moves() {
        let (mut acceptor, connector) = loopback(LoopbackConfig::default());
        let client = connector.connect().unwrap();
        let Accepted::Connection(server) = acceptor.accept().unwrap() else {
            panic!("no connection");
        };
        let (mut ctx, _crx) = client.split();
        let oversize = Frame::Hello(Hello {
            protocol: PROTOCOL_VERSION,
            sensor_id: "x".repeat(crate::codec::MAX_SENSOR_ID_BYTES + 1),
            tenant: String::new(),
        });
        assert!(matches!(
            ctx.send(&oversize),
            Err(TransportError::Encode(EncodeError::SensorIdTooLong { .. }))
        ));
        // The connection is still clean: a well-formed frame follows.
        let (_stx, mut srx) = server.split();
        let goodbye = Frame::Goodbye(Goodbye { count: 1 });
        ctx.send(&goodbye).unwrap();
        assert_eq!(recv_frame(&mut srx), goodbye);
    }
}
