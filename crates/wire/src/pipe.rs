//! A bounded in-process byte pipe: the substrate under the loopback
//! transport.
//!
//! The previous loopback moved whole encoded frames as `Vec<u8>`
//! messages over an unbounded `mpsc` channel — one heap allocation per
//! frame and no backpressure. This pipe is a fixed-capacity ring of raw
//! bytes instead, which buys three things at once:
//!
//! * **zero per-frame allocation** — senders copy into the ring,
//!   receivers copy out of it; the ring itself is allocated once;
//! * **real backpressure** — a full ring blocks (or reports
//!   would-block), so loopback soaks exercise the same flow-control
//!   paths as TCP;
//! * **a non-blocking edge** — [`PipeReader::try_read`] /
//!   [`PipeWriter::try_write_vectored`] never park, which is what the
//!   gateway's readiness reactor polls, while the blocking
//!   [`std::io::Read`]/[`std::io::Write`] impls (with a configurable
//!   timeout surfaced as [`std::io::ErrorKind::WouldBlock`]) serve the
//!   client library's thread-per-half framing, mirroring a `TcpStream`
//!   with socket timeouts closely enough that one generic framed
//!   sink/source works over both.
//!
//! Close semantics mirror sockets: dropping the writer yields EOF at
//! the reader once the ring drains; dropping the reader makes writes
//! fail like `BrokenPipe`.

use std::io::{self, IoSlice, Read, Write};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Default ring capacity: comfortably above the largest legal frame
/// (a full 512-record batch is ~276 KiB) so no single frame can
/// deadlock a pipe whose reader is keeping up.
pub const DEFAULT_PIPE_CAPACITY: usize = 512 * 1024;

struct State {
    buf: Vec<u8>,
    /// Index of the first unread byte.
    head: usize,
    /// Unread byte count (`<= buf.len()`).
    len: usize,
    writer_gone: bool,
    reader_gone: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when bytes arrive or the writer goes away.
    readable: Condvar,
    /// Signalled when space frees up or the reader goes away.
    writable: Condvar,
}

/// What a non-blocking read observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRead {
    /// `n > 0` bytes were copied out.
    Read(usize),
    /// The ring is empty but the writer is still alive.
    Empty,
    /// The ring is empty and the writer is gone: end of stream.
    Eof,
}

/// What a non-blocking write observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryWrite {
    /// `n > 0` bytes were copied in (possibly fewer than offered).
    Wrote(usize),
    /// The ring is full; try again after the reader drains.
    Full,
    /// The reader is gone; every byte written now would be lost.
    Closed,
}

/// Creates a bounded byte pipe. `capacity` is clamped to at least one
/// byte; `timeout` bounds the *blocking* `Read`/`Write` impls (the
/// `try_*` calls never wait).
pub fn pipe(capacity: usize, timeout: Duration) -> (PipeWriter, PipeReader) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: vec![0u8; capacity.max(1)],
            head: 0,
            len: 0,
            writer_gone: false,
            reader_gone: false,
        }),
        readable: Condvar::new(),
        writable: Condvar::new(),
    });
    (
        PipeWriter {
            shared: Arc::clone(&shared),
            timeout,
        },
        PipeReader { shared, timeout },
    )
}

// The pipe is an internal transport substrate with no user code inside
// its critical sections; a poisoned mutex here only means a peer thread
// died mid-copy, and the byte ring is still structurally valid (head /
// len are updated before unlocking), so both ends recover the guard and
// keep going rather than amplifying the crash.
fn lock(shared: &Shared) -> std::sync::MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Copies as much of `bufs` as fits into the ring. Returns bytes
/// copied.
fn ring_write(state: &mut State, bufs: &[IoSlice<'_>]) -> usize {
    let capacity = state.buf.len();
    let mut wrote = 0usize;
    for slice in bufs {
        let mut src: &[u8] = slice;
        while !src.is_empty() && state.len < capacity {
            let tail = (state.head + state.len) % capacity;
            // Contiguous writable run starting at `tail`: to the end of
            // the ring, capped by the free space (which ends at `head`
            // when the data has wrapped).
            let free = capacity - state.len;
            let contiguous = (capacity - tail).min(free);
            let n = src.len().min(contiguous);
            if n == 0 {
                break;
            }
            // `n ≤ src.len()` by the `min` above, so the split cannot
            // fall out of bounds.
            let (chunk, rest) = src.split_at(n);
            if let Some(dst) = state.buf.get_mut(tail..tail + n) {
                dst.copy_from_slice(chunk);
            }
            state.len += n;
            wrote += n;
            src = rest;
        }
        if state.len == capacity {
            break;
        }
    }
    wrote
}

/// Copies up to `out.len()` bytes out of the ring. Returns bytes
/// copied.
fn ring_read(state: &mut State, out: &mut [u8]) -> usize {
    let capacity = state.buf.len();
    let mut read = 0usize;
    while read < out.len() && state.len > 0 {
        let contiguous = (capacity - state.head).min(state.len);
        let n = contiguous.min(out.len() - read);
        if n == 0 {
            break;
        }
        if let (Some(dst), Some(src)) = (
            out.get_mut(read..read + n),
            state.buf.get(state.head..state.head + n),
        ) {
            dst.copy_from_slice(src);
        }
        state.head = (state.head + n) % capacity;
        state.len -= n;
        read += n;
    }
    read
}

/// The writing end of a [`pipe`].
pub struct PipeWriter {
    shared: Arc<Shared>,
    timeout: Duration,
}

impl PipeWriter {
    /// Non-blocking vectored write: copies as much of `bufs` as fits,
    /// never parks.
    pub fn try_write_vectored(&self, bufs: &[IoSlice<'_>]) -> TryWrite {
        let mut state = lock(&self.shared);
        if state.reader_gone {
            return TryWrite::Closed;
        }
        let wrote = ring_write(&mut state, bufs);
        drop(state);
        if wrote > 0 {
            self.shared.readable.notify_one();
            TryWrite::Wrote(wrote)
        } else {
            TryWrite::Full
        }
    }
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let deadline = Instant::now() + self.timeout;
        let mut state = lock(&self.shared);
        loop {
            if state.reader_gone {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "pipe reader dropped",
                ));
            }
            let wrote = ring_write(&mut state, &[IoSlice::new(buf)]);
            if wrote > 0 {
                drop(state);
                self.shared.readable.notify_one();
                return Ok(wrote);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "pipe write timed out",
                ));
            }
            let (guard, _timeout) = self
                .shared
                .writable
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let mut state = lock(&self.shared);
        state.writer_gone = true;
        drop(state);
        self.shared.readable.notify_all();
    }
}

/// The reading end of a [`pipe`].
pub struct PipeReader {
    shared: Arc<Shared>,
    timeout: Duration,
}

impl PipeReader {
    /// Adjusts how long the blocking [`Read`] impl waits before
    /// reporting [`io::ErrorKind::WouldBlock`] (the pipe analogue of a
    /// socket read timeout).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Non-blocking read: copies whatever is buffered, never parks.
    pub fn try_read(&self, out: &mut [u8]) -> TryRead {
        let mut state = lock(&self.shared);
        let read = ring_read(&mut state, out);
        let writer_gone = state.writer_gone;
        let empty = state.len == 0;
        drop(state);
        if read > 0 {
            self.shared.writable.notify_one();
            TryRead::Read(read)
        } else if writer_gone && empty {
            TryRead::Eof
        } else {
            TryRead::Empty
        }
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let deadline = Instant::now() + self.timeout;
        let mut state = lock(&self.shared);
        loop {
            let read = ring_read(&mut state, out);
            if read > 0 {
                drop(state);
                self.shared.writable.notify_one();
                return Ok(read);
            }
            if state.writer_gone {
                return Ok(0); // clean EOF
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "pipe read timed out",
                ));
            }
            let (guard, _timeout) = self
                .shared
                .readable
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        let mut state = lock(&self.shared);
        state.reader_gone = true;
        drop(state);
        self.shared.writable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip_across_the_ring_seam() {
        let (mut w, mut r) = pipe(8, Duration::from_millis(200));
        // Fill, drain partially, refill: forces head to wrap.
        w.write_all(&[1, 2, 3, 4, 5, 6]).unwrap();
        let mut out = [0u8; 4];
        r.read_exact(&mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
        w.write_all(&[7, 8, 9, 10, 11, 12]).unwrap();
        let mut rest = [0u8; 8];
        r.read_exact(&mut rest).unwrap();
        assert_eq!(rest, [5, 6, 7, 8, 9, 10, 11, 12]);
    }

    #[test]
    fn blocking_write_waits_for_the_reader_and_times_out_when_full() {
        let (mut w, r) = pipe(4, Duration::from_millis(50));
        w.write_all(&[0; 4]).unwrap();
        let err = w.write(&[1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        let mut out = [0u8; 2];
        assert_eq!(r.try_read(&mut out), TryRead::Read(2));
        assert_eq!(w.write(&[1]).unwrap(), 1);
    }

    #[test]
    fn nonblocking_calls_never_park_and_report_peer_loss() {
        let (w, r) = pipe(4, Duration::from_millis(10));
        let mut out = [0u8; 4];
        assert_eq!(r.try_read(&mut out), TryRead::Empty);
        assert_eq!(
            w.try_write_vectored(&[IoSlice::new(&[1, 2])]),
            TryWrite::Wrote(2)
        );
        assert_eq!(
            w.try_write_vectored(&[IoSlice::new(&[3, 4]), IoSlice::new(&[5])]),
            TryWrite::Wrote(2)
        );
        assert_eq!(w.try_write_vectored(&[IoSlice::new(&[6])]), TryWrite::Full);
        assert_eq!(r.try_read(&mut out), TryRead::Read(4));
        drop(w);
        assert_eq!(r.try_read(&mut out), TryRead::Eof);
    }

    #[test]
    fn dropping_the_reader_breaks_the_writer() {
        let (mut w, r) = pipe(4, Duration::from_millis(10));
        drop(r);
        assert_eq!(w.write(&[1]).unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(
            w.try_write_vectored(&[IoSlice::new(&[1])]),
            TryWrite::Closed
        );
    }

    #[test]
    fn eof_only_after_the_ring_drains() {
        let (mut w, mut r) = pipe(8, Duration::from_millis(10));
        w.write_all(&[9, 9]).unwrap();
        drop(w);
        let mut out = [0u8; 8];
        assert_eq!(r.read(&mut out).unwrap(), 2);
        assert_eq!(r.read(&mut out).unwrap(), 0);
    }
}
