//! Multi-sensor wire load generator: replays simulated office sensor
//! fleets through the `occusense-wire` gateway over loopback or TCP
//! and (with `--verify`) proves the delivered predictions bitwise
//! identical to direct in-process scoring.
//!
//! ```text
//! cargo run --release -p occusense-wire --bin wire_storm -- \
//!     --sensors 8 --records 5000 --transport loopback --verify
//! ```
//!
//! The verification contract: the gateway runs with online training
//! disabled (model version pinned at 1) and lossless `Block` policies
//! by default, every sensor's records come from the shared
//! `occusense_sim::fleet_stream` replay source, and every prediction
//! that comes back over the wire must satisfy
//! `proba.to_bits() == detector.predict_record(record).1.to_bits()`.
//! Any mismatch, any unaccounted record, or any lost prediction exits
//! non-zero — the same verdict discipline as `serve_sim --faults`.
//!
//! `--temporal` boots the stateful GRU sequence runtime instead: each
//! sensor's hidden state is carried between micro-batches on the
//! server. The `--verify` replay then rescores every sensor's
//! delivered stream with `score_stream` from a zero state — by row
//! independence of the kernels the multiplexed server must match it
//! bitwise. `--swap` hot-swaps a second temporal model mid-storm;
//! every prediction carries the version that scored it, so the replay
//! splits each sensor's stream at the version change and restarts the
//! reference state from zeros exactly where the server did.

use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_core::temporal::{TemporalConfig, TemporalDetector};
use occusense_dataset::CsiRecord;
use occusense_serve::{BackpressurePolicy, BatchConfig, ServeConfig, ServeReport};
use occusense_sim::{fleet_stream, simulate, ScenarioConfig};
use occusense_wire::{
    connect, loopback, tcp_connect, tcp_listen, ClientEvent, Connection, Encoder, Frame,
    FrameBuffer, Gateway, GatewayConfig, LoopbackConfig, LoopbackConnector, TcpConfig, WireError,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "wire_storm — multi-sensor load generator for the occusense wire gateway

  --sensors N           concurrent wire clients (default 8)
  --records N           records replayed per sensor (default 5000)
  --transport T         loopback | tcp (default loopback)
  --addr A              tcp listen address (default 127.0.0.1:0 = OS port)
  --shards N            worker shards (default 4)
  --batch N             micro-batch size trigger (default 32)
  --delay-ms N          micro-batch deadline trigger, ms (default 2)
  --wire-batch N        records per Batch frame; 1 = single Record
                        frames (default 16)
  --policy P            ingress backpressure: block | drop-oldest |
                        reject-newest (default block)
  --outbound-policy P   per-connection prediction queue policy
                        (default block)
  --capacity N          per-shard ingress queue capacity (default 1024)
  --seed S              fleet base seed; sensor i replays
                        fleet_stream(duration, seed, i) (default 100)
  --mux                 drive every connection from a few non-blocking
                        mux driver threads (FrameBuffer clients over
                        the PollConn face) instead of two OS threads
                        per sensor — the 10k-connection mode; also
                        collects per-record round-trip latency
  --drivers N           mux driver threads (default 1; needs --mux)
  --reactors N          gateway reactor threads (default 1)
  --json PATH           write a machine-readable soak summary (wall
                        time, throughput, RTT percentiles, counters)
  --temporal            serve the stateful GRU sequence model instead
                        of the per-frame MLP (per-sensor hidden state
                        carried server-side)
  --swap                hot-swap a second temporal model mid-storm,
                        once ~25% of predictions are delivered
                        (requires --temporal); state zero-resets are
                        verified through per-prediction versions
  --verify              bitwise-compare every delivered prediction
                        against direct in-process scoring and exit 1 on
                        any mismatch, lost prediction or accounting
                        residue
  -h, --help            print this help";

#[derive(Clone)]
struct Args {
    sensors: usize,
    records: usize,
    transport: Transport,
    addr: String,
    shards: usize,
    max_batch: usize,
    max_delay_ms: u64,
    wire_batch: usize,
    policy: BackpressurePolicy,
    outbound_policy: BackpressurePolicy,
    capacity: usize,
    seed: u64,
    mux: bool,
    drivers: usize,
    reactors: usize,
    json: Option<String>,
    temporal: bool,
    swap: bool,
    verify: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Transport {
    Loopback,
    Tcp,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            sensors: 8,
            records: 5000,
            transport: Transport::Loopback,
            addr: "127.0.0.1:0".to_string(),
            shards: 4,
            max_batch: 32,
            max_delay_ms: 2,
            wire_batch: 16,
            policy: BackpressurePolicy::Block,
            outbound_policy: BackpressurePolicy::Block,
            capacity: 1024,
            seed: 100,
            mux: false,
            drivers: 1,
            reactors: 1,
            json: None,
            temporal: false,
            swap: false,
            verify: false,
        }
    }
}

fn parse_value<T: std::str::FromStr>(raw: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("bad value {raw:?} for {what}: {e}"))
}

fn parse_policy(raw: &str, what: &str) -> Result<BackpressurePolicy, String> {
    BackpressurePolicy::parse(raw)
        .ok_or_else(|| format!("unknown {what} {raw:?} (block | drop-oldest | reject-newest)"))
}

/// Parses the command line. `Err` carries a user-facing message — the
/// caller prints it with the usage text and exits 2 (the PR 2 CLI
/// convention shared with `serve_sim`); malformed flags never panic.
fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv;
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--verify" {
            args.verify = true;
            continue;
        }
        if flag == "--mux" {
            args.mux = true;
            continue;
        }
        if flag == "--temporal" {
            args.temporal = true;
            continue;
        }
        if flag == "--swap" {
            args.swap = true;
            continue;
        }
        const KNOWN: &[&str] = &[
            "--sensors",
            "--records",
            "--transport",
            "--addr",
            "--shards",
            "--batch",
            "--delay-ms",
            "--wire-batch",
            "--policy",
            "--outbound-policy",
            "--capacity",
            "--seed",
            "--drivers",
            "--reactors",
            "--json",
        ];
        if !KNOWN.contains(&flag.as_str()) {
            return Err(format!("unknown flag {flag:?}"));
        }
        let raw = it
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--sensors" => args.sensors = parse_value(&raw, "--sensors")?,
            "--records" => args.records = parse_value(&raw, "--records")?,
            "--transport" => {
                args.transport = match raw.as_str() {
                    "loopback" => Transport::Loopback,
                    "tcp" => Transport::Tcp,
                    _ => return Err(format!("unknown transport {raw:?} (loopback | tcp)")),
                };
            }
            "--addr" => args.addr = raw,
            "--shards" => args.shards = parse_value(&raw, "--shards")?,
            "--batch" => args.max_batch = parse_value(&raw, "--batch")?,
            "--delay-ms" => args.max_delay_ms = parse_value(&raw, "--delay-ms")?,
            "--wire-batch" => args.wire_batch = parse_value(&raw, "--wire-batch")?,
            "--policy" => args.policy = parse_policy(&raw, "--policy")?,
            "--outbound-policy" => args.outbound_policy = parse_policy(&raw, "--outbound-policy")?,
            "--capacity" => args.capacity = parse_value(&raw, "--capacity")?,
            "--seed" => args.seed = parse_value(&raw, "--seed")?,
            "--drivers" => args.drivers = parse_value(&raw, "--drivers")?,
            "--reactors" => args.reactors = parse_value(&raw, "--reactors")?,
            "--json" => args.json = Some(raw),
            _ => unreachable!("flag was vetted against KNOWN"),
        }
    }
    if args.sensors == 0 {
        return Err("--sensors must be >= 1".into());
    }
    if args.records == 0 {
        return Err("--records must be >= 1".into());
    }
    if args.wire_batch == 0 {
        return Err("--wire-batch must be >= 1".into());
    }
    if args.swap && !args.temporal {
        return Err("--swap requires --temporal".into());
    }
    if args.drivers == 0 {
        return Err("--drivers must be >= 1".into());
    }
    if args.reactors == 0 {
        return Err("--reactors must be >= 1".into());
    }
    Ok(args)
}

/// What one sensor thread brings home.
struct SensorOutcome {
    index: usize,
    shard: u32,
    records: Vec<CsiRecord>,
    sent: u64,
    predictions: Vec<occusense_wire::PredictionFrame>,
    nacks: u64,
    errors: Vec<String>,
}

fn run_sensor(
    index: usize,
    conn: Box<dyn Connection>,
    records: Vec<CsiRecord>,
    wire_batch: usize,
    progress: Arc<AtomicU64>,
) -> SensorOutcome {
    let mut outcome = SensorOutcome {
        index,
        shard: 0,
        records,
        sent: 0,
        predictions: Vec::new(),
        nacks: 0,
        errors: Vec::new(),
    };
    let (mut tx, mut rx) = match connect(conn, &format!("sensor-{index}"), Duration::from_secs(10))
    {
        Ok(split) => split,
        Err(e) => {
            outcome.errors.push(format!("handshake: {e}"));
            return outcome;
        }
    };
    outcome.shard = rx.shard();

    // Receiver thread: drain until the gateway's Goodbye (or a stall).
    let reader = std::thread::spawn(move || {
        let mut predictions = Vec::new();
        let mut nacks = 0u64;
        let mut errors = Vec::new();
        let stall_limit = Duration::from_secs(15);
        let mut last_event = Instant::now();
        loop {
            match rx.recv() {
                Ok(ClientEvent::Prediction(p)) => {
                    predictions.push(p);
                    progress.fetch_add(1, Ordering::Relaxed);
                    last_event = Instant::now();
                }
                Ok(ClientEvent::Nack(_)) => {
                    nacks += 1;
                    last_event = Instant::now();
                }
                Ok(ClientEvent::Goodbye(_)) | Ok(ClientEvent::Closed) => break,
                Ok(ClientEvent::TimedOut) => {
                    if last_event.elapsed() > stall_limit {
                        errors.push("receiver stalled past the 15 s limit".to_string());
                        break;
                    }
                }
                Err(e) => {
                    errors.push(format!("receive: {e}"));
                    break;
                }
            }
        }
        (predictions, nacks, errors)
    });

    // Sender: labelled on even sequence numbers (exercises both label
    // encodings), batched per --wire-batch.
    let labelled: Vec<(CsiRecord, Option<u8>)> = outcome
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| (*r, (i % 2 == 0).then(|| r.occupancy())))
        .collect();
    let mut send_failed = false;
    if wire_batch <= 1 {
        for (record, label) in &labelled {
            if let Err(e) = tx.send(*record, *label) {
                outcome.errors.push(format!("send: {e}"));
                send_failed = true;
                break;
            }
        }
    } else {
        for chunk in labelled.chunks(wire_batch) {
            if let Err(e) = tx.send_batch(chunk) {
                outcome.errors.push(format!("send batch: {e}"));
                send_failed = true;
                break;
            }
        }
    }
    if !send_failed {
        match tx.finish() {
            Ok(sent) => outcome.sent = sent,
            Err(e) => outcome.errors.push(format!("goodbye: {e}")),
        }
    }

    match reader.join() {
        Ok((predictions, nacks, errors)) => {
            outcome.predictions = predictions;
            outcome.nacks = nacks;
            outcome.errors.extend(errors);
        }
        Err(_) => outcome.errors.push("receiver thread panicked".to_string()),
    }
    outcome
}

/// Client-side lifecycle of one multiplexed connection.
enum MuxState {
    /// `Hello` queued; waiting for the gateway's `HelloAck`.
    AwaitAck,
    /// Streaming `Record`/`Batch` frames.
    Streaming,
    /// `Goodbye` queued; collecting remaining predictions until the
    /// gateway's own `Goodbye`.
    Draining,
}

/// One non-blocking sensor connection inside a mux driver: the
/// client-side mirror of the gateway's reactor connections, built on
/// the same [`FrameBuffer`] parser over the [`PollConn`] face. A
/// driver thread sweeps thousands of these — no per-sensor OS
/// threads, which is what makes the 10k-connection soak runnable.
struct MuxConn {
    index: usize,
    io: Box<dyn occusense_wire::PollConn>,
    inbuf: FrameBuffer,
    out: Vec<u8>,
    out_pos: usize,
    encoder: Encoder,
    state: MuxState,
    records: Vec<CsiRecord>,
    next: usize,
    shard: u32,
    sent: u64,
    predictions: Vec<occusense_wire::PredictionFrame>,
    nacks: u64,
    errors: Vec<String>,
    /// Enqueue instant per seq — RTT is measured from the moment the
    /// record entered the client's outbound buffer.
    sent_at: Vec<Instant>,
    /// Round-trip nanoseconds, one per delivered prediction.
    rtts: Vec<u64>,
    done: bool,
}

impl MuxConn {
    fn new(index: usize, io: Box<dyn occusense_wire::PollConn>, records: Vec<CsiRecord>) -> Self {
        let mut encoder = Encoder::default();
        let out = encoder
            .encode(&Frame::Hello(occusense_wire::Hello {
                protocol: occusense_wire::PROTOCOL_VERSION,
                sensor_id: format!("sensor-{index}"),
                tenant: String::new(),
            }))
            .expect("short sensor ids always encode");
        let expected = records.len();
        Self {
            index,
            io,
            inbuf: FrameBuffer::new(occusense_wire::DEFAULT_MAX_PAYLOAD),
            out,
            out_pos: 0,
            encoder,
            state: MuxState::AwaitAck,
            records,
            next: 0,
            shard: 0,
            sent: 0,
            predictions: Vec::new(),
            nacks: 0,
            errors: Vec::new(),
            sent_at: Vec::with_capacity(expected),
            rtts: Vec::with_capacity(expected),
            done: false,
        }
    }

    fn fail(&mut self, message: String) {
        self.errors.push(message);
        self.done = true;
    }

    /// Queues the next chunk of records (or the `Goodbye`) once the
    /// previous encoding has fully left the socket.
    fn refill(&mut self, wire_batch: usize) {
        if !self.out.is_empty() || !matches!(self.state, MuxState::Streaming) {
            return;
        }
        let frame = if self.next < self.records.len() {
            let chunk = if wire_batch <= 1 { 1 } else { wire_batch };
            let end = (self.next + chunk).min(self.records.len());
            let now = Instant::now();
            for _ in self.next..end {
                self.sent_at.push(now);
            }
            let frame = if wire_batch <= 1 {
                let record = self.records[self.next];
                Frame::Record(occusense_wire::RecordFrame {
                    seq: self.next as u64,
                    label: (self.next.is_multiple_of(2)).then(|| record.occupancy()),
                    record,
                })
            } else {
                let records: Vec<(CsiRecord, Option<u8>)> = self.records[self.next..end]
                    .iter()
                    .enumerate()
                    .map(|(k, r)| {
                        (
                            *r,
                            ((self.next + k).is_multiple_of(2)).then(|| r.occupancy()),
                        )
                    })
                    .collect();
                Frame::Batch(occusense_wire::BatchFrame {
                    first_seq: self.next as u64,
                    records,
                })
            };
            self.next = end;
            frame
        } else {
            self.sent = self.next as u64;
            self.state = MuxState::Draining;
            Frame::Goodbye(occusense_wire::Goodbye {
                count: self.next as u64,
            })
        };
        match self.encoder.encode(&frame) {
            Ok(bytes) => {
                self.out = bytes;
                self.out_pos = 0;
            }
            Err(e) => self.fail(format!("encode: {e}")),
        }
    }

    /// Drains every complete frame currently buffered inbound.
    fn parse(&mut self, progress: &AtomicU64) {
        loop {
            let (decoded, len) = match self.inbuf.peek() {
                Ok(None) => break,
                Err(e) => {
                    self.fail(format!("decode: {e}"));
                    break;
                }
                Ok(Some((header, payload))) => (
                    occusense_wire::decode_payload(header.frame_type, payload),
                    header.payload_len,
                ),
            };
            let frame = match decoded {
                Ok(frame) => frame,
                Err(e) => {
                    self.fail(format!("decode payload: {e}"));
                    break;
                }
            };
            self.inbuf.consume(len);
            match frame {
                Frame::HelloAck(ack) => {
                    self.shard = ack.shard;
                    self.state = MuxState::Streaming;
                }
                Frame::Prediction(p) => {
                    if let Some(t) = self.sent_at.get(p.seq as usize) {
                        self.rtts.push(t.elapsed().as_nanos() as u64);
                    }
                    self.predictions.push(p);
                    progress.fetch_add(1, Ordering::Relaxed);
                }
                Frame::Nack(n) => {
                    if matches!(self.state, MuxState::AwaitAck) {
                        self.fail(format!("handshake refused: {}", n.reason));
                        break;
                    }
                    self.nacks += 1;
                }
                Frame::Goodbye(_) => {
                    self.done = true;
                    break;
                }
                _ => {
                    self.fail("server sent a client-role frame".to_string());
                    break;
                }
            }
        }
    }

    /// One sweep: flush pending bytes, queue the next chunk, read and
    /// parse whatever arrived. Returns whether anything moved.
    fn pump(&mut self, wire_batch: usize, progress: &AtomicU64) -> bool {
        let mut moved = false;
        loop {
            while self.out_pos < self.out.len() {
                match self
                    .io
                    .poll_write(&[std::io::IoSlice::new(&self.out[self.out_pos..])])
                {
                    Ok(occusense_wire::PollWrite::Wrote(n)) => {
                        self.out_pos += n;
                        moved = true;
                    }
                    Ok(occusense_wire::PollWrite::WouldBlock) => break,
                    Err(e) => {
                        self.fail(format!("write: {e}"));
                        return true;
                    }
                }
            }
            if self.out_pos < self.out.len() {
                break;
            }
            self.out.clear();
            self.out_pos = 0;
            self.refill(wire_batch);
            if self.done || self.out.is_empty() {
                break;
            }
        }
        loop {
            if self.done {
                return true;
            }
            let read = {
                let spare = self.inbuf.spare_mut();
                if spare.is_empty() {
                    break;
                }
                self.io.poll_read(spare)
            };
            match read {
                Ok(occusense_wire::PollRead::Data(n)) => {
                    self.inbuf.commit(n);
                    moved = true;
                    self.parse(progress);
                }
                Ok(occusense_wire::PollRead::WouldBlock) => break,
                Ok(occusense_wire::PollRead::Eof) => {
                    self.fail("server closed before its Goodbye".to_string());
                    return true;
                }
                Err(e) => {
                    self.fail(format!("read: {e}"));
                    return true;
                }
            }
        }
        moved
    }

    fn into_outcome(self) -> (SensorOutcome, Vec<u64>) {
        (
            SensorOutcome {
                index: self.index,
                shard: self.shard,
                records: self.records,
                sent: self.sent,
                predictions: self.predictions,
                nacks: self.nacks,
                errors: self.errors,
            },
            self.rtts,
        )
    }
}

/// Sweeps a set of mux connections until every one has finished (or
/// the whole driver stalls past the limit).
fn run_mux_driver(
    mut conns: Vec<MuxConn>,
    wire_batch: usize,
    progress: Arc<AtomicU64>,
) -> Vec<MuxConn> {
    let stall_limit = Duration::from_secs(30);
    let mut last_progress = Instant::now();
    let mut idle: u32 = 0;
    loop {
        let mut moved = false;
        let mut open = 0usize;
        for conn in conns.iter_mut() {
            if conn.done {
                continue;
            }
            open += 1;
            if conn.pump(wire_batch, &progress) {
                moved = true;
            }
        }
        if open == 0 {
            break;
        }
        if moved {
            last_progress = Instant::now();
            idle = 0;
        } else {
            if last_progress.elapsed() > stall_limit {
                for conn in conns.iter_mut() {
                    if !conn.done {
                        conn.fail("mux driver stalled past the 30 s limit".to_string());
                    }
                }
                break;
            }
            idle = idle.saturating_add(1);
            if idle < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
    conns
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The in-process reference the `--verify` replay scores against.
enum VerifyTarget {
    /// Stateless per-frame MLP, version pinned at 1.
    Frame(OccupancyDetector),
    /// Stateful GRU sequence models, keyed by published version —
    /// more than one entry after a `--swap`.
    Temporal(BTreeMap<u64, TemporalDetector>),
}

/// The `--verify` verdict: bitwise agreement with in-process scoring
/// plus exact accounting, per sensor and globally.
fn verify(outcomes: &[SensorOutcome], target: &VerifyTarget, report: &ServeReport) -> Vec<String> {
    let mut failures = Vec::new();
    let mut delivered_total = 0u64;
    for o in outcomes {
        delivered_total += o.predictions.len() as u64;
        if o.sent != o.records.len() as u64 {
            failures.push(format!(
                "sensor-{}: sent {} of {} records",
                o.index,
                o.sent,
                o.records.len()
            ));
        }
        let resolved = o.predictions.len() as u64 + o.nacks;
        if resolved != o.sent {
            failures.push(format!(
                "sensor-{}: {} records sent but only {} resolved ({} predictions + {} NACKs)",
                o.index,
                o.sent,
                resolved,
                o.predictions.len(),
                o.nacks
            ));
        }
        match target {
            VerifyTarget::Frame(detector) => verify_frame_sensor(o, detector, &mut failures),
            VerifyTarget::Temporal(models) => verify_temporal_sensor(o, models, &mut failures),
        }
    }
    let unaccounted = report.unaccounted_records();
    if unaccounted != 0 {
        failures.push(format!("{unaccounted} records unaccounted for"));
    }
    if report.wire.predictions_sent != delivered_total {
        failures.push(format!(
            "gateway sent {} predictions but clients received {}",
            report.wire.predictions_sent, delivered_total
        ));
    }
    failures
}

/// Frame-mode replay: every prediction independently rescorable, and
/// the model version must stay pinned at 1 (online training disabled).
fn verify_frame_sensor(
    o: &SensorOutcome,
    detector: &OccupancyDetector,
    failures: &mut Vec<String>,
) {
    let mut mismatches = 0usize;
    for p in &o.predictions {
        let Some(record) = o.records.get(p.seq as usize) else {
            failures.push(format!(
                "sensor-{}: prediction for unknown seq {}",
                o.index, p.seq
            ));
            continue;
        };
        let (occupied, proba) = detector.predict_record(record);
        if p.occupied != occupied || p.proba.to_bits() != proba.to_bits() {
            mismatches += 1;
            if mismatches <= 3 {
                failures.push(format!(
                    "sensor-{} seq {}: wire ({}, {:#018x}) != direct ({}, {:#018x})",
                    o.index,
                    p.seq,
                    p.occupied,
                    p.proba.to_bits(),
                    occupied,
                    proba.to_bits()
                ));
            }
        }
        if p.model_version != 1 {
            failures.push(format!(
                "sensor-{} seq {}: scored by model v{} (hot swap while pinned?)",
                o.index, p.seq, p.model_version
            ));
        }
    }
    if mismatches > 3 {
        failures.push(format!(
            "sensor-{}: {} bitwise mismatches total",
            o.index, mismatches
        ));
    }
}

/// Temporal-mode replay. The server scored this sensor's records in
/// seq order, carrying hidden state and zero-resetting it at every
/// model swap — so the reference is `score_stream` (zero state) over
/// each maximal run of predictions scored by the same version. Only
/// scored records ever advanced the server's state (a NACKed record
/// never reached a worker), so replaying exactly the delivered
/// predictions reconstructs the state trajectory.
fn verify_temporal_sensor(
    o: &SensorOutcome,
    models: &BTreeMap<u64, TemporalDetector>,
    failures: &mut Vec<String>,
) {
    let mut preds: Vec<&occusense_wire::PredictionFrame> = o.predictions.iter().collect();
    preds.sort_by_key(|p| p.seq);
    let mut mismatches = 0usize;
    let mut last_version = 0u64;
    let mut i = 0usize;
    while i < preds.len() {
        let Some(first) = preds.get(i) else { break };
        let version = first.model_version;
        if version < last_version {
            failures.push(format!(
                "sensor-{} seq {}: version went backwards (v{last_version} → v{version})",
                o.index, first.seq
            ));
            break;
        }
        last_version = version;
        let mut j = i;
        while preds.get(j).is_some_and(|p| p.model_version == version) {
            j += 1;
        }
        let run = &preds[i..j];
        i = j;
        let Some(model) = models.get(&version) else {
            failures.push(format!(
                "sensor-{}: predictions scored by unknown model v{version}",
                o.index
            ));
            continue;
        };
        let mut records = Vec::with_capacity(run.len());
        for p in run {
            match o.records.get(p.seq as usize) {
                Some(r) => records.push(*r),
                None => failures.push(format!(
                    "sensor-{}: prediction for unknown seq {}",
                    o.index, p.seq
                )),
            }
        }
        if records.len() != run.len() {
            continue;
        }
        let solo = model.score_stream(&records);
        for (p, (_, proba)) in run.iter().zip(&solo) {
            if p.proba.to_bits() != proba.to_bits() || p.occupied != u8::from(*proba > 0.5) {
                mismatches += 1;
                if mismatches <= 3 {
                    failures.push(format!(
                        "sensor-{} seq {} (v{version}): wire ({}, {:#018x}) != replay ({}, {:#018x})",
                        o.index,
                        p.seq,
                        p.occupied,
                        p.proba.to_bits(),
                        u8::from(*proba > 0.5),
                        proba.to_bits()
                    ));
                }
            }
        }
    }
    if mismatches > 3 {
        failures.push(format!(
            "sensor-{}: {} bitwise mismatches total",
            o.index, mismatches
        ));
    }
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("wire_storm: {message}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    // Offline bootstrap, same recipe as serve_sim; online training is
    // *disabled* so the serving model only changes version at an
    // explicit --swap — the precondition for replaying wire
    // predictions bitwise against identical local models.
    let train = simulate(&ScenarioConfig::quick(1200.0, 7));
    let temporal_recipe = |seed| TemporalConfig {
        window: 8,
        stride: 2,
        hidden: 12,
        epochs: 2,
        seed,
        ..TemporalConfig::default()
    };
    let (boot_model, swap_model, mut target) = if args.temporal {
        eprintln!("training bootstrap temporal (GRU) model…");
        let boot = TemporalDetector::train(&train, &temporal_recipe(7));
        let swap = args.swap.then(|| {
            eprintln!("training swap temporal model…");
            TemporalDetector::train(&train, &temporal_recipe(23))
        });
        let mut published = BTreeMap::new();
        published.insert(1, boot.clone());
        (
            BootModel::Temporal(boot),
            swap,
            VerifyTarget::Temporal(published),
        )
    } else {
        eprintln!("training bootstrap detector…");
        let detector = OccupancyDetector::train(
            &train,
            &DetectorConfig {
                model: ModelKind::Mlp,
                mlp_epochs: 4,
                seed: 7,
                ..DetectorConfig::default()
            },
        );
        (
            BootModel::Frame(detector.clone()),
            None,
            VerifyTarget::Frame(detector),
        )
    };

    let serve = ServeConfig {
        n_shards: args.shards,
        queue_capacity: args.capacity,
        policy: args.policy,
        batch: BatchConfig {
            max_batch: args.max_batch,
            max_delay: Duration::from_millis(args.max_delay_ms),
        },
        online: None,
        ..ServeConfig::default()
    };
    let gateway_cfg = GatewayConfig {
        outbound_policy: args.outbound_policy,
        reactors: args.reactors,
        // At storm scale every connection is opened before the mux
        // drivers start flushing Hellos, so the handshake deadline has
        // to cover the whole fleet's first sweep, not one socket.
        handshake_timeout: Duration::from_secs(5)
            .max(Duration::from_millis(args.sensors as u64 * 20)),
        ..GatewayConfig::default()
    };

    // Replay sources are collected up front so the verify pass can
    // rescore the exact same records locally.
    let rate = ScenarioConfig::quick(1.0, 0).sample_rate_hz;
    let duration_s = args.records as f64 / rate + 1.0;
    let fleets: Vec<Vec<CsiRecord>> = (0..args.sensors)
        .map(|i| {
            fleet_stream(duration_s, args.seed, i as u64)
                .take(args.records)
                .collect()
        })
        .collect();

    let started = Instant::now();
    let (acceptor, connectors): (Box<dyn occusense_wire::Acceptor>, Connectors) =
        match args.transport {
            Transport::Loopback => {
                let (acceptor, connector) = loopback(LoopbackConfig::default());
                (Box::new(acceptor), Connectors::Loopback(connector))
            }
            Transport::Tcp => {
                let (acceptor, local) = tcp_listen(&args.addr, TcpConfig::default())
                    .unwrap_or_else(|e| {
                        eprintln!("wire_storm: cannot listen on {}: {e}", args.addr);
                        std::process::exit(2);
                    });
                eprintln!("listening on {local}");
                (Box::new(acceptor), Connectors::Tcp(local.to_string()))
            }
        };
    let gateway = boot_model
        .start(serve, gateway_cfg, acceptor)
        .unwrap_or_else(|e| {
            eprintln!("wire_storm: {e}");
            std::process::exit(2);
        });

    eprintln!(
        "storming: {} sensors × {} records over {} → {} shards ({} model, ingress {:?}, outbound {:?}, wire batch {})",
        args.sensors,
        args.records,
        match args.transport {
            Transport::Loopback => "loopback",
            Transport::Tcp => "tcp",
        },
        args.shards,
        if args.temporal { "temporal" } else { "frame" },
        args.policy,
        args.outbound_policy,
        args.wire_batch
    );

    let progress = Arc::new(AtomicU64::new(0));
    let mut failed: Vec<SensorOutcome> = Vec::new();
    let running = if args.mux {
        // Mux mode: every connection is flipped to its non-blocking
        // face up front and swept by a few driver threads — no
        // per-sensor OS threads, so 10k connections is just memory.
        let drivers = args.drivers.min(args.sensors).max(1);
        let mut driver_conns: Vec<Vec<MuxConn>> = (0..drivers).map(|_| Vec::new()).collect();
        for (i, records) in fleets.into_iter().enumerate() {
            match connectors.connect().and_then(|c| c.into_poll()) {
                Ok(io) => driver_conns[i % drivers].push(MuxConn::new(i, io, records)),
                Err(e) => failed.push(SensorOutcome {
                    index: i,
                    shard: 0,
                    records,
                    sent: 0,
                    predictions: Vec::new(),
                    nacks: 0,
                    errors: vec![format!("connect: {e}")],
                }),
            }
        }
        Running::Drivers(
            driver_conns
                .into_iter()
                .enumerate()
                .map(|(d, conns)| {
                    let wire_batch = args.wire_batch;
                    let progress = Arc::clone(&progress);
                    std::thread::Builder::new()
                        .name(format!("mux-driver-{d}"))
                        .spawn(move || run_mux_driver(conns, wire_batch, progress))
                        .expect("spawn mux driver")
                })
                .collect(),
        )
    } else {
        Running::Threads(
            fleets
                .into_iter()
                .enumerate()
                .map(|(i, records)| {
                    let connectors = connectors.clone();
                    let wire_batch = args.wire_batch;
                    let progress = Arc::clone(&progress);
                    std::thread::Builder::new()
                        .name(format!("storm-{i}"))
                        .spawn(move || {
                            let conn = match connectors.connect() {
                                Ok(conn) => conn,
                                Err(e) => {
                                    return SensorOutcome {
                                        index: i,
                                        shard: 0,
                                        records,
                                        sent: 0,
                                        predictions: Vec::new(),
                                        nacks: 0,
                                        errors: vec![format!("connect: {e}")],
                                    }
                                }
                            };
                            run_sensor(i, conn, records, wire_batch, progress)
                        })
                        .expect("spawn sensor thread")
                })
                .collect(),
        )
    };

    // The mid-storm hot swap: published once ~25% of the predictions
    // have been delivered, so it reliably lands mid-stream regardless
    // of machine speed. Replay correctness does not depend on *when*
    // the swap lands — every prediction carries the version that
    // scored it, and the verifier splits each sensor's stream there.
    if let Some(next) = swap_model {
        let total = (args.sensors * args.records) as u64;
        let trigger = (total / 4).max(1);
        let wait_deadline = Instant::now() + Duration::from_secs(120);
        while progress.load(Ordering::Relaxed) < trigger && Instant::now() < wait_deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let version = gateway.publish_temporal(next.clone());
        if let VerifyTarget::Temporal(published) = &mut target {
            published.insert(version, next);
        }
        eprintln!(
            "hot-swapped temporal model → v{version} (after {} of {total} predictions)",
            progress.load(Ordering::Relaxed)
        );
    }

    let mut rtts: Vec<u64> = Vec::new();
    let mut outcomes: Vec<SensorOutcome> = match running {
        Running::Threads(handles) => handles
            .into_iter()
            .map(|h| h.join().expect("sensor thread panicked"))
            .collect(),
        Running::Drivers(handles) => handles
            .into_iter()
            .flat_map(|h| h.join().expect("mux driver panicked"))
            .map(|conn| {
                let (outcome, conn_rtts) = conn.into_outcome();
                rtts.extend(conn_rtts);
                outcome
            })
            .collect(),
    };
    outcomes.append(&mut failed);
    outcomes.sort_by_key(|o| o.index);
    let report = gateway.shutdown();
    let wall = started.elapsed();

    let sent_total: u64 = outcomes.iter().map(|o| o.sent).sum();
    let delivered_total: usize = outcomes.iter().map(|o| o.predictions.len()).sum();
    let nacks_total: u64 = outcomes.iter().map(|o| o.nacks).sum();
    for o in &outcomes {
        eprintln!(
            "sensor-{}: shard {}, sent {}, predictions {}, nacks {}{}",
            o.index,
            o.shard,
            o.sent,
            o.predictions.len(),
            o.nacks,
            if o.errors.is_empty() {
                String::new()
            } else {
                format!(", errors: {}", o.errors.join("; "))
            }
        );
    }

    println!("\n=== wire_storm report ===");
    print!("{report}");
    println!(
        "wire wall time {wall:.2?} · {:.0} records/s end-to-end · {delivered_total} predictions delivered to clients · {nacks_total} NACKs",
        sent_total as f64 / wall.as_secs_f64().max(1e-9)
    );
    rtts.sort_unstable();
    if !rtts.is_empty() {
        println!(
            "round trip (enqueue → prediction): p50 {:.1} µs · p95 {:.1} µs · p99 {:.1} µs over {} samples",
            percentile(&rtts, 50.0) as f64 / 1e3,
            percentile(&rtts, 95.0) as f64 / 1e3,
            percentile(&rtts, 99.0) as f64 / 1e3,
            rtts.len()
        );
    }
    println!("\n=== metrics ===\n{}", report.metrics_text);

    let mut failures: Vec<String> = outcomes
        .iter()
        .flat_map(|o| o.errors.iter().map(|e| format!("sensor-{}: {e}", o.index)))
        .collect();
    if args.temporal {
        let mut by_version: BTreeMap<u64, u64> = BTreeMap::new();
        for o in &outcomes {
            for p in &o.predictions {
                *by_version.entry(p.model_version).or_default() += 1;
            }
        }
        let summary: Vec<String> = by_version
            .iter()
            .map(|(v, n)| format!("v{v}×{n}"))
            .collect();
        eprintln!("predictions by model version: {}", summary.join(", "));
        if args.swap && args.verify && by_version.len() < 2 {
            failures.push(
                "--swap landed after every record was scored; raise --records or lower --swap-after-ms"
                    .to_string(),
            );
        }
    }
    if args.verify {
        failures.extend(verify(&outcomes, &target, &report));
        if failures.is_empty() {
            println!(
                "verify verdict: PASS ({} sensors, {} records, {} scoring bitwise identical to in-process replay, 0 unaccounted)",
                args.sensors,
                sent_total,
                if args.temporal { "stateful temporal" } else { "frame" }
            );
        }
    }
    if let Some(path) = &args.json {
        let verdict = if !args.verify {
            "off"
        } else if failures.is_empty() {
            "pass"
        } else {
            "fail"
        };
        let json = format!(
            concat!(
                "{{\n",
                "  \"sensors\": {},\n",
                "  \"records_per_sensor\": {},\n",
                "  \"transport\": \"{}\",\n",
                "  \"mux\": {},\n",
                "  \"drivers\": {},\n",
                "  \"reactors\": {},\n",
                "  \"wire_batch\": {},\n",
                "  \"wall_s\": {:.3},\n",
                "  \"records_per_s\": {:.0},\n",
                "  \"decoded\": {},\n",
                "  \"ingested\": {},\n",
                "  \"rejected\": {},\n",
                "  \"shed\": {},\n",
                "  \"predictions_sent\": {},\n",
                "  \"nacks\": {},\n",
                "  \"connection_panics\": {},\n",
                "  \"unaccounted\": {},\n",
                "  \"rtt_us\": {{\"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}, \"samples\": {}}},\n",
                "  \"verdict\": \"{}\"\n",
                "}}\n"
            ),
            args.sensors,
            args.records,
            match args.transport {
                Transport::Loopback => "loopback",
                Transport::Tcp => "tcp",
            },
            args.mux,
            args.drivers,
            args.reactors,
            args.wire_batch,
            wall.as_secs_f64(),
            report.wire.records_decoded as f64 / wall.as_secs_f64().max(1e-9),
            report.wire.records_decoded,
            report.wire.records_ingested,
            report.wire.records_rejected,
            report.wire.records_shed,
            report.wire.predictions_sent,
            nacks_total,
            report.wire.connection_panics,
            report.unaccounted_records(),
            percentile(&rtts, 50.0) as f64 / 1e3,
            percentile(&rtts, 95.0) as f64 / 1e3,
            percentile(&rtts, 99.0) as f64 / 1e3,
            rtts.len(),
            verdict
        );
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("soak summary written to {path}"),
            Err(e) => eprintln!("wire_storm: cannot write {path}: {e}"),
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("wire_storm verdict: FAIL — {f}");
        }
        std::process::exit(1);
    }
}

/// In-flight sensor work, per traffic mode.
enum Running {
    /// Thread-per-sensor (the pre-reactor client path, still the
    /// default): one blocking sender + one reader thread per sensor.
    Threads(Vec<std::thread::JoinHandle<SensorOutcome>>),
    /// Mux drivers, each sweeping many non-blocking connections.
    Drivers(Vec<std::thread::JoinHandle<Vec<MuxConn>>>),
}

/// Which model family boots the gateway's serving runtime. One
/// instance exists per run, so the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
enum BootModel {
    Frame(OccupancyDetector),
    Temporal(TemporalDetector),
}

impl BootModel {
    fn start(
        self,
        serve: ServeConfig,
        config: GatewayConfig,
        acceptor: Box<dyn occusense_wire::Acceptor>,
    ) -> Result<Gateway, WireError> {
        match self {
            BootModel::Frame(d) => Gateway::start(d, serve, config, acceptor),
            BootModel::Temporal(t) => Gateway::start_temporal(t, serve, config, acceptor),
        }
    }
}

/// Per-transport connection factory, cloneable into sensor threads.
#[derive(Clone)]
enum Connectors {
    Loopback(LoopbackConnector),
    Tcp(String),
}

impl Connectors {
    fn connect(&self) -> Result<Box<dyn Connection>, occusense_wire::TransportError> {
        match self {
            Connectors::Loopback(c) => c.connect(),
            Connectors::Tcp(addr) => tcp_connect(addr, TcpConfig::default()),
        }
    }
}
