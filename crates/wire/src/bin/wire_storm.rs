//! Multi-sensor wire load generator: replays simulated office sensor
//! fleets through the `occusense-wire` gateway over loopback or TCP
//! and (with `--verify`) proves the delivered predictions bitwise
//! identical to direct in-process scoring.
//!
//! ```text
//! cargo run --release -p occusense-wire --bin wire_storm -- \
//!     --sensors 8 --records 5000 --transport loopback --verify
//! ```
//!
//! The verification contract: the gateway runs with online training
//! disabled (model version pinned at 1) and lossless `Block` policies
//! by default, every sensor's records come from the shared
//! `occusense_sim::fleet_stream` replay source, and every prediction
//! that comes back over the wire must satisfy
//! `proba.to_bits() == detector.predict_record(record).1.to_bits()`.
//! Any mismatch, any unaccounted record, or any lost prediction exits
//! non-zero — the same verdict discipline as `serve_sim --faults`.
//!
//! `--temporal` boots the stateful GRU sequence runtime instead: each
//! sensor's hidden state is carried between micro-batches on the
//! server. The `--verify` replay then rescores every sensor's
//! delivered stream with `score_stream` from a zero state — by row
//! independence of the kernels the multiplexed server must match it
//! bitwise. `--swap` hot-swaps a second temporal model mid-storm;
//! every prediction carries the version that scored it, so the replay
//! splits each sensor's stream at the version change and restarts the
//! reference state from zeros exactly where the server did.

use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_core::temporal::{TemporalConfig, TemporalDetector};
use occusense_dataset::CsiRecord;
use occusense_serve::{BackpressurePolicy, BatchConfig, ServeConfig, ServeReport};
use occusense_sim::{fleet_stream, simulate, ScenarioConfig};
use occusense_wire::{
    connect, loopback, tcp_connect, tcp_listen, ClientEvent, Connection, Gateway, GatewayConfig,
    LoopbackConfig, LoopbackConnector, TcpConfig, WireError,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "wire_storm — multi-sensor load generator for the occusense wire gateway

  --sensors N           concurrent wire clients (default 8)
  --records N           records replayed per sensor (default 5000)
  --transport T         loopback | tcp (default loopback)
  --addr A              tcp listen address (default 127.0.0.1:0 = OS port)
  --shards N            worker shards (default 4)
  --batch N             micro-batch size trigger (default 32)
  --delay-ms N          micro-batch deadline trigger, ms (default 2)
  --wire-batch N        records per Batch frame; 1 = single Record
                        frames (default 16)
  --policy P            ingress backpressure: block | drop-oldest |
                        reject-newest (default block)
  --outbound-policy P   per-connection prediction queue policy
                        (default block)
  --capacity N          per-shard ingress queue capacity (default 1024)
  --seed S              fleet base seed; sensor i replays
                        fleet_stream(duration, seed, i) (default 100)
  --temporal            serve the stateful GRU sequence model instead
                        of the per-frame MLP (per-sensor hidden state
                        carried server-side)
  --swap                hot-swap a second temporal model mid-storm,
                        once ~25% of predictions are delivered
                        (requires --temporal); state zero-resets are
                        verified through per-prediction versions
  --verify              bitwise-compare every delivered prediction
                        against direct in-process scoring and exit 1 on
                        any mismatch, lost prediction or accounting
                        residue
  -h, --help            print this help";

#[derive(Clone)]
struct Args {
    sensors: usize,
    records: usize,
    transport: Transport,
    addr: String,
    shards: usize,
    max_batch: usize,
    max_delay_ms: u64,
    wire_batch: usize,
    policy: BackpressurePolicy,
    outbound_policy: BackpressurePolicy,
    capacity: usize,
    seed: u64,
    temporal: bool,
    swap: bool,
    verify: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Transport {
    Loopback,
    Tcp,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            sensors: 8,
            records: 5000,
            transport: Transport::Loopback,
            addr: "127.0.0.1:0".to_string(),
            shards: 4,
            max_batch: 32,
            max_delay_ms: 2,
            wire_batch: 16,
            policy: BackpressurePolicy::Block,
            outbound_policy: BackpressurePolicy::Block,
            capacity: 1024,
            seed: 100,
            temporal: false,
            swap: false,
            verify: false,
        }
    }
}

fn parse_value<T: std::str::FromStr>(raw: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("bad value {raw:?} for {what}: {e}"))
}

fn parse_policy(raw: &str, what: &str) -> Result<BackpressurePolicy, String> {
    BackpressurePolicy::parse(raw)
        .ok_or_else(|| format!("unknown {what} {raw:?} (block | drop-oldest | reject-newest)"))
}

/// Parses the command line. `Err` carries a user-facing message — the
/// caller prints it with the usage text and exits 2 (the PR 2 CLI
/// convention shared with `serve_sim`); malformed flags never panic.
fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv;
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--verify" {
            args.verify = true;
            continue;
        }
        if flag == "--temporal" {
            args.temporal = true;
            continue;
        }
        if flag == "--swap" {
            args.swap = true;
            continue;
        }
        const KNOWN: &[&str] = &[
            "--sensors",
            "--records",
            "--transport",
            "--addr",
            "--shards",
            "--batch",
            "--delay-ms",
            "--wire-batch",
            "--policy",
            "--outbound-policy",
            "--capacity",
            "--seed",
        ];
        if !KNOWN.contains(&flag.as_str()) {
            return Err(format!("unknown flag {flag:?}"));
        }
        let raw = it
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--sensors" => args.sensors = parse_value(&raw, "--sensors")?,
            "--records" => args.records = parse_value(&raw, "--records")?,
            "--transport" => {
                args.transport = match raw.as_str() {
                    "loopback" => Transport::Loopback,
                    "tcp" => Transport::Tcp,
                    _ => return Err(format!("unknown transport {raw:?} (loopback | tcp)")),
                };
            }
            "--addr" => args.addr = raw,
            "--shards" => args.shards = parse_value(&raw, "--shards")?,
            "--batch" => args.max_batch = parse_value(&raw, "--batch")?,
            "--delay-ms" => args.max_delay_ms = parse_value(&raw, "--delay-ms")?,
            "--wire-batch" => args.wire_batch = parse_value(&raw, "--wire-batch")?,
            "--policy" => args.policy = parse_policy(&raw, "--policy")?,
            "--outbound-policy" => args.outbound_policy = parse_policy(&raw, "--outbound-policy")?,
            "--capacity" => args.capacity = parse_value(&raw, "--capacity")?,
            "--seed" => args.seed = parse_value(&raw, "--seed")?,
            _ => unreachable!("flag was vetted against KNOWN"),
        }
    }
    if args.sensors == 0 {
        return Err("--sensors must be >= 1".into());
    }
    if args.records == 0 {
        return Err("--records must be >= 1".into());
    }
    if args.wire_batch == 0 {
        return Err("--wire-batch must be >= 1".into());
    }
    if args.swap && !args.temporal {
        return Err("--swap requires --temporal".into());
    }
    Ok(args)
}

/// What one sensor thread brings home.
struct SensorOutcome {
    index: usize,
    shard: u32,
    records: Vec<CsiRecord>,
    sent: u64,
    predictions: Vec<occusense_wire::PredictionFrame>,
    nacks: u64,
    errors: Vec<String>,
}

fn run_sensor(
    index: usize,
    conn: Box<dyn Connection>,
    records: Vec<CsiRecord>,
    wire_batch: usize,
    progress: Arc<AtomicU64>,
) -> SensorOutcome {
    let mut outcome = SensorOutcome {
        index,
        shard: 0,
        records,
        sent: 0,
        predictions: Vec::new(),
        nacks: 0,
        errors: Vec::new(),
    };
    let (mut tx, mut rx) = match connect(conn, &format!("sensor-{index}"), Duration::from_secs(10))
    {
        Ok(split) => split,
        Err(e) => {
            outcome.errors.push(format!("handshake: {e}"));
            return outcome;
        }
    };
    outcome.shard = rx.shard();

    // Receiver thread: drain until the gateway's Goodbye (or a stall).
    let reader = std::thread::spawn(move || {
        let mut predictions = Vec::new();
        let mut nacks = 0u64;
        let mut errors = Vec::new();
        let stall_limit = Duration::from_secs(15);
        let mut last_event = Instant::now();
        loop {
            match rx.recv() {
                Ok(ClientEvent::Prediction(p)) => {
                    predictions.push(p);
                    progress.fetch_add(1, Ordering::Relaxed);
                    last_event = Instant::now();
                }
                Ok(ClientEvent::Nack(_)) => {
                    nacks += 1;
                    last_event = Instant::now();
                }
                Ok(ClientEvent::Goodbye(_)) | Ok(ClientEvent::Closed) => break,
                Ok(ClientEvent::TimedOut) => {
                    if last_event.elapsed() > stall_limit {
                        errors.push("receiver stalled past the 15 s limit".to_string());
                        break;
                    }
                }
                Err(e) => {
                    errors.push(format!("receive: {e}"));
                    break;
                }
            }
        }
        (predictions, nacks, errors)
    });

    // Sender: labelled on even sequence numbers (exercises both label
    // encodings), batched per --wire-batch.
    let labelled: Vec<(CsiRecord, Option<u8>)> = outcome
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| (*r, (i % 2 == 0).then(|| r.occupancy())))
        .collect();
    let mut send_failed = false;
    if wire_batch <= 1 {
        for (record, label) in &labelled {
            if let Err(e) = tx.send(*record, *label) {
                outcome.errors.push(format!("send: {e}"));
                send_failed = true;
                break;
            }
        }
    } else {
        for chunk in labelled.chunks(wire_batch) {
            if let Err(e) = tx.send_batch(chunk) {
                outcome.errors.push(format!("send batch: {e}"));
                send_failed = true;
                break;
            }
        }
    }
    if !send_failed {
        match tx.finish() {
            Ok(sent) => outcome.sent = sent,
            Err(e) => outcome.errors.push(format!("goodbye: {e}")),
        }
    }

    match reader.join() {
        Ok((predictions, nacks, errors)) => {
            outcome.predictions = predictions;
            outcome.nacks = nacks;
            outcome.errors.extend(errors);
        }
        Err(_) => outcome.errors.push("receiver thread panicked".to_string()),
    }
    outcome
}

/// The in-process reference the `--verify` replay scores against.
enum VerifyTarget {
    /// Stateless per-frame MLP, version pinned at 1.
    Frame(OccupancyDetector),
    /// Stateful GRU sequence models, keyed by published version —
    /// more than one entry after a `--swap`.
    Temporal(BTreeMap<u64, TemporalDetector>),
}

/// The `--verify` verdict: bitwise agreement with in-process scoring
/// plus exact accounting, per sensor and globally.
fn verify(outcomes: &[SensorOutcome], target: &VerifyTarget, report: &ServeReport) -> Vec<String> {
    let mut failures = Vec::new();
    let mut delivered_total = 0u64;
    for o in outcomes {
        delivered_total += o.predictions.len() as u64;
        if o.sent != o.records.len() as u64 {
            failures.push(format!(
                "sensor-{}: sent {} of {} records",
                o.index,
                o.sent,
                o.records.len()
            ));
        }
        let resolved = o.predictions.len() as u64 + o.nacks;
        if resolved != o.sent {
            failures.push(format!(
                "sensor-{}: {} records sent but only {} resolved ({} predictions + {} NACKs)",
                o.index,
                o.sent,
                resolved,
                o.predictions.len(),
                o.nacks
            ));
        }
        match target {
            VerifyTarget::Frame(detector) => verify_frame_sensor(o, detector, &mut failures),
            VerifyTarget::Temporal(models) => verify_temporal_sensor(o, models, &mut failures),
        }
    }
    let unaccounted = report.unaccounted_records();
    if unaccounted != 0 {
        failures.push(format!("{unaccounted} records unaccounted for"));
    }
    if report.wire.predictions_sent != delivered_total {
        failures.push(format!(
            "gateway sent {} predictions but clients received {}",
            report.wire.predictions_sent, delivered_total
        ));
    }
    failures
}

/// Frame-mode replay: every prediction independently rescorable, and
/// the model version must stay pinned at 1 (online training disabled).
fn verify_frame_sensor(
    o: &SensorOutcome,
    detector: &OccupancyDetector,
    failures: &mut Vec<String>,
) {
    let mut mismatches = 0usize;
    for p in &o.predictions {
        let Some(record) = o.records.get(p.seq as usize) else {
            failures.push(format!(
                "sensor-{}: prediction for unknown seq {}",
                o.index, p.seq
            ));
            continue;
        };
        let (occupied, proba) = detector.predict_record(record);
        if p.occupied != occupied || p.proba.to_bits() != proba.to_bits() {
            mismatches += 1;
            if mismatches <= 3 {
                failures.push(format!(
                    "sensor-{} seq {}: wire ({}, {:#018x}) != direct ({}, {:#018x})",
                    o.index,
                    p.seq,
                    p.occupied,
                    p.proba.to_bits(),
                    occupied,
                    proba.to_bits()
                ));
            }
        }
        if p.model_version != 1 {
            failures.push(format!(
                "sensor-{} seq {}: scored by model v{} (hot swap while pinned?)",
                o.index, p.seq, p.model_version
            ));
        }
    }
    if mismatches > 3 {
        failures.push(format!(
            "sensor-{}: {} bitwise mismatches total",
            o.index, mismatches
        ));
    }
}

/// Temporal-mode replay. The server scored this sensor's records in
/// seq order, carrying hidden state and zero-resetting it at every
/// model swap — so the reference is `score_stream` (zero state) over
/// each maximal run of predictions scored by the same version. Only
/// scored records ever advanced the server's state (a NACKed record
/// never reached a worker), so replaying exactly the delivered
/// predictions reconstructs the state trajectory.
fn verify_temporal_sensor(
    o: &SensorOutcome,
    models: &BTreeMap<u64, TemporalDetector>,
    failures: &mut Vec<String>,
) {
    let mut preds: Vec<&occusense_wire::PredictionFrame> = o.predictions.iter().collect();
    preds.sort_by_key(|p| p.seq);
    let mut mismatches = 0usize;
    let mut last_version = 0u64;
    let mut i = 0usize;
    while i < preds.len() {
        let Some(first) = preds.get(i) else { break };
        let version = first.model_version;
        if version < last_version {
            failures.push(format!(
                "sensor-{} seq {}: version went backwards (v{last_version} → v{version})",
                o.index, first.seq
            ));
            break;
        }
        last_version = version;
        let mut j = i;
        while preds.get(j).is_some_and(|p| p.model_version == version) {
            j += 1;
        }
        let run = &preds[i..j];
        i = j;
        let Some(model) = models.get(&version) else {
            failures.push(format!(
                "sensor-{}: predictions scored by unknown model v{version}",
                o.index
            ));
            continue;
        };
        let mut records = Vec::with_capacity(run.len());
        for p in run {
            match o.records.get(p.seq as usize) {
                Some(r) => records.push(*r),
                None => failures.push(format!(
                    "sensor-{}: prediction for unknown seq {}",
                    o.index, p.seq
                )),
            }
        }
        if records.len() != run.len() {
            continue;
        }
        let solo = model.score_stream(&records);
        for (p, (_, proba)) in run.iter().zip(&solo) {
            if p.proba.to_bits() != proba.to_bits() || p.occupied != u8::from(*proba > 0.5) {
                mismatches += 1;
                if mismatches <= 3 {
                    failures.push(format!(
                        "sensor-{} seq {} (v{version}): wire ({}, {:#018x}) != replay ({}, {:#018x})",
                        o.index,
                        p.seq,
                        p.occupied,
                        p.proba.to_bits(),
                        u8::from(*proba > 0.5),
                        proba.to_bits()
                    ));
                }
            }
        }
    }
    if mismatches > 3 {
        failures.push(format!(
            "sensor-{}: {} bitwise mismatches total",
            o.index, mismatches
        ));
    }
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("wire_storm: {message}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    // Offline bootstrap, same recipe as serve_sim; online training is
    // *disabled* so the serving model only changes version at an
    // explicit --swap — the precondition for replaying wire
    // predictions bitwise against identical local models.
    let train = simulate(&ScenarioConfig::quick(1200.0, 7));
    let temporal_recipe = |seed| TemporalConfig {
        window: 8,
        stride: 2,
        hidden: 12,
        epochs: 2,
        seed,
        ..TemporalConfig::default()
    };
    let (boot_model, swap_model, mut target) = if args.temporal {
        eprintln!("training bootstrap temporal (GRU) model…");
        let boot = TemporalDetector::train(&train, &temporal_recipe(7));
        let swap = args.swap.then(|| {
            eprintln!("training swap temporal model…");
            TemporalDetector::train(&train, &temporal_recipe(23))
        });
        let mut published = BTreeMap::new();
        published.insert(1, boot.clone());
        (
            BootModel::Temporal(boot),
            swap,
            VerifyTarget::Temporal(published),
        )
    } else {
        eprintln!("training bootstrap detector…");
        let detector = OccupancyDetector::train(
            &train,
            &DetectorConfig {
                model: ModelKind::Mlp,
                mlp_epochs: 4,
                seed: 7,
                ..DetectorConfig::default()
            },
        );
        (
            BootModel::Frame(detector.clone()),
            None,
            VerifyTarget::Frame(detector),
        )
    };

    let serve = ServeConfig {
        n_shards: args.shards,
        queue_capacity: args.capacity,
        policy: args.policy,
        batch: BatchConfig {
            max_batch: args.max_batch,
            max_delay: Duration::from_millis(args.max_delay_ms),
        },
        online: None,
        ..ServeConfig::default()
    };
    let gateway_cfg = GatewayConfig {
        outbound_policy: args.outbound_policy,
        ..GatewayConfig::default()
    };

    // Replay sources are collected up front so the verify pass can
    // rescore the exact same records locally.
    let rate = ScenarioConfig::quick(1.0, 0).sample_rate_hz;
    let duration_s = args.records as f64 / rate + 1.0;
    let fleets: Vec<Vec<CsiRecord>> = (0..args.sensors)
        .map(|i| {
            fleet_stream(duration_s, args.seed, i as u64)
                .take(args.records)
                .collect()
        })
        .collect();

    let started = Instant::now();
    let (acceptor, connectors): (Box<dyn occusense_wire::Acceptor>, Connectors) =
        match args.transport {
            Transport::Loopback => {
                let (acceptor, connector) = loopback(LoopbackConfig::default());
                (Box::new(acceptor), Connectors::Loopback(connector))
            }
            Transport::Tcp => {
                let (acceptor, local) = tcp_listen(&args.addr, TcpConfig::default())
                    .unwrap_or_else(|e| {
                        eprintln!("wire_storm: cannot listen on {}: {e}", args.addr);
                        std::process::exit(2);
                    });
                eprintln!("listening on {local}");
                (Box::new(acceptor), Connectors::Tcp(local.to_string()))
            }
        };
    let gateway = boot_model
        .start(serve, gateway_cfg, acceptor)
        .unwrap_or_else(|e| {
            eprintln!("wire_storm: {e}");
            std::process::exit(2);
        });

    eprintln!(
        "storming: {} sensors × {} records over {} → {} shards ({} model, ingress {:?}, outbound {:?}, wire batch {})",
        args.sensors,
        args.records,
        match args.transport {
            Transport::Loopback => "loopback",
            Transport::Tcp => "tcp",
        },
        args.shards,
        if args.temporal { "temporal" } else { "frame" },
        args.policy,
        args.outbound_policy,
        args.wire_batch
    );

    let progress = Arc::new(AtomicU64::new(0));
    let sensors: Vec<_> = fleets
        .into_iter()
        .enumerate()
        .map(|(i, records)| {
            let connectors = connectors.clone();
            let wire_batch = args.wire_batch;
            let progress = Arc::clone(&progress);
            std::thread::Builder::new()
                .name(format!("storm-{i}"))
                .spawn(move || {
                    let conn = match connectors.connect() {
                        Ok(conn) => conn,
                        Err(e) => {
                            return SensorOutcome {
                                index: i,
                                shard: 0,
                                records,
                                sent: 0,
                                predictions: Vec::new(),
                                nacks: 0,
                                errors: vec![format!("connect: {e}")],
                            }
                        }
                    };
                    run_sensor(i, conn, records, wire_batch, progress)
                })
                .expect("spawn sensor thread")
        })
        .collect();

    // The mid-storm hot swap: published once ~25% of the predictions
    // have been delivered, so it reliably lands mid-stream regardless
    // of machine speed. Replay correctness does not depend on *when*
    // the swap lands — every prediction carries the version that
    // scored it, and the verifier splits each sensor's stream there.
    if let Some(next) = swap_model {
        let total = (args.sensors * args.records) as u64;
        let trigger = (total / 4).max(1);
        let wait_deadline = Instant::now() + Duration::from_secs(120);
        while progress.load(Ordering::Relaxed) < trigger && Instant::now() < wait_deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let version = gateway.publish_temporal(next.clone());
        if let VerifyTarget::Temporal(published) = &mut target {
            published.insert(version, next);
        }
        eprintln!(
            "hot-swapped temporal model → v{version} (after {} of {total} predictions)",
            progress.load(Ordering::Relaxed)
        );
    }

    let outcomes: Vec<SensorOutcome> = sensors
        .into_iter()
        .map(|h| h.join().expect("sensor thread panicked"))
        .collect();
    let report = gateway.shutdown();
    let wall = started.elapsed();

    let sent_total: u64 = outcomes.iter().map(|o| o.sent).sum();
    let delivered_total: usize = outcomes.iter().map(|o| o.predictions.len()).sum();
    let nacks_total: u64 = outcomes.iter().map(|o| o.nacks).sum();
    for o in &outcomes {
        eprintln!(
            "sensor-{}: shard {}, sent {}, predictions {}, nacks {}{}",
            o.index,
            o.shard,
            o.sent,
            o.predictions.len(),
            o.nacks,
            if o.errors.is_empty() {
                String::new()
            } else {
                format!(", errors: {}", o.errors.join("; "))
            }
        );
    }

    println!("\n=== wire_storm report ===");
    print!("{report}");
    println!(
        "wire wall time {wall:.2?} · {:.0} records/s end-to-end · {delivered_total} predictions delivered to clients · {nacks_total} NACKs",
        sent_total as f64 / wall.as_secs_f64().max(1e-9)
    );
    println!("\n=== metrics ===\n{}", report.metrics_text);

    let mut failures: Vec<String> = outcomes
        .iter()
        .flat_map(|o| o.errors.iter().map(|e| format!("sensor-{}: {e}", o.index)))
        .collect();
    if args.temporal {
        let mut by_version: BTreeMap<u64, u64> = BTreeMap::new();
        for o in &outcomes {
            for p in &o.predictions {
                *by_version.entry(p.model_version).or_default() += 1;
            }
        }
        let summary: Vec<String> = by_version
            .iter()
            .map(|(v, n)| format!("v{v}×{n}"))
            .collect();
        eprintln!("predictions by model version: {}", summary.join(", "));
        if args.swap && args.verify && by_version.len() < 2 {
            failures.push(
                "--swap landed after every record was scored; raise --records or lower --swap-after-ms"
                    .to_string(),
            );
        }
    }
    if args.verify {
        failures.extend(verify(&outcomes, &target, &report));
        if failures.is_empty() {
            println!(
                "verify verdict: PASS ({} sensors, {} records, {} scoring bitwise identical to in-process replay, 0 unaccounted)",
                args.sensors,
                sent_total,
                if args.temporal { "stateful temporal" } else { "frame" }
            );
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("wire_storm verdict: FAIL — {f}");
        }
        std::process::exit(1);
    }
}

/// Which model family boots the gateway's serving runtime. One
/// instance exists per run, so the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
enum BootModel {
    Frame(OccupancyDetector),
    Temporal(TemporalDetector),
}

impl BootModel {
    fn start(
        self,
        serve: ServeConfig,
        config: GatewayConfig,
        acceptor: Box<dyn occusense_wire::Acceptor>,
    ) -> Result<Gateway, WireError> {
        match self {
            BootModel::Frame(d) => Gateway::start(d, serve, config, acceptor),
            BootModel::Temporal(t) => Gateway::start_temporal(t, serve, config, acceptor),
        }
    }
}

/// Per-transport connection factory, cloneable into sensor threads.
#[derive(Clone)]
enum Connectors {
    Loopback(LoopbackConnector),
    Tcp(String),
}

impl Connectors {
    fn connect(&self) -> Result<Box<dyn Connection>, occusense_wire::TransportError> {
        match self {
            Connectors::Loopback(c) => c.connect(),
            Connectors::Tcp(addr) => tcp_connect(addr, TcpConfig::default()),
        }
    }
}
