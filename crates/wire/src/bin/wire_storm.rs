//! Multi-sensor wire load generator: replays simulated office sensor
//! fleets through the `occusense-wire` gateway over loopback or TCP
//! and (with `--verify`) proves the delivered predictions bitwise
//! identical to direct in-process scoring.
//!
//! ```text
//! cargo run --release -p occusense-wire --bin wire_storm -- \
//!     --sensors 8 --records 5000 --transport loopback --verify
//! ```
//!
//! The verification contract: the gateway runs with online training
//! disabled (model version pinned at 1) and lossless `Block` policies
//! by default, every sensor's records come from the shared
//! `occusense_sim::fleet_stream` replay source, and every prediction
//! that comes back over the wire must satisfy
//! `proba.to_bits() == detector.predict_record(record).1.to_bits()`.
//! Any mismatch, any unaccounted record, or any lost prediction exits
//! non-zero — the same verdict discipline as `serve_sim --faults`.

use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
use occusense_dataset::CsiRecord;
use occusense_serve::{BackpressurePolicy, BatchConfig, ServeConfig, ServeReport};
use occusense_sim::{fleet_stream, simulate, ScenarioConfig};
use occusense_wire::{
    connect, loopback, tcp_connect, tcp_listen, ClientEvent, Connection, Gateway, GatewayConfig,
    LoopbackConfig, LoopbackConnector, TcpConfig,
};
use std::time::{Duration, Instant};

const USAGE: &str = "wire_storm — multi-sensor load generator for the occusense wire gateway

  --sensors N           concurrent wire clients (default 8)
  --records N           records replayed per sensor (default 5000)
  --transport T         loopback | tcp (default loopback)
  --addr A              tcp listen address (default 127.0.0.1:0 = OS port)
  --shards N            worker shards (default 4)
  --batch N             micro-batch size trigger (default 32)
  --delay-ms N          micro-batch deadline trigger, ms (default 2)
  --wire-batch N        records per Batch frame; 1 = single Record
                        frames (default 16)
  --policy P            ingress backpressure: block | drop-oldest |
                        reject-newest (default block)
  --outbound-policy P   per-connection prediction queue policy
                        (default block)
  --capacity N          per-shard ingress queue capacity (default 1024)
  --seed S              fleet base seed; sensor i replays
                        fleet_stream(duration, seed, i) (default 100)
  --verify              bitwise-compare every delivered prediction
                        against direct in-process scoring and exit 1 on
                        any mismatch, lost prediction or accounting
                        residue
  -h, --help            print this help";

#[derive(Clone)]
struct Args {
    sensors: usize,
    records: usize,
    transport: Transport,
    addr: String,
    shards: usize,
    max_batch: usize,
    max_delay_ms: u64,
    wire_batch: usize,
    policy: BackpressurePolicy,
    outbound_policy: BackpressurePolicy,
    capacity: usize,
    seed: u64,
    verify: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Transport {
    Loopback,
    Tcp,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            sensors: 8,
            records: 5000,
            transport: Transport::Loopback,
            addr: "127.0.0.1:0".to_string(),
            shards: 4,
            max_batch: 32,
            max_delay_ms: 2,
            wire_batch: 16,
            policy: BackpressurePolicy::Block,
            outbound_policy: BackpressurePolicy::Block,
            capacity: 1024,
            seed: 100,
            verify: false,
        }
    }
}

fn parse_value<T: std::str::FromStr>(raw: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse()
        .map_err(|e| format!("bad value {raw:?} for {what}: {e}"))
}

fn parse_policy(raw: &str, what: &str) -> Result<BackpressurePolicy, String> {
    BackpressurePolicy::parse(raw)
        .ok_or_else(|| format!("unknown {what} {raw:?} (block | drop-oldest | reject-newest)"))
}

/// Parses the command line. `Err` carries a user-facing message — the
/// caller prints it with the usage text and exits 2 (the PR 2 CLI
/// convention shared with `serve_sim`); malformed flags never panic.
fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv;
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            std::process::exit(0);
        }
        if flag == "--verify" {
            args.verify = true;
            continue;
        }
        const KNOWN: &[&str] = &[
            "--sensors",
            "--records",
            "--transport",
            "--addr",
            "--shards",
            "--batch",
            "--delay-ms",
            "--wire-batch",
            "--policy",
            "--outbound-policy",
            "--capacity",
            "--seed",
        ];
        if !KNOWN.contains(&flag.as_str()) {
            return Err(format!("unknown flag {flag:?}"));
        }
        let raw = it
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--sensors" => args.sensors = parse_value(&raw, "--sensors")?,
            "--records" => args.records = parse_value(&raw, "--records")?,
            "--transport" => {
                args.transport = match raw.as_str() {
                    "loopback" => Transport::Loopback,
                    "tcp" => Transport::Tcp,
                    _ => return Err(format!("unknown transport {raw:?} (loopback | tcp)")),
                };
            }
            "--addr" => args.addr = raw,
            "--shards" => args.shards = parse_value(&raw, "--shards")?,
            "--batch" => args.max_batch = parse_value(&raw, "--batch")?,
            "--delay-ms" => args.max_delay_ms = parse_value(&raw, "--delay-ms")?,
            "--wire-batch" => args.wire_batch = parse_value(&raw, "--wire-batch")?,
            "--policy" => args.policy = parse_policy(&raw, "--policy")?,
            "--outbound-policy" => args.outbound_policy = parse_policy(&raw, "--outbound-policy")?,
            "--capacity" => args.capacity = parse_value(&raw, "--capacity")?,
            "--seed" => args.seed = parse_value(&raw, "--seed")?,
            _ => unreachable!("flag was vetted against KNOWN"),
        }
    }
    if args.sensors == 0 {
        return Err("--sensors must be >= 1".into());
    }
    if args.records == 0 {
        return Err("--records must be >= 1".into());
    }
    if args.wire_batch == 0 {
        return Err("--wire-batch must be >= 1".into());
    }
    Ok(args)
}

/// What one sensor thread brings home.
struct SensorOutcome {
    index: usize,
    shard: u32,
    records: Vec<CsiRecord>,
    sent: u64,
    predictions: Vec<occusense_wire::PredictionFrame>,
    nacks: u64,
    errors: Vec<String>,
}

fn run_sensor(
    index: usize,
    conn: Box<dyn Connection>,
    records: Vec<CsiRecord>,
    wire_batch: usize,
) -> SensorOutcome {
    let mut outcome = SensorOutcome {
        index,
        shard: 0,
        records,
        sent: 0,
        predictions: Vec::new(),
        nacks: 0,
        errors: Vec::new(),
    };
    let (mut tx, mut rx) = match connect(conn, &format!("sensor-{index}"), Duration::from_secs(10))
    {
        Ok(split) => split,
        Err(e) => {
            outcome.errors.push(format!("handshake: {e}"));
            return outcome;
        }
    };
    outcome.shard = rx.shard();

    // Receiver thread: drain until the gateway's Goodbye (or a stall).
    let reader = std::thread::spawn(move || {
        let mut predictions = Vec::new();
        let mut nacks = 0u64;
        let mut errors = Vec::new();
        let stall_limit = Duration::from_secs(15);
        let mut last_event = Instant::now();
        loop {
            match rx.recv() {
                Ok(ClientEvent::Prediction(p)) => {
                    predictions.push(p);
                    last_event = Instant::now();
                }
                Ok(ClientEvent::Nack(_)) => {
                    nacks += 1;
                    last_event = Instant::now();
                }
                Ok(ClientEvent::Goodbye(_)) | Ok(ClientEvent::Closed) => break,
                Ok(ClientEvent::TimedOut) => {
                    if last_event.elapsed() > stall_limit {
                        errors.push("receiver stalled past the 15 s limit".to_string());
                        break;
                    }
                }
                Err(e) => {
                    errors.push(format!("receive: {e}"));
                    break;
                }
            }
        }
        (predictions, nacks, errors)
    });

    // Sender: labelled on even sequence numbers (exercises both label
    // encodings), batched per --wire-batch.
    let labelled: Vec<(CsiRecord, Option<u8>)> = outcome
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| (*r, (i % 2 == 0).then(|| r.occupancy())))
        .collect();
    let mut send_failed = false;
    if wire_batch <= 1 {
        for (record, label) in &labelled {
            if let Err(e) = tx.send(*record, *label) {
                outcome.errors.push(format!("send: {e}"));
                send_failed = true;
                break;
            }
        }
    } else {
        for chunk in labelled.chunks(wire_batch) {
            if let Err(e) = tx.send_batch(chunk) {
                outcome.errors.push(format!("send batch: {e}"));
                send_failed = true;
                break;
            }
        }
    }
    if !send_failed {
        match tx.finish() {
            Ok(sent) => outcome.sent = sent,
            Err(e) => outcome.errors.push(format!("goodbye: {e}")),
        }
    }

    match reader.join() {
        Ok((predictions, nacks, errors)) => {
            outcome.predictions = predictions;
            outcome.nacks = nacks;
            outcome.errors.extend(errors);
        }
        Err(_) => outcome.errors.push("receiver thread panicked".to_string()),
    }
    outcome
}

/// The `--verify` verdict: bitwise agreement with in-process scoring
/// plus exact accounting, per sensor and globally.
fn verify(
    outcomes: &[SensorOutcome],
    detector: &OccupancyDetector,
    report: &ServeReport,
) -> Vec<String> {
    let mut failures = Vec::new();
    let mut delivered_total = 0u64;
    for o in outcomes {
        delivered_total += o.predictions.len() as u64;
        if o.sent != o.records.len() as u64 {
            failures.push(format!(
                "sensor-{}: sent {} of {} records",
                o.index,
                o.sent,
                o.records.len()
            ));
        }
        let resolved = o.predictions.len() as u64 + o.nacks;
        if resolved != o.sent {
            failures.push(format!(
                "sensor-{}: {} records sent but only {} resolved ({} predictions + {} NACKs)",
                o.index,
                o.sent,
                resolved,
                o.predictions.len(),
                o.nacks
            ));
        }
        let mut mismatches = 0usize;
        for p in &o.predictions {
            let Some(record) = o.records.get(p.seq as usize) else {
                failures.push(format!(
                    "sensor-{}: prediction for unknown seq {}",
                    o.index, p.seq
                ));
                continue;
            };
            let (occupied, proba) = detector.predict_record(record);
            if p.occupied != occupied || p.proba.to_bits() != proba.to_bits() {
                mismatches += 1;
                if mismatches <= 3 {
                    failures.push(format!(
                        "sensor-{} seq {}: wire ({}, {:#018x}) != direct ({}, {:#018x})",
                        o.index,
                        p.seq,
                        p.occupied,
                        p.proba.to_bits(),
                        occupied,
                        proba.to_bits()
                    ));
                }
            }
            if p.model_version != 1 {
                failures.push(format!(
                    "sensor-{} seq {}: scored by model v{} (hot swap while pinned?)",
                    o.index, p.seq, p.model_version
                ));
            }
        }
        if mismatches > 3 {
            failures.push(format!(
                "sensor-{}: {} bitwise mismatches total",
                o.index, mismatches
            ));
        }
    }
    let unaccounted = report.unaccounted_records();
    if unaccounted != 0 {
        failures.push(format!("{unaccounted} records unaccounted for"));
    }
    if report.wire.predictions_sent != delivered_total {
        failures.push(format!(
            "gateway sent {} predictions but clients received {}",
            report.wire.predictions_sent, delivered_total
        ));
    }
    failures
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("wire_storm: {message}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    // Offline bootstrap, same recipe as serve_sim; online training is
    // *disabled* so the serving model stays pinned at v1 — the
    // precondition for comparing wire predictions bitwise against an
    // identical local detector.
    eprintln!("training bootstrap detector…");
    let train = simulate(&ScenarioConfig::quick(1200.0, 7));
    let detector = OccupancyDetector::train(
        &train,
        &DetectorConfig {
            model: ModelKind::Mlp,
            mlp_epochs: 4,
            seed: 7,
            ..DetectorConfig::default()
        },
    );
    let direct = detector.clone();

    let serve = ServeConfig {
        n_shards: args.shards,
        queue_capacity: args.capacity,
        policy: args.policy,
        batch: BatchConfig {
            max_batch: args.max_batch,
            max_delay: Duration::from_millis(args.max_delay_ms),
        },
        online: None,
        ..ServeConfig::default()
    };
    let gateway_cfg = GatewayConfig {
        outbound_policy: args.outbound_policy,
        ..GatewayConfig::default()
    };

    // Replay sources are collected up front so the verify pass can
    // rescore the exact same records locally.
    let rate = ScenarioConfig::quick(1.0, 0).sample_rate_hz;
    let duration_s = args.records as f64 / rate + 1.0;
    let fleets: Vec<Vec<CsiRecord>> = (0..args.sensors)
        .map(|i| {
            fleet_stream(duration_s, args.seed, i as u64)
                .take(args.records)
                .collect()
        })
        .collect();

    let started = Instant::now();
    let (gateway, connectors) = match args.transport {
        Transport::Loopback => {
            let (acceptor, connector) = loopback(LoopbackConfig::default());
            let gateway = Gateway::start(detector, serve, gateway_cfg, Box::new(acceptor))
                .unwrap_or_else(|e| {
                    eprintln!("wire_storm: {e}");
                    std::process::exit(2);
                });
            (gateway, Connectors::Loopback(connector))
        }
        Transport::Tcp => {
            let (acceptor, local) =
                tcp_listen(&args.addr, TcpConfig::default()).unwrap_or_else(|e| {
                    eprintln!("wire_storm: cannot listen on {}: {e}", args.addr);
                    std::process::exit(2);
                });
            eprintln!("listening on {local}");
            let gateway = Gateway::start(detector, serve, gateway_cfg, Box::new(acceptor))
                .unwrap_or_else(|e| {
                    eprintln!("wire_storm: {e}");
                    std::process::exit(2);
                });
            (gateway, Connectors::Tcp(local.to_string()))
        }
    };

    eprintln!(
        "storming: {} sensors × {} records over {} → {} shards (ingress {:?}, outbound {:?}, wire batch {})",
        args.sensors,
        args.records,
        match args.transport {
            Transport::Loopback => "loopback",
            Transport::Tcp => "tcp",
        },
        args.shards,
        args.policy,
        args.outbound_policy,
        args.wire_batch
    );

    let sensors: Vec<_> = fleets
        .into_iter()
        .enumerate()
        .map(|(i, records)| {
            let connectors = connectors.clone();
            let wire_batch = args.wire_batch;
            std::thread::Builder::new()
                .name(format!("storm-{i}"))
                .spawn(move || {
                    let conn = match connectors.connect() {
                        Ok(conn) => conn,
                        Err(e) => {
                            return SensorOutcome {
                                index: i,
                                shard: 0,
                                records,
                                sent: 0,
                                predictions: Vec::new(),
                                nacks: 0,
                                errors: vec![format!("connect: {e}")],
                            }
                        }
                    };
                    run_sensor(i, conn, records, wire_batch)
                })
                .expect("spawn sensor thread")
        })
        .collect();

    let outcomes: Vec<SensorOutcome> = sensors
        .into_iter()
        .map(|h| h.join().expect("sensor thread panicked"))
        .collect();
    let report = gateway.shutdown();
    let wall = started.elapsed();

    let sent_total: u64 = outcomes.iter().map(|o| o.sent).sum();
    let delivered_total: usize = outcomes.iter().map(|o| o.predictions.len()).sum();
    let nacks_total: u64 = outcomes.iter().map(|o| o.nacks).sum();
    for o in &outcomes {
        eprintln!(
            "sensor-{}: shard {}, sent {}, predictions {}, nacks {}{}",
            o.index,
            o.shard,
            o.sent,
            o.predictions.len(),
            o.nacks,
            if o.errors.is_empty() {
                String::new()
            } else {
                format!(", errors: {}", o.errors.join("; "))
            }
        );
    }

    println!("\n=== wire_storm report ===");
    print!("{report}");
    println!(
        "wire wall time {wall:.2?} · {:.0} records/s end-to-end · {delivered_total} predictions delivered to clients · {nacks_total} NACKs",
        sent_total as f64 / wall.as_secs_f64().max(1e-9)
    );
    println!("\n=== metrics ===\n{}", report.metrics_text);

    let mut failures: Vec<String> = outcomes
        .iter()
        .flat_map(|o| o.errors.iter().map(|e| format!("sensor-{}: {e}", o.index)))
        .collect();
    if args.verify {
        failures.extend(verify(&outcomes, &direct, &report));
        if failures.is_empty() {
            println!(
                "verify verdict: PASS ({} sensors, {} records, bitwise identical to in-process scoring, 0 unaccounted)",
                args.sensors, sent_total
            );
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("wire_storm verdict: FAIL — {f}");
        }
        std::process::exit(1);
    }
}

/// Per-transport connection factory, cloneable into sensor threads.
#[derive(Clone)]
enum Connectors {
    Loopback(LoopbackConnector),
    Tcp(String),
}

impl Connectors {
    fn connect(&self) -> Result<Box<dyn Connection>, occusense_wire::TransportError> {
        match self {
            Connectors::Loopback(c) => c.connect(),
            Connectors::Tcp(addr) => tcp_connect(addr, TcpConfig::default()),
        }
    }
}
