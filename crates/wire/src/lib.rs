//! # occusense-wire — binary CSI wire protocol and network gateway
//!
//! The transport boundary the paper's deployment story implies: many
//! cheap sensor nodes (Nexmon sniffers on Raspberry Pis) streaming
//! 64-subcarrier CSI frames to one detector service. Until this crate,
//! every record entered [`occusense_serve::ServeRuntime`] through an
//! in-process call; now records travel as versioned, checksummed
//! little-endian frames over a real connection:
//!
//! ```text
//!  sensor node                     gateway ──────────────────────────┐
//!  WireSender ──Record/Batch──▶ conn reader ──submit_sequenced──▶    │
//!                                   │ (NACK on rejection)       Serve│
//!  WireReceiver ◀─Prediction── conn writer ◀── router ◀─predictions──┘
//!                 ◀─Nack──        (bounded outbound queue,    Runtime
//!                                  slow-client policy)
//! ```
//!
//! * [`codec`] — the payload byte layout: bit-exact `f64`s (via
//!   [`f64::to_bits`]), canonical encodings, typed [`DecodeError`]s,
//!   no panicking paths (enforced by occusense-lint).
//! * [`frame`] — the envelope: magic, version, length prefix,
//!   FNV-1a-64 checksum over frame type + payload.
//! * [`transport`] — [`Connection`]/[`Acceptor`] over an in-process
//!   loopback (deterministic tests/benches) or std-only TCP with
//!   read/write timeouts and max-frame-size limits.
//! * [`gateway`] — N concurrent sensor connections feeding one
//!   `ServeRuntime`; backpressure surfaces to clients as NACK frames,
//!   and every transport-level loss lands in
//!   `ServeReport::unaccounted_records()`'s extended identity.
//! * [`client`] — the sensor-side library (`connect` → split
//!   sender/receiver).
//!
//! The `wire_storm` binary replays simulated sensor fleets over either
//! transport and self-verifies the delivered predictions bitwise
//! against direct in-process scoring.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod client;
pub mod codec;
pub mod frame;
pub mod gateway;
pub mod pipe;
pub mod reactor;
pub mod transport;

pub use client::{connect, connect_tenant, ClientEvent, WireReceiver, WireSender};
pub use codec::{
    decode_payload, BatchFrame, BatchRecords, BatchView, DecodeError, EncodeError, Frame, Goodbye,
    Hello, HelloAck, NackFrame, NackReason, PredictionFrame, RecordFrame, MAX_BATCH_RECORDS,
    MAX_SENSOR_ID_BYTES, MAX_TENANT_ID_BYTES, PROTOCOL_VERSION, RECORD_BYTES,
};
pub use frame::{
    checksum_of, decode_frame, decode_header, fnv1a, Encoder, FrameHeader, DEFAULT_MAX_PAYLOAD,
    HEADER_BYTES, MAGIC,
};
pub use gateway::{Gateway, GatewayConfig};
pub use reactor::FrameBuffer;
pub use transport::{
    loopback, tcp_connect, tcp_listen, Accepted, Acceptor, Connection, FrameSink, FrameSource,
    LoopbackAcceptor, LoopbackConfig, LoopbackConnector, PollConn, PollRead, PollWrite,
    RecvOutcome, TcpAcceptor, TcpConfig, TcpConn, TransportError,
};

use std::error::Error;
use std::fmt;

/// Why a wire-level operation failed.
#[derive(Debug)]
pub enum WireError {
    /// The underlying serving runtime refused its configuration.
    Serve(occusense_serve::ServeError),
    /// The connection failed (I/O, decode, disconnect, send timeout).
    Transport(TransportError),
    /// The gateway refused the handshake with this NACK reason.
    Refused(NackReason),
    /// No `HelloAck` within the handshake deadline.
    HandshakeTimeout,
    /// The peer sent a frame its role never sends.
    Protocol(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Serve(e) => write!(f, "wire: {e}"),
            WireError::Transport(e) => write!(f, "wire: {e}"),
            WireError::Refused(reason) => write!(f, "wire: handshake refused ({reason})"),
            WireError::HandshakeTimeout => write!(f, "wire: handshake timed out"),
            WireError::Protocol(msg) => write!(f, "wire protocol violation: {msg}"),
        }
    }
}

impl Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;
    use occusense_core::detector::{DetectorConfig, ModelKind, OccupancyDetector};
    use occusense_serve::{BackpressurePolicy, ServeConfig};
    use occusense_sim::{fleet_stream, simulate, ScenarioConfig};
    use std::time::Duration;

    fn bootstrap_detector() -> OccupancyDetector {
        let train = simulate(&ScenarioConfig::quick(300.0, 7));
        OccupancyDetector::train(
            &train,
            &DetectorConfig {
                model: ModelKind::Mlp,
                mlp_epochs: 2,
                seed: 7,
                ..DetectorConfig::default()
            },
        )
    }

    #[test]
    fn one_sensor_end_to_end_over_loopback() {
        let detector = bootstrap_detector();
        let direct = detector.clone();
        let (acceptor, connector) = loopback(LoopbackConfig::default());
        let gateway = Gateway::start(
            detector,
            ServeConfig {
                online: None,
                policy: BackpressurePolicy::Block,
                ..ServeConfig::default()
            },
            GatewayConfig {
                outbound_policy: BackpressurePolicy::Block,
                ..GatewayConfig::default()
            },
            Box::new(acceptor),
        )
        .unwrap();

        let conn = connector.connect().unwrap();
        let (mut tx, mut rx) = connect(conn, "sensor-a", Duration::from_secs(5)).unwrap();
        let records: Vec<_> = fleet_stream(25.0, 100, 0).collect();
        for r in &records {
            tx.send(*r, None).unwrap();
        }
        let sent = tx.finish().unwrap();
        assert_eq!(sent as usize, records.len());

        let mut preds = Vec::new();
        loop {
            match rx.recv().unwrap() {
                ClientEvent::Prediction(p) => preds.push(p),
                ClientEvent::Goodbye(delivered) => {
                    assert_eq!(delivered as usize, preds.len());
                    break;
                }
                ClientEvent::TimedOut => continue,
                other => panic!("unexpected event {other:?}"),
            }
        }
        drop(rx);
        let report = gateway.shutdown();

        assert_eq!(preds.len(), records.len());
        preds.sort_by_key(|p| p.seq);
        for (i, p) in preds.iter().enumerate() {
            assert_eq!(p.seq, i as u64);
            let (occupied, proba) = direct.predict_record(&records[i]);
            assert_eq!(p.occupied, occupied);
            assert_eq!(p.proba.to_bits(), proba.to_bits(), "record {i}");
        }
        assert_eq!(report.unaccounted_records(), 0);
        assert_eq!(report.wire.records_decoded, records.len() as u64);
        assert_eq!(report.wire.records_ingested, records.len() as u64);
        assert_eq!(report.wire.predictions_sent, records.len() as u64);
    }

    #[test]
    fn temporal_sensor_scores_bitwise_and_evicts_state_on_disconnect() {
        use occusense_core::temporal::{TemporalConfig, TemporalDetector};
        use std::time::Instant;

        let train = simulate(&ScenarioConfig::quick(600.0, 9));
        let temporal = TemporalDetector::train(
            &train,
            &TemporalConfig {
                window: 8,
                stride: 4,
                hidden: 8,
                epochs: 1,
                seed: 9,
                ..TemporalConfig::default()
            },
        );
        let direct = temporal.clone();
        let (acceptor, connector) = loopback(LoopbackConfig::default());
        let gateway = Gateway::start_temporal(
            temporal,
            ServeConfig {
                online: None,
                policy: BackpressurePolicy::Block,
                ..ServeConfig::default()
            },
            GatewayConfig {
                outbound_policy: BackpressurePolicy::Block,
                ..GatewayConfig::default()
            },
            Box::new(acceptor),
        )
        .unwrap();

        let conn = connector.connect().unwrap();
        let (mut tx, mut rx) = connect(conn, "sensor-a", Duration::from_secs(5)).unwrap();
        let records: Vec<_> = fleet_stream(25.0, 100, 0).collect();
        for r in &records {
            tx.send(*r, None).unwrap();
        }
        let sent = tx.finish().unwrap();
        assert_eq!(sent as usize, records.len());

        let mut preds = Vec::new();
        loop {
            match rx.recv().unwrap() {
                ClientEvent::Prediction(p) => preds.push(p),
                ClientEvent::Goodbye(delivered) => {
                    assert_eq!(delivered as usize, preds.len());
                    break;
                }
                ClientEvent::TimedOut => continue,
                other => panic!("unexpected event {other:?}"),
            }
        }
        drop(rx);

        // The reader thread deregisters and evicts asynchronously
        // after answering the Goodbye; give it a bounded moment.
        let deadline = Instant::now() + Duration::from_secs(5);
        while gateway.active_sensor_states() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            gateway.active_sensor_states(),
            0,
            "disconnect must evict the sensor's sequence state"
        );
        let report = gateway.shutdown();

        // Wire-delivered sequence scores are bitwise the zero-state
        // replay of the same stream.
        assert_eq!(preds.len(), records.len());
        preds.sort_by_key(|p| p.seq);
        let solo = direct.score_stream(&records);
        for (i, (p, (_, proba))) in preds.iter().zip(&solo).enumerate() {
            assert_eq!(p.seq, i as u64);
            assert_eq!(p.model_version, 1);
            assert_eq!(p.proba.to_bits(), proba.to_bits(), "record {i}");
            assert_eq!(p.occupied, u8::from(*proba > 0.5), "record {i}");
        }
        assert_eq!(report.unaccounted_records(), 0);
        assert_eq!(report.wire.records_ingested, records.len() as u64);
        assert_eq!(report.wire.predictions_sent, records.len() as u64);
    }

    #[test]
    fn protocol_mismatch_is_refused_with_a_nack() {
        let detector = bootstrap_detector();
        let (acceptor, connector) = loopback(LoopbackConfig::default());
        let gateway = Gateway::start(
            detector,
            ServeConfig {
                online: None,
                ..ServeConfig::default()
            },
            GatewayConfig::default(),
            Box::new(acceptor),
        )
        .unwrap();
        let conn = connector.connect().unwrap();
        let (mut sink, mut source) = conn.split();
        sink.send(&Frame::Hello(Hello {
            protocol: 99,
            sensor_id: "bad".into(),
            tenant: String::new(),
        }))
        .unwrap();
        let refusal = loop {
            match source.recv().unwrap() {
                RecvOutcome::Frame(f) => break f,
                RecvOutcome::TimedOut => continue,
                RecvOutcome::Closed => panic!("closed without a NACK"),
            }
        };
        assert_eq!(
            refusal,
            Frame::Nack(NackFrame {
                seq: 0,
                reason: NackReason::Unsupported,
            })
        );
        let report = gateway.shutdown();
        assert_eq!(report.wire.connections, 0);
        assert_eq!(report.unaccounted_records(), 0);
    }

    #[test]
    fn tenant_gate_refuses_mismatched_claims_and_admits_matching_ones() {
        let detector = bootstrap_detector();
        let (acceptor, connector) = loopback(LoopbackConfig::default());
        let gateway = Gateway::start(
            detector,
            ServeConfig {
                tenant: "acme".into(),
                online: None,
                policy: BackpressurePolicy::Block,
                ..ServeConfig::default()
            },
            GatewayConfig {
                outbound_policy: BackpressurePolicy::Block,
                ..GatewayConfig::default()
            },
            Box::new(acceptor),
        )
        .unwrap();
        assert_eq!(gateway.tenant(), "acme");

        // Wrong tenant: refused before the connection is counted.
        let conn = connector.connect().unwrap();
        match connect_tenant(conn, "globex", "sensor-a", Duration::from_secs(5)) {
            Err(WireError::Refused(NackReason::Unsupported)) => {}
            Err(other) => panic!("mismatched tenant gave {other:?}"),
            Ok(_) => panic!("mismatched tenant was admitted"),
        }
        // No tenant claim at all is a mismatch too.
        let conn = connector.connect().unwrap();
        match connect(conn, "sensor-a", Duration::from_secs(5)) {
            Err(WireError::Refused(NackReason::Unsupported)) => {}
            Err(other) => panic!("missing tenant gave {other:?}"),
            Ok(_) => panic!("missing tenant was admitted"),
        }

        // The right tenant serves normally.
        let conn = connector.connect().unwrap();
        let (mut tx, mut rx) =
            connect_tenant(conn, "acme", "sensor-a", Duration::from_secs(5)).unwrap();
        let records: Vec<_> = fleet_stream(25.0, 20, 0).collect();
        for r in &records {
            tx.send(*r, None).unwrap();
        }
        assert_eq!(tx.finish().unwrap() as usize, records.len());
        let mut preds = 0usize;
        loop {
            match rx.recv().unwrap() {
                ClientEvent::Prediction(_) => preds += 1,
                ClientEvent::Goodbye(delivered) => {
                    assert_eq!(delivered as usize, preds);
                    break;
                }
                ClientEvent::TimedOut => continue,
                other => panic!("unexpected event {other:?}"),
            }
        }
        drop(rx);

        let report = gateway.shutdown();
        assert_eq!(report.tenant, "acme");
        assert_eq!(report.wire.connections, 1, "refusals are never counted");
        assert_eq!(preds, records.len());
        assert_eq!(report.unaccounted_records(), 0);
    }

    #[test]
    fn drain_refuses_new_handshakes_but_keeps_live_connections_serving() {
        let detector = bootstrap_detector();
        let (acceptor, connector) = loopback(LoopbackConfig::default());
        let gateway = Gateway::start(
            detector,
            ServeConfig {
                online: None,
                policy: BackpressurePolicy::Block,
                ..ServeConfig::default()
            },
            GatewayConfig {
                outbound_policy: BackpressurePolicy::Block,
                ..GatewayConfig::default()
            },
            Box::new(acceptor),
        )
        .unwrap();

        let conn = connector.connect().unwrap();
        let (mut tx, mut rx) = connect(conn, "sensor-live", Duration::from_secs(5)).unwrap();
        let records: Vec<_> = fleet_stream(25.0, 30, 0).collect();
        for r in records.iter().take(10) {
            tx.send(*r, None).unwrap();
        }

        // Drain mid-stream: the snapshot names the live sensor, and new
        // handshakes are refused with a retryable Shutdown NACK.
        assert!(!gateway.is_draining());
        let live = gateway.drain();
        assert!(gateway.is_draining());
        assert_eq!(live, vec!["sensor-live".to_string()]);
        let late = connector.connect().unwrap();
        match connect(late, "sensor-late", Duration::from_secs(5)) {
            Err(WireError::Refused(NackReason::Shutdown)) => {}
            Err(other) => panic!("post-drain handshake gave {other:?}"),
            Ok(_) => panic!("post-drain handshake was admitted"),
        }

        // The live connection still serves every remaining record.
        for r in records.iter().skip(10) {
            tx.send(*r, None).unwrap();
        }
        assert_eq!(tx.finish().unwrap() as usize, records.len());
        let mut preds = 0usize;
        loop {
            match rx.recv().unwrap() {
                ClientEvent::Prediction(_) => preds += 1,
                ClientEvent::Goodbye(delivered) => {
                    assert_eq!(delivered as usize, preds);
                    break;
                }
                ClientEvent::TimedOut => continue,
                other => panic!("unexpected event {other:?}"),
            }
        }
        drop(rx);

        let report = gateway.shutdown();
        assert_eq!(preds, records.len());
        assert_eq!(report.wire.connections, 1);
        assert_eq!(report.unaccounted_records(), 0);
    }
}
