//! The gateway: N concurrent sensor connections feeding one
//! [`ServeRuntime`], predictions streaming back.
//!
//! # Threading model (DESIGN.md §10 has the diagram)
//!
//! * one **accept loop** pulls connections off the [`Acceptor`] and
//!   spawns a reader thread per connection;
//! * each **connection reader** performs the `Hello → HelloAck`
//!   handshake, then decodes `Record`/`Batch` frames and submits them
//!   through a [`SensorClient`] under the *client's* sequence numbers
//!   ([`SensorClient::submit_sequenced`]), so NACKs and predictions
//!   correlate at the sensor;
//! * each connection also owns a **writer thread** draining a bounded
//!   per-connection outbound queue — the slow-client boundary: the
//!   queue's [`BackpressurePolicy`] decides whether a sensor that
//!   stops reading stalls the router (`Block`), loses its oldest
//!   predictions (`DropOldest`) or its newest (`RejectNewest`);
//! * one **router** thread receives every [`Prediction`] from the
//!   runtime and pushes it to the owning sensor's outbound queue.
//!
//! # Accounting
//!
//! The gateway increments the [`wire_stats`] counters on the runtime's
//! own [`MetricsRegistry`](occusense_serve::MetricsRegistry);
//! [`ServeRuntime::shutdown`] mirrors them into
//! [`ServeReport::wire`](occusense_serve::ServeReport) and
//! `FaultReport::{transport_rejections, transport_timeouts}`, and
//! `ServeReport::unaccounted_records()` extends the serve identity
//! across the wire: `decoded = ingested + rejected + shed`. A record
//! that made it off the socket cannot vanish — it is scored, NACKed
//! back, or counted as shed.

use crate::codec::{
    Frame, Goodbye, HelloAck, NackFrame, NackReason, PredictionFrame, RecordFrame, PROTOCOL_VERSION,
};
use crate::transport::{Accepted, Acceptor, Connection, FrameSink, FrameSource, RecvOutcome};
use crate::WireError;
use occusense_core::detector::OccupancyDetector;
use occusense_core::temporal::TemporalDetector;
use occusense_serve::{
    wire_stats, BackpressurePolicy, BoundedQueue, Counter, Prediction, SensorClient, ServeConfig,
    ServeReport, ServeRuntime, SubmitError,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Gateway tuning knobs (transport-level knobs — timeouts, frame-size
/// ceilings — live on the transport configs instead).
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// How long a fresh connection may take to present its `Hello`
    /// before it is dropped (counted as a transport timeout).
    pub handshake_timeout: Duration,
    /// Capacity of each connection's outbound prediction queue.
    pub outbound_capacity: usize,
    /// Slow-client policy of the outbound queues. `DropOldest` (the
    /// default) keeps one stalled sensor from head-of-line blocking
    /// the router; `Block` is lossless and right for cooperative
    /// clients that always drain (e.g. `wire_storm --verify`).
    pub outbound_policy: BackpressurePolicy,
    /// After a client's `Goodbye`, how long the reader waits without
    /// *progress* (new predictions delivered or shed) before giving up
    /// on draining the remaining in-flight predictions.
    pub drain_grace: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            handshake_timeout: Duration::from_secs(5),
            outbound_capacity: 1024,
            outbound_policy: BackpressurePolicy::DropOldest,
            drain_grace: Duration::from_secs(2),
        }
    }
}

/// Outbound queues of the live connections, keyed by sensor id. The
/// router resolves each prediction through this map; a reader
/// registers its queue after the handshake and deregisters it before
/// closing.
type Registry = Arc<Mutex<BTreeMap<String, Arc<BoundedQueue<Frame>>>>>;

/// `wire_stats` counter handles shared by every gateway thread.
#[derive(Clone)]
struct GatewayCounters {
    connections: Arc<Counter>,
    frames_received: Arc<Counter>,
    records_decoded: Arc<Counter>,
    records_ingested: Arc<Counter>,
    records_rejected: Arc<Counter>,
    records_shed: Arc<Counter>,
    malformed_frames: Arc<Counter>,
    predictions_routed: Arc<Counter>,
    predictions_sent: Arc<Counter>,
    predictions_unrouted: Arc<Counter>,
    transport_timeouts: Arc<Counter>,
}

impl GatewayCounters {
    fn new(runtime: &ServeRuntime) -> Self {
        let m = runtime.metrics();
        Self {
            connections: m.counter(wire_stats::CONNECTIONS),
            frames_received: m.counter(wire_stats::FRAMES_RECEIVED),
            records_decoded: m.counter(wire_stats::RECORDS_DECODED),
            records_ingested: m.counter(wire_stats::RECORDS_INGESTED),
            records_rejected: m.counter(wire_stats::RECORDS_REJECTED),
            records_shed: m.counter(wire_stats::RECORDS_SHED),
            malformed_frames: m.counter(wire_stats::MALFORMED_FRAMES),
            predictions_routed: m.counter(wire_stats::PREDICTIONS_ROUTED),
            predictions_sent: m.counter(wire_stats::PREDICTIONS_SENT),
            predictions_unrouted: m.counter(wire_stats::PREDICTIONS_UNROUTED),
            transport_timeouts: m.counter(wire_stats::TRANSPORT_TIMEOUTS),
        }
    }
}

/// The running gateway. [`shutdown`](Self::shutdown) drains
/// everything and returns the runtime's [`ServeReport`], whose
/// [`wire`](occusense_serve::ServeReport) section carries the
/// transport counters.
pub struct Gateway {
    stop: Arc<AtomicBool>,
    runtime: Option<Arc<ServeRuntime>>,
    accept: Option<JoinHandle<()>>,
    router: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Gateway {
    /// Boots a [`ServeRuntime`] around `detector` and starts accepting
    /// sensor connections from `acceptor`.
    ///
    /// # Errors
    ///
    /// [`WireError::Serve`] when the runtime refuses its
    /// configuration.
    pub fn start(
        detector: OccupancyDetector,
        serve: ServeConfig,
        config: GatewayConfig,
        acceptor: Box<dyn Acceptor>,
    ) -> Result<Self, WireError> {
        let (runtime, predictions) =
            ServeRuntime::start(detector, serve).map_err(WireError::Serve)?;
        Ok(Self::boot(runtime, predictions, config, acceptor))
    }

    /// Boots a *stateful temporal* [`ServeRuntime`] around the GRU
    /// sequence `detector` and starts accepting sensor connections.
    ///
    /// Each connected sensor's hidden state is carried between
    /// micro-batches; when a sensor's last connection closes, its
    /// state is evicted, so a later reconnect restarts the sequence
    /// from zeros. A reconnect that *replaces* a live connection under
    /// the same sensor id keeps the state (the stale reader's
    /// deregistration is a no-op by the ptr-eq rule).
    ///
    /// # Errors
    ///
    /// [`WireError::Serve`] when the runtime refuses its configuration
    /// (e.g. online training requested — unsupported for temporal
    /// models).
    pub fn start_temporal(
        detector: TemporalDetector,
        serve: ServeConfig,
        config: GatewayConfig,
        acceptor: Box<dyn Acceptor>,
    ) -> Result<Self, WireError> {
        let (runtime, predictions) =
            ServeRuntime::start_temporal(detector, serve).map_err(WireError::Serve)?;
        Ok(Self::boot(runtime, predictions, config, acceptor))
    }

    /// The transport topology shared by both boot modes: router +
    /// accept loop around an already-started runtime.
    fn boot(
        runtime: ServeRuntime,
        predictions: mpsc::Receiver<Prediction>,
        config: GatewayConfig,
        acceptor: Box<dyn Acceptor>,
    ) -> Self {
        let runtime = Arc::new(runtime);
        let counters = GatewayCounters::new(&runtime);
        let registry: Registry = Arc::new(Mutex::new(BTreeMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));

        let router = {
            let registry = Arc::clone(&registry);
            let counters = counters.clone();
            std::thread::Builder::new()
                .name("wire-router".into())
                .spawn(move || route_predictions(predictions, registry, counters))
                // lint:allow(panic, reason = "startup-only: thread spawn failure is unrecoverable resource exhaustion, before any connection is accepted")
                .expect("spawn router")
        };

        let accept = {
            let ctx = ConnContext {
                runtime: Arc::clone(&runtime),
                registry,
                config,
                counters,
                stop: Arc::clone(&stop),
            };
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("wire-accept".into())
                .spawn(move || accept_loop(acceptor, ctx, conns))
                // lint:allow(panic, reason = "startup-only: thread spawn failure is unrecoverable resource exhaustion, before any connection is accepted")
                .expect("spawn acceptor")
        };

        Self {
            stop,
            runtime: Some(runtime),
            accept: Some(accept),
            router: Some(router),
            conns,
        }
    }

    /// A direct in-process ingestion handle on the underlying runtime
    /// (used by drivers that mix wire and local traffic).
    pub fn local_client(&self, sensor_id: &str) -> Option<SensorClient> {
        self.runtime.as_ref().map(|rt| rt.client(sensor_id))
    }

    /// Live model version of the underlying runtime.
    pub fn model_version(&self) -> u64 {
        self.runtime.as_ref().map_or(0, |rt| rt.model_version())
    }

    /// Hot-swaps the serving temporal model on a runtime booted with
    /// [`Gateway::start_temporal`]; every sensor's carried state is
    /// zero-reset at its first post-swap batch. Returns the new
    /// version. On a frame-mode runtime the workers quarantine rather
    /// than mis-score (see `occusense_serve`).
    pub fn publish_temporal(&self, detector: TemporalDetector) -> u64 {
        self.runtime
            .as_ref()
            .map_or(0, |rt| rt.publish_temporal(detector))
    }

    /// Number of sensors currently holding temporal sequence state
    /// (always 0 on a frame-mode runtime).
    pub fn active_sensor_states(&self) -> usize {
        self.runtime
            .as_ref()
            .map_or(0, |rt| rt.active_sensor_states())
    }

    /// Stops accepting, drains every connection and the runtime, and
    /// returns the final report (wire counters included).
    pub fn shutdown(mut self) -> ServeReport {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            // A panicking accept loop already stopped accepting; the
            // runtime report below still accounts every record.
            let _ = h.join();
        }
        let handles = {
            let mut guard = self
                .conns
                .lock()
                // lint:allow(panic, reason = "poison propagation: a poisoned handle list means a reader thread panicked mid-push; joining the rest would miss it anyway")
                .expect("connection list poisoned");
            std::mem::take(&mut *guard)
        };
        for h in handles {
            let _ = h.join();
        }
        let runtime = self
            .runtime
            .take()
            .and_then(|rt| Arc::try_unwrap(rt).ok())
            // lint:allow(panic, reason = "invariant: the accept loop and every reader joined above, so this is the last Arc; failure means a leaked thread and no truthful report exists")
            .expect("gateway runtime still shared after joining all threads");
        let report = runtime.shutdown();
        if let Some(h) = self.router.take() {
            // The prediction channel closed when the workers exited,
            // so the router has already run to completion.
            let _ = h.join();
        }
        report
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles = {
            let mut guard = match self.conns.lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            std::mem::take(&mut *guard)
        };
        for h in handles {
            let _ = h.join();
        }
        // Dropping the runtime Arc joins the serve threads (its Drop),
        // which closes the prediction channel and ends the router.
        self.runtime.take();
        if let Some(h) = self.router.take() {
            let _ = h.join();
        }
    }
}

/// Everything a connection reader needs, cloned per connection.
struct ConnContext {
    runtime: Arc<ServeRuntime>,
    registry: Registry,
    config: GatewayConfig,
    counters: GatewayCounters,
    stop: Arc<AtomicBool>,
}

impl ConnContext {
    fn fork(&self) -> Self {
        Self {
            runtime: Arc::clone(&self.runtime),
            registry: Arc::clone(&self.registry),
            config: self.config,
            counters: self.counters.clone(),
            stop: Arc::clone(&self.stop),
        }
    }
}

fn accept_loop(
    mut acceptor: Box<dyn Acceptor>,
    ctx: ConnContext,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_id: u64 = 0;
    while !ctx.stop.load(Ordering::Relaxed) {
        match acceptor.accept() {
            Ok(Accepted::Connection(conn)) => {
                let id = next_id;
                next_id += 1;
                let child = ctx.fork();
                let spawned = std::thread::Builder::new()
                    .name(format!("wire-conn-{id}"))
                    .spawn(move || serve_connection(child, conn));
                if let Ok(handle) = spawned {
                    if let Ok(mut guard) = conns.lock() {
                        guard.push(handle);
                    }
                }
            }
            Ok(Accepted::TimedOut) => continue,
            Ok(Accepted::Closed) => break,
            Err(_) => break,
        }
    }
}

fn route_predictions(
    predictions: mpsc::Receiver<Prediction>,
    registry: Registry,
    counters: GatewayCounters,
) {
    while let Ok(p) = predictions.recv() {
        let queue = registry
            .lock()
            // lint:allow(panic, reason = "poison propagation: a poisoned registry means a reader panicked mid-(de)registration; routing against it would misdeliver")
            .expect("connection registry poisoned")
            .get(p.sensor_id.as_ref())
            .cloned();
        let Some(queue) = queue else {
            counters.predictions_unrouted.inc();
            continue;
        };
        counters.predictions_routed.inc();
        let frame = Frame::Prediction(PredictionFrame {
            seq: p.seq,
            timestamp_s: p.timestamp_s,
            occupied: p.occupied,
            proba: p.proba,
            model_version: p.model_version,
            latency_ns: p.latency.as_nanos() as u64,
        });
        // A full `RejectNewest` queue or a closed (disconnecting)
        // queue loses the frame; `predictions_routed − predictions_sent`
        // makes the loss visible in the report.
        let _ = queue.push(frame);
    }
}

/// Waits for the client's `Hello` within the handshake deadline.
fn await_hello(
    source: &mut Box<dyn FrameSource>,
    deadline: Instant,
    stop: &AtomicBool,
) -> Option<crate::codec::Hello> {
    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
        match source.recv() {
            Ok(RecvOutcome::Frame(Frame::Hello(h))) => return Some(h),
            Ok(RecvOutcome::Frame(_)) => return None,
            Ok(RecvOutcome::TimedOut) => continue,
            Ok(RecvOutcome::Closed) | Err(_) => return None,
        }
    }
    None
}

fn serve_connection(ctx: ConnContext, conn: Box<dyn Connection>) {
    let (mut sink, mut source) = conn.split();
    let deadline = Instant::now() + ctx.config.handshake_timeout;
    let Some(hello) = await_hello(&mut source, deadline, &ctx.stop) else {
        ctx.counters.transport_timeouts.inc();
        return;
    };
    ctx.counters.frames_received.inc();
    if hello.protocol != PROTOCOL_VERSION {
        let _ = sink.send(&Frame::Nack(NackFrame {
            seq: 0,
            reason: NackReason::Unsupported,
        }));
        return;
    }
    ctx.counters.connections.inc();

    let mut client = ctx.runtime.client(&hello.sensor_id);
    let shard = client.shard() as u32;

    // The writer half: a bounded outbound queue whose policy is the
    // slow-client contract, drained by a dedicated thread.
    let outbound = Arc::new(BoundedQueue::new(
        ctx.config.outbound_capacity.max(1),
        ctx.config.outbound_policy,
    ));
    register(&ctx.registry, &hello.sensor_id, &outbound);
    let delivered = Arc::new(AtomicU64::new(0));
    let writer_dead = Arc::new(AtomicBool::new(false));
    let writer = {
        let outbound = Arc::clone(&outbound);
        let delivered = Arc::clone(&delivered);
        let writer_dead = Arc::clone(&writer_dead);
        let counters = ctx.counters.clone();
        std::thread::Builder::new()
            .name("wire-writer".into())
            .spawn(move || write_loop(sink, outbound, delivered, writer_dead, counters))
    };
    let Ok(writer) = writer else {
        if deregister(&ctx.registry, &hello.sensor_id, &outbound) {
            ctx.runtime.evict_sensor(&hello.sensor_id);
        }
        return;
    };
    let _ = outbound.push(Frame::HelloAck(HelloAck {
        protocol: PROTOCOL_VERSION,
        shard,
    }));

    // Ingress: decode records, submit under the client's own sequence
    // numbers, NACK refusals.
    let mut ingested: u64 = 0;
    let mut orderly = false;
    loop {
        if writer_dead.load(Ordering::Relaxed) {
            break;
        }
        match source.recv() {
            Ok(RecvOutcome::Frame(frame)) => {
                ctx.counters.frames_received.inc();
                match frame {
                    Frame::Record(r) => {
                        ingest(&ctx, &mut client, &outbound, r, &mut ingested);
                    }
                    Frame::Batch(b) => {
                        for (i, (record, label)) in b.records.into_iter().enumerate() {
                            let r = RecordFrame {
                                seq: b.first_seq.wrapping_add(i as u64),
                                label,
                                record,
                            };
                            ingest(&ctx, &mut client, &outbound, r, &mut ingested);
                        }
                    }
                    Frame::Goodbye(_) => {
                        orderly = true;
                        break;
                    }
                    // Hello twice, or server-role frames from a client:
                    // protocol violation, refuse and close.
                    _ => {
                        let _ = outbound.push(Frame::Nack(NackFrame {
                            seq: 0,
                            reason: NackReason::Unsupported,
                        }));
                        break;
                    }
                }
            }
            Ok(RecvOutcome::TimedOut) => {
                if ctx.stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            Ok(RecvOutcome::Closed) => break,
            Err(e) => {
                if matches!(e, crate::transport::TransportError::Decode(_)) {
                    ctx.counters.malformed_frames.inc();
                    let _ = outbound.push(Frame::Nack(NackFrame {
                        seq: 0,
                        reason: NackReason::Malformed,
                    }));
                }
                break;
            }
        }
    }

    // Drain: after an orderly Goodbye, wait for the in-flight
    // predictions to resolve (delivered, or shed by the outbound
    // policy) before answering with our own Goodbye. Progress-based
    // grace, so a quarantined record (which never produces a
    // prediction) cannot hang the connection forever.
    if orderly {
        let resolved = |delivered: &AtomicU64, outbound: &BoundedQueue<Frame>| {
            let c = outbound.counters();
            delivered.load(Ordering::Relaxed) + c.dropped + c.rejected
        };
        let mut last = resolved(&delivered, &outbound);
        let mut last_progress = Instant::now();
        while last < ingested && !writer_dead.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(2));
            let now = resolved(&delivered, &outbound);
            if now != last {
                last = now;
                last_progress = Instant::now();
            } else if last_progress.elapsed() > ctx.config.drain_grace {
                break;
            }
        }
        let _ = outbound.push(Frame::Goodbye(Goodbye {
            count: delivered.load(Ordering::Relaxed),
        }));
    }

    if deregister(&ctx.registry, &hello.sensor_id, &outbound) {
        // This was the sensor's last live route: drop its carried
        // sequence state so a reconnect restarts from zeros. A no-op
        // on frame-mode runtimes (no state table).
        ctx.runtime.evict_sensor(&hello.sensor_id);
    }
    outbound.close();
    let _ = writer.join();
}

/// Submits one decoded record; refusals go back as NACKs and into the
/// rejected/shed counters, keeping `decoded = ingested + rejected +
/// shed` exact.
fn ingest(
    ctx: &ConnContext,
    client: &mut SensorClient,
    outbound: &Arc<BoundedQueue<Frame>>,
    r: RecordFrame,
    ingested: &mut u64,
) {
    ctx.counters.records_decoded.inc();
    match client.submit_sequenced(r.seq, r.record, r.label) {
        Ok(()) => {
            *ingested += 1;
            ctx.counters.records_ingested.inc();
        }
        Err(SubmitError::Rejected) => {
            ctx.counters.records_rejected.inc();
            let _ = outbound.push(Frame::Nack(NackFrame {
                seq: r.seq,
                reason: NackReason::QueueFull,
            }));
        }
        Err(SubmitError::Shutdown) => {
            ctx.counters.records_shed.inc();
            let _ = outbound.push(Frame::Nack(NackFrame {
                seq: r.seq,
                reason: NackReason::Shutdown,
            }));
        }
    }
}

fn write_loop(
    mut sink: Box<dyn FrameSink>,
    outbound: Arc<BoundedQueue<Frame>>,
    delivered: Arc<AtomicU64>,
    writer_dead: Arc<AtomicBool>,
    counters: GatewayCounters,
) {
    while let Some(frame) = outbound.pop() {
        let is_prediction = matches!(frame, Frame::Prediction(_));
        match sink.send(&frame) {
            Ok(()) => {
                if is_prediction {
                    delivered.fetch_add(1, Ordering::Relaxed);
                    counters.predictions_sent.inc();
                }
            }
            Err(e) => {
                if matches!(e, crate::transport::TransportError::SendTimeout) {
                    counters.transport_timeouts.inc();
                }
                writer_dead.store(true, Ordering::Relaxed);
                break;
            }
        }
    }
}

fn register(registry: &Registry, sensor_id: &str, queue: &Arc<BoundedQueue<Frame>>) {
    registry
        .lock()
        // lint:allow(panic, reason = "poison propagation: a poisoned registry cannot route safely; the panic surfaces through the reader thread join")
        .expect("connection registry poisoned")
        .insert(sensor_id.to_string(), Arc::clone(queue));
}

/// Removes this connection's registry entry — only if it still points
/// at *our* queue. A reconnect under the same sensor id replaces the
/// entry; the stale reader must not tear down its successor's route.
/// Returns whether the entry was removed — `true` means this was the
/// sensor's last live route, which is the eviction signal for its
/// temporal sequence state.
fn deregister(registry: &Registry, sensor_id: &str, queue: &Arc<BoundedQueue<Frame>>) -> bool {
    let mut guard = registry
        .lock()
        // lint:allow(panic, reason = "poison propagation: a poisoned registry cannot route safely; the panic surfaces through the reader thread join")
        .expect("connection registry poisoned");
    if guard.get(sensor_id).is_some_and(|q| Arc::ptr_eq(q, queue)) {
        guard.remove(sensor_id);
        return true;
    }
    false
}
